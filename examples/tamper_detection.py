"""Scenario: an active data-centre adversary vs PMMAC (§6).

Runs the PIC_X32 frontend over byte-accurate encrypted storage and
mounts three attacks from the threat model:

1. flip a ciphertext bit in the victim block  -> caught at next access;
2. replay a stale snapshot of all of DRAM     -> caught (freshness);
3. the §6.4 seed-rollback attack against the legacy bucket-seed
   encryption, showing the one-time-pad reuse the paper fixes with a
   global seed.

Run:  python examples/tamper_detection.py
"""

from repro import CryptoSuite, DeterministicRng, IntegrityViolationError
from repro.adversary.tamper import Tamperer
from repro.crypto.pad import PadGenerator
from repro.frontend.unified import PlbFrontend
from repro.storage.block import Block
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme


def build_verified_oram():
    crypto = CryptoSuite.fast(b"demo-session-key")

    def storage_factory(config, observer):
        return EncryptedTreeStorage(config, crypto.pad, EncryptionScheme.GLOBAL_SEED)

    return PlbFrontend(
        num_blocks=2**8,
        posmap_format="compressed",
        pmmac=True,
        onchip_entries=2**3,
        plb_capacity_bytes=1024,
        crypto=crypto,
        rng=DeterministicRng(99),
        storage_factory=storage_factory,
    )


def attack_bit_flip() -> None:
    print("Attack 1: flip one ciphertext bit of the victim block")
    oram = build_verified_oram()
    oram.write(42, b"ledger: alice owes bob 10".ljust(64, b"\x00"))
    rng = DeterministicRng(5)
    for _ in range(60):  # drive the block out of the stash into DRAM
        oram.read(rng.randrange(2**8))
    storage = oram.backend.storage
    tamperer = Tamperer(storage)
    slot_bytes = storage._slot_bytes()
    for index in range(storage.config.num_buckets):
        for slot in range(storage.config.blocks_per_bucket):
            # Flip a data bit in every slot: wherever the victim lives,
            # its ciphertext is now corrupted.
            tamperer.corrupt_body(index, slot * slot_bytes + 20)
    try:
        for _ in range(3):
            oram.read(42)
        print("  !! tampering went UNDETECTED (should never happen)")
    except IntegrityViolationError as exc:
        print(f"  caught: {exc}")


def attack_replay() -> None:
    print("Attack 2: roll all of DRAM back to a stale snapshot")
    oram = build_verified_oram()
    oram.write(7, b"version 1".ljust(64, b"\x00"))
    rng = DeterministicRng(6)
    for _ in range(40):
        oram.read(rng.randrange(2**8))
    tamperer = Tamperer(oram.backend.storage)
    tamperer.snapshot()
    oram.write(7, b"version 2".ljust(64, b"\x00"))
    for _ in range(40):
        oram.read(rng.randrange(2**8))
    tamperer.replay_all()
    try:
        for _ in range(80):
            oram.read(7)
        print("  !! replay went UNDETECTED (should never happen)")
    except IntegrityViolationError as exc:
        print(f"  caught: {exc}")


def attack_seed_rollback() -> None:
    print("Attack 3 (§6.4): seed rollback against bucket-seed encryption")
    from repro.config import OramConfig

    config = OramConfig(num_blocks=32, block_bytes=32)

    for scheme in (EncryptionScheme.BUCKET_SEED, EncryptionScheme.GLOBAL_SEED):
        gen = PadGenerator(b"pad-demo-key")
        storage = EncryptedTreeStorage(config, gen, scheme)
        tamperer = Tamperer(storage)

        def write_known(payload):
            path = storage.read_path(0)
            path[0][1].blocks = []
            path[0][1].add(Block(1, 0, payload))
            storage.write_path(0)
            body = storage._serialise_bucket(path[0][1])
            return PadGenerator.xor(storage.raw_image(0)[8:], body)

        pad_before = write_known(b"\x01" * 32)
        tamperer.rollback_seed(0, delta=1)
        path = storage.read_path(0)
        storage.write_path(0)
        body = storage._serialise_bucket(path[0][1])
        pad_after = PadGenerator.xor(storage.raw_image(0)[8:], body)
        reused = pad_after == pad_before
        print(
            f"  {scheme.value:>12}: pad reused after rollback? "
            f"{'YES - two-time pad, plaintext leaks' if reused else 'no - fresh pad'}"
        )


def main() -> None:
    attack_bit_flip()
    print()
    attack_replay()
    print()
    attack_seed_rollback()


if __name__ == "__main__":
    main()
