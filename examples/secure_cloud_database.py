"""Scenario: a cloud key-value service whose access pattern leaks nothing.

The paper's motivation (§1): a data centre can watch which memory
locations a computation touches and reconstruct secrets from the pattern
alone. This example builds a small multi-tenant key-value service on the
ORAM serving layer (:mod:`repro.serve`) and shows that two very
different query workloads — a targeted lookup storm against one hot
record vs a uniform scan — produce externally indistinguishable DRAM
traces, while the same workloads over plain memory are trivially
distinguishable. It then serves both tenants *concurrently* from one
shared ORAM pool and shows the per-tenant accounting the service keeps
while the combined trace stays uniform.

Run:  python examples/secure_cloud_database.py
"""

from typing import Dict, List, Tuple

from repro.adversary.observer import TraceObserver
from repro.serve import OramService, ServeConfig, TenantSpec
from repro.sim.runner import SimulationRunner
from repro.utils.stats import chi_square_uniform

NUM_RECORDS = 256
RECORD_BYTES = 64


def make_runner(seed: int) -> SimulationRunner:
    # No on-disk caches: the example is self-contained and hermetic.
    return SimulationRunner(seed=seed, cache_dir=None, result_cache_dir=None)


class ObliviousDatabaseService:
    """A tenant-per-client KV service on the ORAM serving layer.

    Every tenant owns a private region of the shared ORAM pool; a shared
    schema maps ``user:<n>`` keys onto per-tenant record slots. Queries
    become per-tenant request streams served through the service's
    admission queue — the exact multiplexing path ``python -m repro
    serve`` exercises.
    """

    def __init__(
        self,
        queries_by_tenant: Dict[str, List[str]],
        seed: int,
        observer: TraceObserver,
    ):
        self._slots: Dict[str, int] = {}
        tenants = [
            TenantSpec(
                name=name,
                events=tuple((self._slot(key), False) for key in queries),
                region_blocks=NUM_RECORDS,
            )
            for name, queries in queries_by_tenant.items()
        ]
        self.service = OramService(
            tenants,
            runner=make_runner(seed),
            config=ServeConfig(scheme="PC_X32", shards=1, burst=8),
            observer=observer,
        )
        for tenant_index in range(len(tenants)):
            for user in range(NUM_RECORDS):
                value = f"balance={user * 17}".encode()
                self.service.preload(
                    tenant_index,
                    self._slot(f"user:{user}"),
                    value.ljust(RECORD_BYTES, b"\x00"),
                )

    def _slot(self, key: str) -> int:
        if key not in self._slots:
            if len(self._slots) >= NUM_RECORDS:
                raise KeyError(f"database full; cannot place {key!r}")
            self._slots[key] = len(self._slots)
        return self._slots[key]


def serve_workloads(
    queries_by_tenant: Dict[str, List[str]], seed: int
) -> Tuple[List[int], OramService]:
    """Serve the query streams; return the adversary-visible leaf trace."""
    observer = TraceObserver()
    db = ObliviousDatabaseService(queries_by_tenant, seed, observer)
    observer.clear()  # adversary starts watching after the bulk load
    db.service.run(mode="async")
    return observer.leaf_sequence(0), db.service


def describe_trace(name: str, trace: List[int]) -> None:
    counts = [0] * 64
    for leaf in trace:
        counts[leaf % 64] += 1
    stat, dof = chi_square_uniform(counts)
    print(
        f"  {name:>17}: {len(trace)} path reads, "
        f"leaf chi2/dof = {stat / dof:.2f} (uniform ~1.0)"
    )


def main() -> None:
    hot_queries = ["user:42"] * 512  # an attacker-interesting pattern
    scan_queries = [f"user:{i % NUM_RECORDS}" for i in range(512)]

    hot_trace, _ = serve_workloads({"hot": hot_queries}, seed=7)
    scan_trace, _ = serve_workloads({"scan": scan_queries}, seed=7)

    print("Oblivious service — DRAM-visible path traces:")
    describe_trace("hot-record storm", hot_trace)
    describe_trace("uniform scan", scan_trace)
    print("  -> both traces are uniform random paths; the adversary learns")
    print("     only the trace length, never *which* record is hot.\n")

    # Contrast: plain memory leaks the hot address immediately.
    plain_hot = [hash(q) % NUM_RECORDS for q in hot_queries]
    plain_scan = [hash(q) % NUM_RECORDS for q in scan_queries]
    print("Plain (non-ORAM) store address traces:")
    print(f"  hot-record storm touches {len(set(plain_hot))} distinct address(es)")
    print(f"  uniform scan touches     {len(set(plain_scan))} distinct addresses")
    print("  -> without ORAM the access pattern identifies the hot record.\n")

    # Both tenants on one shared pool: the service multiplexes their
    # streams through its admission queue, keeps per-tenant accounting,
    # and the combined external trace still leaks neither tenant's shape.
    shared_trace, service = serve_workloads(
        {"hot": hot_queries, "scan": scan_queries}, seed=7
    )
    print("ORAM-as-a-service — both tenants on one shared pool:")
    describe_trace("combined trace", shared_trace)
    for stats in service.tenant_stats:
        hist = stats.latency_cycles
        print(
            f"  tenant {stats.name:<5} completed {stats.completed} requests, "
            f"mean latency {hist.mean:.0f} cycles (p95 <= "
            f"{hist.quantile_bound(0.95):.0f})"
        )
    print("  -> co-tenants share the ORAM pool yet cannot profile each")
    print("     other: the shared trace is one uniform path stream.")


if __name__ == "__main__":
    main()
