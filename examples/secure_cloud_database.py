"""Scenario: a cloud key-value store whose access pattern leaks nothing.

The paper's motivation (§1): a data centre can watch which memory
locations a computation touches and reconstruct secrets from the pattern
alone. This example builds a small key-value store on top of the ORAM
and shows that two very different query workloads — a targeted lookup
storm against one hot record vs a uniform scan — produce externally
indistinguishable DRAM traces, while the same workloads over plain
memory are trivially distinguishable.

Run:  python examples/secure_cloud_database.py
"""

from typing import Dict, List

from repro import DeterministicRng, pc_x32
from repro.adversary.observer import TraceObserver
from repro.utils.stats import chi_square_uniform

NUM_BLOCKS = 2**12
RECORD_BYTES = 64


class ObliviousKeyValueStore:
    """Fixed-capacity KV store with ORAM-backed record storage."""

    def __init__(self, seed: int, observer: TraceObserver):
        self._oram = pc_x32(
            num_blocks=NUM_BLOCKS, rng=DeterministicRng(seed), observer=observer
        )
        self._directory: Dict[str, int] = {}
        self._next_slot = 0

    def put(self, key: str, value: bytes) -> None:
        if key not in self._directory:
            self._directory[key] = self._next_slot
            self._next_slot += 1
        padded = value.ljust(RECORD_BYTES, b"\x00")[:RECORD_BYTES]
        self._oram.write(self._directory[key], padded)

    def get(self, key: str) -> bytes:
        return self._oram.read(self._directory[key]).rstrip(b"\x00")


def run_workload(queries: List[str], seed: int) -> List[int]:
    """Run a query stream and return the adversary-visible leaf trace."""
    observer = TraceObserver()
    store = ObliviousKeyValueStore(seed, observer)
    for user in range(256):
        store.put(f"user:{user}", f"balance={user * 17}".encode())
    observer.clear()  # adversary starts watching after load
    for key in queries:
        store.get(key)
    return observer.leaf_sequence(0)


def main() -> None:
    hot_queries = ["user:42"] * 512  # an attacker-interesting pattern
    scan_queries = [f"user:{i % 256}" for i in range(512)]

    hot_trace = run_workload(hot_queries, seed=7)
    scan_trace = run_workload(scan_queries, seed=7)

    print("Oblivious store — DRAM-visible path traces:")
    for name, trace in (("hot-record storm", hot_trace), ("uniform scan", scan_trace)):
        counts = [0] * 64
        for leaf in trace:
            counts[leaf % 64] += 1
        stat, dof = chi_square_uniform(counts)
        print(
            f"  {name:>17}: {len(trace)} path reads, "
            f"leaf chi2/dof = {stat / dof:.2f} (uniform ~1.0)"
        )
    print("  -> both traces are uniform random paths; the adversary learns")
    print("     only the trace length, never *which* record is hot.\n")

    # Contrast: plain memory leaks the hot address immediately.
    plain_hot = [hash(q) % NUM_BLOCKS for q in hot_queries]
    plain_scan = [hash(q) % NUM_BLOCKS for q in scan_queries]
    print("Plain (non-ORAM) store address traces:")
    print(f"  hot-record storm touches {len(set(plain_hot))} distinct address(es)")
    print(f"  uniform scan touches     {len(set(plain_scan))} distinct addresses")
    print("  -> without ORAM the access pattern identifies the hot record.")


if __name__ == "__main__":
    main()
