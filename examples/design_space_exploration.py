"""Scenario: sizing an ORAM controller for a workload (mini §7.1).

A systems architect picking Frontend parameters wants to know, for their
workload mix: how much does the PLB help, what does compression buy, and
what does integrity cost? This example runs a miniature version of the
paper's evaluation — three locality classes x four schemes x a PLB
sweep — and prints the resulting design-space tables.

Run:  python examples/design_space_exploration.py
      REPRO_FULL=1 python examples/design_space_exploration.py   # larger
"""

import os

from repro.sim.metrics import format_table, slowdown_table
from repro.sim.runner import SimulationRunner

BENCHMARKS = ["hmmer", "libq", "mcf"]  # high / streaming / worst locality
SCHEMES = ["R_X8", "P_X16", "PC_X32", "PIC_X32"]


def main() -> None:
    misses = 20_000 if os.environ.get("REPRO_FULL") else 2_000
    runner = SimulationRunner(misses_per_benchmark=misses)

    print("=== Scheme comparison (slowdown vs insecure DRAM) ===")
    results = runner.run_suite(SCHEMES, BENCHMARKS)
    baselines = runner.baselines(BENCHMARKS)
    table = slowdown_table(results, baselines, SCHEMES)
    print(format_table(table, BENCHMARKS))
    pc = table["PC_X32"]["geomean"]
    print(f"\ncompression gain over P_X16 : {table['P_X16']['geomean'] / pc:.2f}x")
    print(f"integrity (PMMAC) overhead  : "
          f"{100 * (table['PIC_X32']['geomean'] / pc - 1):.1f}%")

    print("\n=== PLB capacity sweep (runtime normalised to 8 KB) ===")
    capacities = (8 * 1024, 32 * 1024, 64 * 1024, 128 * 1024)
    header = f"{'bench':>7} " + " ".join(f"{c // 1024:>5}K" for c in capacities)
    print(header)
    for bench in BENCHMARKS:
        cycles = {}
        for capacity in capacities:
            cycles[capacity] = runner.run_one(
                "PC_X32", bench, plb_capacity_bytes=capacity
            ).cycles
        base = cycles[capacities[0]]
        row = " ".join(f"{cycles[c] / base:6.3f}" for c in capacities)
        print(f"{bench:>7} {row}")

    print("\n=== PLB hit rates (why the sweep behaves that way) ===")
    for bench in BENCHMARKS:
        result = runner.run_one("PC_X32", bench)
        print(f"{bench:>7}: PLB hit rate {result.plb_hit_rate:5.1%}, "
              f"MPKI {result.mpki:5.1f}, "
              f"PosMap share of traffic {result.posmap_byte_fraction:5.1%}")


if __name__ == "__main__":
    main()
