"""Quickstart: an oblivious, integrity-verified RAM in a few lines.

Creates the paper's headline configuration — PLB + compressed PosMap +
PMMAC (PIC_X32) — stores some blocks, reads them back, and prints what
the ORAM controller did under the hood.

Run:  python examples/quickstart.py
"""

from repro import DeterministicRng, pic_x32


def main() -> None:
    # A 2^14-block ORAM (1 MiB of 64-byte blocks at simulation scale).
    oram = pic_x32(num_blocks=2**14, rng=DeterministicRng(2015))

    # The processor-facing interface is an ordinary block RAM.
    oram.write(1000, b"attack at dawn".ljust(64, b"\x00"))
    oram.write(1001, b"retreat at dusk".ljust(64, b"\x00"))

    secret = oram.read(1000)
    print(f"block 1000: {secret.rstrip(bytes(1)).decode()}")
    assert oram.read(1001).startswith(b"retreat")

    # Never-written blocks read as zeroes, obliviously.
    assert oram.read(5) == bytes(64)

    # What the controller did:
    stats = oram.stats
    print(f"processor requests      : {stats.accesses}")
    print(f"ORAM tree path accesses : {stats.tree_accesses}")
    print(f"  for data blocks       : {stats.data_tree_accesses}")
    print(f"  for PosMap blocks     : {stats.posmap_tree_accesses}")
    print(f"PLB hits / misses       : {stats.plb_hits} / {stats.plb_misses}")
    print(f"MAC verifications       : {stats.mac_checks}")
    print(f"bytes on memory bus     : {oram.total_bytes_moved}")
    print(f"on-chip PosMap          : {oram.onchip_posmap_bytes} B "
          f"(vs {oram.num_blocks * 4} B without recursion)")


if __name__ == "__main__":
    main()
