"""Workload generation: SPEC06-int stand-ins and synthetic patterns.

The paper drives its simulations with SPEC06-int reference traces. Those
traces are proprietary, so this package substitutes parameterised
synthetic generators that span the same locality spectrum (see DESIGN.md
§3): streaming, strided, Zipf-hot-set, pointer-chasing, and mixtures
thereof, one tuned stand-in per named benchmark.
"""

from repro.workloads.spec import (
    MULTI_TENANT_MIXES,
    SPEC_BENCHMARKS,
    SpecStandIn,
    benchmark,
    benchmark_names,
    interleaved_name,
)
from repro.workloads.synthetic import (
    hot_cold,
    pointer_chase,
    sequential_stream,
    strided_stream,
    uniform_random,
    zipf_random,
)

__all__ = [
    "MULTI_TENANT_MIXES",
    "SPEC_BENCHMARKS",
    "SpecStandIn",
    "benchmark",
    "benchmark_names",
    "interleaved_name",
    "sequential_stream",
    "strided_stream",
    "uniform_random",
    "zipf_random",
    "pointer_chase",
    "hot_cold",
]
