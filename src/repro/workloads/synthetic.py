"""Primitive synthetic address-pattern generators.

Each generator is an infinite iterator of byte addresses confined to a
working set of ``wss_bytes``. They are the building blocks the SPEC
stand-ins mix; each captures one archetypal locality class:

- :func:`sequential_stream` — unit-stride scan (libquantum-like);
- :func:`strided_stream` — constant stride, the §4.1.2 "program B";
- :func:`uniform_random` — no locality at all;
- :func:`zipf_random` — heavy-tailed hot set (gcc/perl-like heaps);
- :func:`pointer_chase` — dependent walk through a random permutation
  (mcf-like), the worst case for any cache and for the PLB;
- :func:`hot_cold` — small hot region plus cold uniform traffic.
"""

from __future__ import annotations

from typing import Iterator

from repro.utils.rng import DeterministicRng


def sequential_stream(
    wss_bytes: int, rng: DeterministicRng, stride: int = 64
) -> Iterator[int]:
    """Unit-stride scan over the working set, wrapping around."""
    addr = rng.randrange(max(wss_bytes // stride, 1)) * stride
    while True:
        yield addr
        addr = (addr + stride) % wss_bytes


def strided_stream(
    wss_bytes: int, rng: DeterministicRng, stride: int = 1024
) -> Iterator[int]:
    """Constant-stride scan (program B of §4.1.2 when stride = X lines)."""
    addr = rng.randrange(max(wss_bytes // 64, 1)) * 64
    while True:
        yield addr
        addr = (addr + stride) % wss_bytes


def uniform_random(wss_bytes: int, rng: DeterministicRng) -> Iterator[int]:
    """Uniform line-granular addresses — zero locality."""
    lines = max(wss_bytes // 64, 1)
    while True:
        yield rng.randrange(lines) * 64


def zipf_random(
    wss_bytes: int, rng: DeterministicRng, alpha: float = 0.9
) -> Iterator[int]:
    """Zipf-distributed line popularity (hot structures, cold tail)."""
    lines = max(wss_bytes // 64, 1)
    # A fixed pseudo-random rank->line shuffle keeps hot lines scattered.
    scramble = 0x9E3779B1
    while True:
        rank = rng.zipf(lines, alpha)
        yield ((rank * scramble) % lines) * 64


def pointer_chase(
    wss_bytes: int, rng: DeterministicRng, node_bytes: int = 64
) -> Iterator[int]:
    """Dependent pointer walk over a pseudo-random permutation.

    Uses a multiplicative-congruential permutation of the node space so
    the walk has full period without materialising the permutation.
    """
    nodes = max(wss_bytes // node_bytes, 2)
    current = rng.randrange(nodes)
    # Odd multiplier gives a bijection modulo a power of two; otherwise
    # fall back to an additive constant walk that still defeats caches.
    mult = 0x5DEECE66D | 1
    offset = rng.randrange(nodes) | 1
    while True:
        yield (current % nodes) * node_bytes
        current = (current * mult + offset) % nodes


def hot_cold(
    wss_bytes: int,
    rng: DeterministicRng,
    hot_fraction: float = 0.05,
    hot_probability: float = 0.9,
) -> Iterator[int]:
    """Hot/cold mixture: a small region absorbs most references."""
    lines = max(wss_bytes // 64, 1)
    hot_lines = max(int(lines * hot_fraction), 1)
    while True:
        if rng.random() < hot_probability:
            yield rng.randrange(hot_lines) * 64
        else:
            yield (hot_lines + rng.randrange(max(lines - hot_lines, 1))) * 64
