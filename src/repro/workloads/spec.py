"""SPEC06-int stand-in benchmarks.

Each stand-in is a weighted mixture of the synthetic primitives tuned to
the qualitative memory behaviour of the named SPEC benchmark (working-set
size, access-pattern mix, write share, memory intensity). The tuning
targets the *locality class*, which is what determines PLB hit rates and
LLC miss rates — the quantities the paper's figures depend on — not the
benchmark's semantics. Absolute MPKI values are approximate; the
simulation harness reports the measured values alongside every result.

Working sets are scaled for simulation tractability but ordered and
proportioned like the originals relative to the 1 MB L2: h264/hmmer fit
comfortably, gcc/perl/sjeng/gobmk spill moderately, astar/bzip2/libq
stream through several MB, and mcf/omnetpp sweep working sets far larger
than any cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from repro.utils.rng import DeterministicRng
from repro.workloads.synthetic import (
    hot_cold,
    pointer_chase,
    sequential_stream,
    strided_stream,
    uniform_random,
    zipf_random,
)

PatternFactory = Callable[[int, DeterministicRng], Iterator[int]]


@dataclass(frozen=True)
class SpecStandIn:
    """Parameterisation of one SPEC stand-in."""

    name: str
    wss_bytes: int
    #: (weight, factory) mixture of address patterns.
    patterns: Tuple[Tuple[float, PatternFactory], ...]
    write_fraction: float = 0.3
    #: Mean non-memory instructions between memory references.
    gap_instructions: int = 2

    def refs(self, rng: DeterministicRng) -> Iterator[Tuple[int, bool, int]]:
        """Infinite (gap, is_write, byte_addr) reference stream."""
        gens = [factory(self.wss_bytes, rng.fork(i)) for i, (_, factory) in enumerate(self.patterns)]
        weights = [w for w, _ in self.patterns]
        total = sum(weights)
        cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cum.append(acc)
        pick_rng = rng.fork(0xF00D)
        while True:
            u = pick_rng.random()
            gen = gens[next(i for i, c in enumerate(cum) if u <= c)]
            gap = pick_rng.randint(0, 2 * self.gap_instructions)
            yield gap, pick_rng.random() < self.write_fraction, next(gen)


_MiB = 1024 * 1024

SPEC_BENCHMARKS: Dict[str, SpecStandIn] = {
    # Graph path-finding: pointer-heavy with a warm core.
    "astar": SpecStandIn(
        "astar", 6 * _MiB,
        ((0.45, pointer_chase), (0.35, lambda w, r: zipf_random(w, r, 1.1)),
         (0.20, lambda w, r: sequential_stream(w, r, stride=16))),
        write_fraction=0.25, gap_instructions=10,
    ),
    # Compression: large buffers scanned with block-local reuse.
    "bzip2": SpecStandIn(
        "bzip2", 8 * _MiB,
        ((0.40, lambda w, r: sequential_stream(w, r, stride=16)),
         (0.40, lambda w, r: hot_cold(w, r, hot_fraction=0.08, hot_probability=0.8)),
         (0.20, uniform_random)),
        write_fraction=0.35, gap_instructions=8,
    ),
    # Compiler: many medium structures, heavy-tailed reuse.
    "gcc": SpecStandIn(
        "gcc", 4 * _MiB,
        ((0.60, lambda w, r: zipf_random(w, r, 1.2)),
         (0.25, lambda w, r: sequential_stream(w, r, stride=16)),
         (0.15, pointer_chase)),
        write_fraction=0.3, gap_instructions=10,
    ),
    # Go playing: compact board state, mostly cache-resident.
    "gob": SpecStandIn(
        "gob", 2 * _MiB,
        ((0.6, lambda w, r: zipf_random(w, r, 1.2)),
         (0.4, lambda w, r: hot_cold(w, r, 0.1, 0.9))),
        write_fraction=0.3, gap_instructions=12,
    ),
    # Video decode: streaming frames with strong intra-line locality.
    "h264": SpecStandIn(
        "h264", 3 * _MiB,
        ((0.80, lambda w, r: sequential_stream(w, r, stride=8)),
         (0.15, lambda w, r: strided_stream(w, r, 256)),
         (0.05, uniform_random)),
        write_fraction=0.4, gap_instructions=8,
    ),
    # Profile HMM search: small hot tables, very high locality.
    "hmmer": SpecStandIn(
        "hmmer", 2 * _MiB,
        ((0.75, lambda w, r: hot_cold(w, r, 0.1, 0.95)),
         (0.25, lambda w, r: sequential_stream(w, r, stride=8))),
        write_fraction=0.3, gap_instructions=10,
    ),
    # Quantum simulation: pure streaming over a large vector.
    "libq": SpecStandIn(
        "libq", 12 * _MiB,
        ((0.95, lambda w, r: sequential_stream(w, r, stride=16)),
         (0.05, uniform_random)),
        write_fraction=0.45, gap_instructions=6,
    ),
    # Network simplex: giant pointer graph, worst-case locality.
    "mcf": SpecStandIn(
        "mcf", 24 * _MiB,
        ((0.65, pointer_chase), (0.2, uniform_random),
         (0.15, lambda w, r: sequential_stream(w, r, stride=16))),
        write_fraction=0.3, gap_instructions=8,
    ),
    # Discrete event simulation: large heap, scattered objects.
    "omnet": SpecStandIn(
        "omnet", 16 * _MiB,
        ((0.5, uniform_random), (0.3, pointer_chase),
         (0.2, lambda w, r: zipf_random(w, r, 0.8))),
        write_fraction=0.35, gap_instructions=10,
    ),
    # Interpreter: hot dispatch structures plus heap churn.
    "perl": SpecStandIn(
        "perl", 3 * _MiB,
        ((0.65, lambda w, r: zipf_random(w, r, 1.2)), (0.20, pointer_chase),
         (0.15, lambda w, r: sequential_stream(w, r, stride=8))),
        write_fraction=0.35, gap_instructions=10,
    ),
    # Chess search: transposition tables with random probes.
    "sjeng": SpecStandIn(
        "sjeng", 6 * _MiB,
        ((0.45, uniform_random), (0.55, lambda w, r: hot_cold(w, r, 0.08, 0.75))),
        write_fraction=0.3, gap_instructions=12,
    ),
}


#: Recommended multi-tenant interleaved mixes (see :func:`interleaved_name`),
#: spanning the locality spectrum: cache-friendly pair, mixed-locality
#: pair, and a streaming-vs-pointer-chase worst case.
MULTI_TENANT_MIXES: Tuple[str, ...] = ("hmmer+gob", "gcc+h264", "mcf+libq")

#: Floor for a scaled mix component's region (one trivially small tenant
#: would otherwise collapse to an empty address range).
_MIN_COMPONENT_BYTES = 4096

#: Parsed derived stand-ins, memoised by their self-describing name.
_DERIVED_CACHE: Dict[str, SpecStandIn] = {}


def interleaved_name(names) -> str:
    """Self-describing name of a multi-tenant interleaved workload.

    ``interleaved_name(["gcc", "mcf"])`` -> ``"gcc+mcf"``: each component
    runs its own access-pattern mixture inside a private region of one
    shared address space (tenant regions are laid out back to back), with
    references interleaved so every component gets an equal share — the
    memory image of N tenants timesharing one ORAM. The name round-trips
    through :func:`benchmark` in any process, exactly like ``@wss=``
    derived names, so sweeps, worker pools and on-disk caches treat mixes
    as first-class benchmarks.
    """
    parts = list(names)
    if len(parts) < 2:
        raise ValueError("an interleaved mix needs at least two components")
    for part in parts:
        if part not in SPEC_BENCHMARKS:
            raise KeyError(
                f"unknown mix component {part!r}; "
                f"available: {sorted(SPEC_BENCHMARKS)}"
            )
    return "+".join(parts)


def _region_pattern(factory: PatternFactory, comp_wss: int, offset: int):
    """A component pattern confined to its own region of the mix space."""

    def make(_wss: int, rng: DeterministicRng) -> Iterator[int]:
        return (addr + offset for addr in factory(comp_wss, rng))

    return make


def _parse_mix(name: str, wss_bytes: "int | None" = None) -> "SpecStandIn | None":
    """Decode an ``a+b[+c...]`` interleaved mix (None if not one).

    Components keep their own pattern mixtures but are confined to
    disjoint back-to-back regions; each component's patterns are
    re-weighted to 1 so every tenant contributes an equal share of
    references. A ``wss_bytes`` override rescales every region
    proportionally (the sweep engine's ``wss`` axis).
    """
    if "+" not in name:
        return None
    parts = name.split("+")
    if len(parts) < 2 or any(part not in SPEC_BENCHMARKS for part in parts):
        return None
    comps = [SPEC_BENCHMARKS[part] for part in parts]
    native_total = sum(comp.wss_bytes for comp in comps)
    scale = 1.0 if wss_bytes is None else wss_bytes / native_total
    full_name = name if wss_bytes is None else f"{name}@wss={wss_bytes}"
    patterns = []
    offset = 0
    for comp in comps:
        comp_wss = max(int(comp.wss_bytes * scale), _MIN_COMPONENT_BYTES)
        weight_total = sum(weight for weight, _factory in comp.patterns)
        for weight, factory in comp.patterns:
            patterns.append(
                (weight / weight_total, _region_pattern(factory, comp_wss, offset))
            )
        offset += comp_wss
    return SpecStandIn(
        name=full_name,
        wss_bytes=max(wss_bytes if wss_bytes is not None else native_total, offset),
        patterns=tuple(patterns),
        write_fraction=sum(c.write_fraction for c in comps) / len(comps),
        gap_instructions=max(
            round(sum(c.gap_instructions for c in comps) / len(comps)), 1
        ),
    )


def scaled_benchmark_name(name: str, wss_bytes: int) -> str:
    """Self-describing name of a WSS-overridden stand-in.

    ``scaled_benchmark_name("mcf", 8 << 20)`` -> ``"mcf@wss=8388608"``;
    a no-op override returns the base name unchanged. A name that is
    *already* derived re-derives from its base (the override replaces,
    it does not stack); interleaved mixes (``"gcc+mcf"``) scale every
    component region proportionally. The returned name round-trips
    through :func:`benchmark` *in any process* — the override is parsed
    back out of the name, never looked up in mutable registry state —
    which is what lets worker pools and on-disk cache keys treat derived
    benchmarks exactly like registered ones.
    """
    name = name.partition("@")[0]
    base = SPEC_BENCHMARKS.get(name)
    if base is None:
        base = _parse_mix(name)
    if base is None:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(SPEC_BENCHMARKS)}"
        )
    if not isinstance(wss_bytes, int) or isinstance(wss_bytes, bool) or wss_bytes < 1:
        raise ValueError(f"wss override must be a positive byte count, got {wss_bytes!r}")
    if wss_bytes == base.wss_bytes:
        return name
    return f"{name}@wss={wss_bytes}"


def _parse_derived(name: str) -> "SpecStandIn | None":
    """Decode a ``base@wss=BYTES`` derived name (None if not one)."""
    base_name, sep, suffix = name.partition("@")
    if not sep:
        return None
    key, eq, value = suffix.partition("=")
    if key != "wss" or not eq:
        return None
    try:
        wss_bytes = int(value)
    except ValueError:
        return None
    if wss_bytes < 1:
        return None
    if base_name in SPEC_BENCHMARKS:
        return dataclasses.replace(
            SPEC_BENCHMARKS[base_name], name=name, wss_bytes=wss_bytes
        )
    return _parse_mix(base_name, wss_bytes)


def benchmark(name: str) -> SpecStandIn:
    """Stand-in by SPEC short name (see :data:`SPEC_BENCHMARKS`).

    Also accepts self-describing derived names: ``"mcf@wss=8388608"``
    (working-set override — the sweep engine's benchmark-parameter grid
    axis), ``"gcc+mcf"`` (multi-tenant interleaved mix, see
    :func:`interleaved_name`), and ``"gcc+mcf@wss=BYTES"`` (both).
    """
    try:
        return SPEC_BENCHMARKS[name]
    except KeyError:
        pass
    derived = _DERIVED_CACHE.get(name)
    if derived is None:
        derived = _parse_derived(name) if "@" in name else _parse_mix(name)
        if derived is not None:
            _DERIVED_CACHE[name] = derived
    if derived is not None:
        return derived
    raise KeyError(
        f"unknown benchmark {name!r}; available: {sorted(SPEC_BENCHMARKS)} "
        "(or a derived 'name@wss=BYTES' / interleaved 'a+b' mix)"
    )


def benchmark_names() -> List[str]:
    """All stand-in names in the paper's figure order."""
    return list(SPEC_BENCHMARKS)
