"""Declarative scheme specifications: the paper's evaluation matrix as data.

The evaluation (§7) is a grid of named schemes (R_X8 … PIC_X32) crossed
with benchmarks and parameter variations. :class:`SchemeSpec` captures one
point of that grid as a frozen, serializable value object — frontend kind,
PosMap format and fan-out inputs, PLB geometry, PMMAC, storage backend and
crypto suite — so experiments are configured with *data* instead of
hand-threaded keyword arguments:

- ``to_dict()``/``from_dict()`` and the spec mini-language
  ``to_string()``/``from_string()`` (``"PIC_X32:plb=32KiB,storage=array"``)
  round-trip exactly;
- ``with_(**changes)`` derives variations (unknown fields raise
  :class:`~repro.errors.SpecError` naming the valid ones);
- ``canonical()`` is a stable, total serialization used by the on-disk
  :class:`~repro.sim.result_cache.ResultCache` as its cache key — every
  knob re-keys automatically, with no hand-maintained argument list;
- ``build()`` constructs the frontend via each frontend's ``from_spec``,
  bit-identical to the historical preset factories (pinned by the
  golden-digest tests in ``tests/test_equivalence_golden.py``).

A process-wide registry maps the paper's scheme names to their specs;
:func:`register` admits new named schemes (e.g. from downstream studies)
without touching any construction code.

Build-time objects — ``rng``, ``observer``, and concrete ``CryptoSuite``
instances — are deliberately *not* spec fields: a spec describes a
configuration, not a run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.crypto.suite import CryptoSuite
from repro.errors import SpecError
from repro.frontend.linear import LinearFrontend
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend

#: Frontend organisations a spec can name.
FRONTEND_KINDS = ("recursive", "plb", "linear")

#: PosMap block formats of the unified-tree frontend (§4/§5/§6).
POSMAP_FORMATS = ("uncompressed", "flat", "compressed")

#: Tree storage backends (``default`` defers to ``REPRO_STORAGE``).
STORAGE_KINDS = ("default", "object", "tree", "array", "columnar")

#: Crypto suites (:class:`~repro.crypto.suite.CryptoSuite` constructors).
CRYPTO_KINDS = ("fast", "reference")


@dataclass(frozen=True)
class SchemeSpec:
    """One fully-specified ORAM scheme configuration (a value object).

    Field defaults reproduce the simulation-scale defaults of the historic
    preset factories (N = 2^16 blocks, 64-byte blocks, 64 KiB PLB); the
    bare ``SchemeSpec()`` is exactly the paper's P_X16.
    """

    frontend: str = "plb"
    posmap_format: str = "uncompressed"
    pmmac: bool = False
    num_blocks: int = 2**16
    block_bytes: int = 64
    blocks_per_bucket: int = 4
    posmap_block_bytes: int = 32
    leaf_bytes: int = 4
    onchip_entries: int = 2**11
    plb_capacity_bytes: int = 64 * 1024
    plb_ways: int = 1
    mac_tag_bytes: int = 14
    compressed_alpha: int = 64
    compressed_beta: int = 14
    compressed_fanout: Optional[int] = None
    storage: str = "default"
    crypto: str = "fast"

    def __post_init__(self):
        if self.frontend not in FRONTEND_KINDS:
            raise SpecError(
                f"unknown frontend {self.frontend!r}; choose from {FRONTEND_KINDS}"
            )
        if self.posmap_format not in POSMAP_FORMATS:
            raise SpecError(
                f"unknown posmap_format {self.posmap_format!r}; "
                f"choose from {POSMAP_FORMATS}"
            )
        if self.storage not in STORAGE_KINDS:
            raise SpecError(
                f"unknown storage {self.storage!r}; choose from {STORAGE_KINDS}"
            )
        if self.crypto not in CRYPTO_KINDS:
            raise SpecError(
                f"unknown crypto {self.crypto!r}; choose from {CRYPTO_KINDS}"
            )
        if self.pmmac and self.frontend != "plb":
            raise SpecError(
                "pmmac requires frontend='plb' — PMMAC is a property of the "
                "unified-tree organisation (§6) and cannot be bolted onto "
                f"{self.frontend!r}"
            )
        if self.crypto != "fast" and self.frontend != "plb":
            raise SpecError(
                f"crypto={self.crypto!r} requires frontend='plb' — the "
                "recursive and linear baselines take no crypto suite, so a "
                "non-default selection would be silently ignored"
            )
        for name in _POSITIVE_INT_FIELDS:
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise SpecError(f"{name} must be a positive integer, got {value!r}")
        if self.compressed_fanout is not None and (
            isinstance(self.compressed_fanout, bool)
            or not isinstance(self.compressed_fanout, int)
            or self.compressed_fanout < 1
        ):
            raise SpecError(
                f"compressed_fanout must be None or a positive integer, "
                f"got {self.compressed_fanout!r}"
            )
        if not isinstance(self.pmmac, bool):
            raise SpecError(f"pmmac must be a bool, got {self.pmmac!r}")

    # -- derived geometry --------------------------------------------------------

    @property
    def fanout(self) -> int:
        """PosMap fan-out X implied by this configuration (0 = no recursion)."""
        if self.frontend == "recursive":
            return self.posmap_block_bytes // self.leaf_bytes
        if self.frontend == "linear":
            return 0
        return PlbFrontend._format_fanout(
            self.posmap_format,
            self.block_bytes,
            self.leaf_bytes,
            self.compressed_alpha,
            self.compressed_beta,
            self.compressed_fanout,
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data image (JSON-safe); inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SchemeSpec":
        """Construct from a (possibly partial) field mapping."""
        unknown = sorted(set(data) - set(SPEC_FIELDS))
        if unknown:
            raise SpecError(
                f"unknown spec field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(SPEC_FIELDS)}"
            )
        return cls(**dict(data))

    def canonical(self) -> str:
        """Total, order-stable serialization — the result-cache key basis.

        Every field participates (sorted ``name=repr(value)``), so any new
        knob added to the spec automatically re-keys cached results.
        """
        return "|".join(f"{name}={getattr(self, name)!r}" for name in sorted(SPEC_FIELDS))

    def to_string(self) -> str:
        """Spec mini-language image, e.g. ``"PIC_X32:plb_capacity_bytes=32768"``.

        Rendered as the nearest registered scheme name plus its field
        deltas; ``from_string(spec.to_string()) == spec`` always holds.
        """
        return render_scheme_string(*decompose_spec(self))

    @classmethod
    def from_string(cls, text: str) -> "SchemeSpec":
        """Parse the mini-language: ``NAME[:field=value,...]``.

        ``NAME`` is a registered scheme; fields accept their full names or
        the short aliases in :data:`FIELD_ALIASES`; byte-sized integers
        accept ``KiB``/``MiB``/``GiB`` suffixes (``"plb=32KiB"``).
        """
        name, changes = parse_scheme_string(text)
        return get_spec(name).with_(**changes)

    # -- derivation --------------------------------------------------------------

    def with_(self, **changes) -> "SchemeSpec":
        """A copy with the given fields replaced (validated, frozen)."""
        if not changes:
            return self
        unknown = sorted(set(changes) - set(SPEC_FIELDS))
        if unknown:
            raise SpecError(
                f"unknown spec field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(SPEC_FIELDS)}"
            )
        return replace(self, **changes)

    # -- construction ------------------------------------------------------------

    def build(self, rng=None, observer=None, crypto=None):
        """Instantiate the frontend this spec describes.

        ``rng``/``observer``/``crypto`` are build-time objects: a concrete
        ``crypto`` suite overrides the spec's ``crypto`` kind (back-compat
        with the legacy factories, which accepted suite instances).
        """
        if crypto is None and self.crypto == "reference":
            crypto = CryptoSuite.reference()
        if self.frontend == "recursive":
            return RecursiveFrontend.from_spec(self, rng=rng, observer=observer)
        if self.frontend == "linear":
            return LinearFrontend.from_spec(self, rng=rng, observer=observer)
        return PlbFrontend.from_spec(
            self, rng=rng, observer=observer, crypto=crypto
        )


#: All SchemeSpec field names, in declaration order.
SPEC_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(SchemeSpec))

_STR_FIELDS = frozenset({"frontend", "posmap_format", "storage", "crypto"})
_BOOL_FIELDS = frozenset({"pmmac"})
_OPTIONAL_INT_FIELDS = frozenset({"compressed_fanout"})
_POSITIVE_INT_FIELDS = tuple(
    name
    for name in SPEC_FIELDS
    if name not in _STR_FIELDS | _BOOL_FIELDS | _OPTIONAL_INT_FIELDS
)

#: Short mini-language aliases accepted by ``from_string`` (full field
#: names always work too).
FIELD_ALIASES: Dict[str, str] = {
    "plb": "plb_capacity_bytes",
    "ways": "plb_ways",
    "posmap": "posmap_format",
    "format": "posmap_format",
    "onchip": "onchip_entries",
    "blocks": "num_blocks",
    "z": "blocks_per_bucket",
    "alpha": "compressed_alpha",
    "beta": "compressed_beta",
    "fanout": "compressed_fanout",
    "mac": "mac_tag_bytes",
}

_SIZE_UNITS = (
    ("kib", 1024),
    ("mib", 1 << 20),
    ("gib", 1 << 30),
    ("k", 1024),
    ("m", 1 << 20),
    ("g", 1 << 30),
    ("b", 1),
)

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def parse_size(text: str) -> int:
    """Integer with optional binary size suffix: ``"32KiB"`` -> 32768."""
    token = str(text).strip().lower().replace("_", "")
    for unit, scale in _SIZE_UNITS:
        if token.endswith(unit) and len(token) > len(unit):
            number = token[: -len(unit)]
            try:
                scaled = float(number) * scale
            except ValueError:
                break
            if scaled != int(scaled):
                raise SpecError(f"size {text!r} is not a whole number of bytes")
            return int(scaled)
    try:
        return int(token, 0)
    except ValueError:
        raise SpecError(f"cannot parse integer value {text!r}") from None


def resolve_field(key: str) -> str:
    """Map a mini-language key (alias or full name) to a spec field."""
    token = key.strip().lower()
    name = FIELD_ALIASES.get(token, token)
    if name not in SPEC_FIELDS:
        raise SpecError(
            f"unknown spec field {key!r}; valid fields: {', '.join(SPEC_FIELDS)} "
            f"(aliases: {', '.join(sorted(FIELD_ALIASES))})"
        )
    return name


def parse_field_value(field_name: str, text: str) -> object:
    """Parse a mini-language value by its field's type."""
    token = str(text).strip()
    if field_name in _STR_FIELDS:
        return token
    if field_name in _BOOL_FIELDS:
        lowered = token.lower()
        if lowered in _TRUE_WORDS:
            return True
        if lowered in _FALSE_WORDS:
            return False
        raise SpecError(f"{field_name} expects a boolean, got {text!r}")
    if field_name in _OPTIONAL_INT_FIELDS and token.lower() in ("none", "auto"):
        return None
    return parse_size(token)


def _format_value(value: object) -> str:
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def parse_scheme_string(text: str) -> Tuple[str, Dict[str, object]]:
    """Split ``NAME[:k=v,...]`` into (registered name, parsed field deltas)."""
    if not isinstance(text, str) or not text.strip():
        raise SpecError(f"empty scheme spec {text!r}")
    name, sep, rest = text.partition(":")
    name = name.strip()
    if name not in _REGISTRY:
        raise SpecError(
            f"unknown scheme {name!r}; choose from {tuple(_REGISTRY)}"
        )
    changes: Dict[str, object] = {}
    if sep:
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise SpecError(
                    f"spec option {item!r} is not of the form field=value"
                )
            key, value = item.split("=", 1)
            field_name = resolve_field(key)
            changes[field_name] = parse_field_value(field_name, value)
    return name, changes


def render_scheme_string(name: str, changes: Mapping[str, object]) -> str:
    """Inverse of :func:`parse_scheme_string` (full field names, sorted)."""
    if not changes:
        return name
    body = ",".join(
        f"{key}={_format_value(value)}" for key, value in sorted(changes.items())
    )
    return f"{name}:{body}"


def decompose_spec(spec: SchemeSpec) -> Tuple[str, Dict[str, object]]:
    """Express a spec as (nearest registered base name, field deltas).

    Deterministic: registry insertion order breaks ties, and an exact
    registry match yields empty deltas. This is what lets the experiment
    runner re-apply its per-benchmark sizing *underneath* a caller's
    explicit deltas.
    """
    best_name: Optional[str] = None
    best_diffs: Optional[Dict[str, object]] = None
    for name, base in _REGISTRY.items():
        diffs = {
            field_name: getattr(spec, field_name)
            for field_name in SPEC_FIELDS
            if getattr(spec, field_name) != getattr(base, field_name)
        }
        if best_diffs is None or len(diffs) < len(best_diffs):
            best_name, best_diffs = name, diffs
            if not diffs:
                break
    if best_name is None or best_diffs is None:
        raise SpecError("scheme registry is empty; register() a base spec first")
    return best_name, best_diffs


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, SchemeSpec] = {}


def register(name: str, spec: SchemeSpec, *, overwrite: bool = False) -> SchemeSpec:
    """Add a named scheme to the registry (refuses silent redefinition)."""
    if not name or not isinstance(name, str):
        raise SpecError(f"scheme name must be a non-empty string, got {name!r}")
    if ":" in name or "," in name or "=" in name:
        raise SpecError(f"scheme name {name!r} may not contain ':', ',' or '='")
    if name in _REGISTRY and not overwrite:
        raise SpecError(f"scheme {name!r} already registered (pass overwrite=True)")
    if not isinstance(spec, SchemeSpec):
        raise SpecError(f"register() expects a SchemeSpec, got {type(spec).__name__}")
    _REGISTRY[name] = spec
    return spec


def get_spec(name: str) -> SchemeSpec:
    """Registered spec for a scheme name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown scheme {name!r}; choose from {tuple(_REGISTRY)}"
        ) from None


def spec_names() -> Tuple[str, ...]:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def resolve_spec(value) -> SchemeSpec:
    """Coerce a SchemeSpec, registry name, or spec string to a SchemeSpec."""
    if isinstance(value, SchemeSpec):
        return value
    if isinstance(value, str):
        return SchemeSpec.from_string(value)
    raise SpecError(
        f"expected a SchemeSpec or spec string, got {type(value).__name__}"
    )


def spec_label(value) -> str:
    """Canonical display label: nearest registered name plus deltas."""
    return resolve_spec(value).to_string()


# The paper's named configurations (§7.1.4), registered in paper order so
# decomposition ties resolve the same way the paper names them.
register("R_X8", SchemeSpec(frontend="recursive", posmap_block_bytes=32))
register("P_X16", SchemeSpec(frontend="plb", posmap_format="uncompressed"))
register("PC_X32", SchemeSpec(frontend="plb", posmap_format="compressed"))
register("PI_X8", SchemeSpec(frontend="plb", posmap_format="flat", pmmac=True))
register(
    "PIC_X32", SchemeSpec(frontend="plb", posmap_format="compressed", pmmac=True)
)
register(
    "PC_X64",
    SchemeSpec(
        frontend="plb",
        posmap_format="compressed",
        num_blocks=2**15,
        block_bytes=128,
        blocks_per_bucket=3,
    ),
)
register(
    "phantom_4kb",
    SchemeSpec(frontend="linear", num_blocks=2**12, block_bytes=4096),
)
