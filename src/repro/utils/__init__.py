"""Shared utility layer: bit manipulation, unit parsing, statistics, RNG."""

from repro.utils.bitops import (
    bit_length,
    clear_bit,
    common_prefix_len,
    extract_bits,
    is_power_of_two,
    log2_exact,
    reverse_bits,
    set_bit,
    bit_is_set,
)
from repro.utils.rng import DeterministicRng
from repro.utils.stats import RunningStats, geometric_mean, histogram
from repro.utils.units import GiB, KiB, MiB, format_bytes, parse_size

__all__ = [
    "bit_length",
    "clear_bit",
    "common_prefix_len",
    "extract_bits",
    "is_power_of_two",
    "log2_exact",
    "reverse_bits",
    "set_bit",
    "bit_is_set",
    "DeterministicRng",
    "RunningStats",
    "geometric_mean",
    "histogram",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "parse_size",
]
