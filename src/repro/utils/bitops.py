"""Bit-manipulation helpers used throughout the ORAM tree arithmetic.

Path ORAM addresses tree nodes by (level, leaf) pairs, and eviction logic
depends on the length of the common prefix of two leaf labels (viewed as
L-bit strings, most significant bit first). These helpers centralise that
arithmetic so the backend and tests share one definition.
"""

from __future__ import annotations


def is_power_of_two(x: int) -> bool:
    """Return True if ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Return log2(x) for a power of two ``x``; raise ValueError otherwise."""
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def bit_length(x: int) -> int:
    """Number of bits needed to represent ``x`` (0 needs 0 bits)."""
    if x < 0:
        raise ValueError("bit_length is defined for non-negative integers")
    return x.bit_length()


def bit_is_set(x: int, i: int) -> bool:
    """Return True if bit ``i`` (LSB = 0) of ``x`` is set."""
    return (x >> i) & 1 == 1


def set_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` set."""
    return x | (1 << i)


def clear_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` cleared."""
    return x & ~(1 << i)


def extract_bits(x: int, lo: int, width: int) -> int:
    """Return ``width`` bits of ``x`` starting at bit ``lo`` (LSB = 0)."""
    if width < 0 or lo < 0:
        raise ValueError("lo and width must be non-negative")
    return (x >> lo) & ((1 << width) - 1)


def reverse_bits(x: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``x``."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


def common_prefix_len(a: int, b: int, width: int) -> int:
    """Length of the common prefix of ``a`` and ``b`` as ``width``-bit strings.

    Both are interpreted MSB-first. The result is the deepest tree level
    (0..width) at which the paths to leaves ``a`` and ``b`` still coincide.
    """
    if a >= (1 << width) or b >= (1 << width):
        raise ValueError("leaf label out of range for given width")
    xor = a ^ b
    if xor == 0:
        return width
    return width - xor.bit_length()
