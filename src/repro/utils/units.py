"""Byte-size constants, parsing and formatting.

The paper quotes capacities in binary units (8 KB PosMap, 4 GB ORAM, ...).
All sizes in this library are in bytes unless a name says otherwise.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

_SUFFIXES = {
    "b": 1,
    "kb": KiB,
    "kib": KiB,
    "mb": MiB,
    "mib": MiB,
    "gb": GiB,
    "gib": GiB,
    "tb": TiB,
    "tib": TiB,
}


def parse_size(text: str) -> int:
    """Parse a human size string such as ``"64KB"`` or ``"4 GiB"`` to bytes.

    Binary (1024-based) multipliers are used for both KB and KiB spellings,
    matching the paper's convention.
    """
    s = text.strip().lower().replace(" ", "")
    for suffix in sorted(_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)]
            if not number:
                raise ValueError(f"no numeric part in size {text!r}")
            value = float(number)
            result = value * _SUFFIXES[suffix]
            if result != int(result):
                raise ValueError(f"size {text!r} is not a whole number of bytes")
            return int(result)
    if s.isdigit():
        return int(s)
    raise ValueError(f"cannot parse size {text!r}")


def format_bytes(n: int) -> str:
    """Format a byte count with the largest suitable binary suffix."""
    if n < 0:
        raise ValueError("byte count must be non-negative")
    for suffix, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if n >= factor:
            value = n / factor
            if value == int(value):
                return f"{int(value)} {suffix}"
            return f"{value:.2f} {suffix}"
    return f"{n} B"
