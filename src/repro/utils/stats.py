"""Small statistics helpers shared by the simulator and the benches.

The paper reports geometric-mean speedups across SPEC benchmarks and
averages of per-access quantities; these helpers implement exactly those
aggregations plus a streaming mean/max tracker used by the stash monitor.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (paper's cross-benchmark average)."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def histogram(values: Sequence[int]) -> Dict[int, int]:
    """Exact integer histogram as a dict value -> count."""
    out: Dict[int, int] = {}
    for v in values:
        out[v] = out.get(v, 0) + 1
    return out


def chi_square_uniform(counts: Sequence[int]) -> Tuple[float, int]:
    """Chi-square statistic and dof against a uniform expectation.

    Used by the privacy tests to check that backend leaf sequences are
    indistinguishable from uniform draws.
    """
    k = len(counts)
    if k < 2:
        raise ValueError("need at least two bins")
    total = sum(counts)
    if total == 0:
        raise ValueError("empty histogram")
    expected = total / k
    stat = sum((c - expected) ** 2 / expected for c in counts)
    return stat, k - 1


class RunningStats:
    """Streaming count/mean/max/min tracker (Welford variance)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.max = float("-inf")
        self.min = float("inf")

    def add(self, x: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x > self.max:
            self.max = x
        if x < self.min:
            self.min = x

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> Dict[str, float]:
        """Summary as a plain dict for reporting."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (figure normalisation helper)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [v / reference for v in values]
