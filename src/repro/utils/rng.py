"""Deterministic random-number generation.

Every stochastic component (leaf remapping, workload generation, DRAM
interleaving) draws from a :class:`DeterministicRng` so that simulations are
reproducible bit-for-bit given a seed. The class wraps :class:`random.Random`
and adds the few draws the ORAM layer needs.
"""

from __future__ import annotations

import random


class DeterministicRng:
    """Seeded RNG with helpers for leaf labels and geometric gaps."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self.seed = seed
        # Bound-method fast path: leaf remapping calls this once per ORAM
        # access, so skip the extra attribute hop through self._rng.
        self._getrandbits = self._rng.getrandbits

    def random_leaf(self, num_levels: int) -> int:
        """Uniform leaf label in [0, 2**num_levels)."""
        return self._getrandbits(num_levels) if num_levels > 0 else 0

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def randrange(self, n: int) -> int:
        """Uniform integer in [0, n)."""
        return self._rng.randrange(n)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def getrandbits(self, k: int) -> int:
        """Uniform ``k``-bit integer."""
        return self._getrandbits(k) if k > 0 else 0

    def random_bytes(self, n: int) -> bytes:
        """``n`` uniformly random bytes."""
        return self._rng.getrandbits(8 * n).to_bytes(n, "little") if n else b""

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)

    def zipf(self, n: int, alpha: float) -> int:
        """Approximate Zipf(alpha) draw over [0, n) via inverse CDF sampling.

        Uses the standard power-law inversion which is accurate enough for
        workload-locality modelling (we only need a heavy-tailed rank
        distribution, not an exact Zipf).
        """
        if n <= 1:
            return 0
        u = self._rng.random()
        # Inverse of the continuous approximation of the Zipf CDF.
        if alpha == 1.0:
            rank = int(n ** u) - 1
        else:
            one = 1.0 - alpha
            rank = int(((n ** one - 1.0) * u + 1.0) ** (1.0 / one)) - 1
        return min(max(rank, 0), n - 1)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent child stream (stable across runs)."""
        return DeterministicRng((self.seed * 0x9E3779B97F4A7C15 + salt) & (2**63 - 1))
