"""DDR3 DRAM timing model and the subtree ORAM layout of [26].

The paper evaluates on DRAMSim2 with its default DDR3 Micron part: 8
banks, 16384 rows, 1024 columns per row, 667 MHz DDR, 64-bit bus —
~10.67 GB/s per channel (§7.1.1). This package provides a simplified but
structurally faithful substitute: per-bank open-row state machines, a
channel-level bus serialisation model, and the subtree address layout
that packs k tree levels per DRAM row so path reads stay row-buffer
friendly. It reproduces Table 2's shape (sub-linear latency scaling in
channel count) and the 58-cycle insecure DRAM access baseline.
"""

from repro.dram.config import DramConfig
from repro.dram.layout import SubtreeLayout
from repro.dram.model import DramModel, PathAccessStats

__all__ = ["DramConfig", "SubtreeLayout", "DramModel", "PathAccessStats"]
