"""Subtree address layout ([26] §ORAM-to-DRAM mapping).

A naive level-major layout makes every bucket on a path hit a different
DRAM row, paying a row activation per bucket. The subtree layout instead
groups each k-level subtree (2^k - 1 buckets) into one DRAM row, so a
path of L+1 buckets touches only ceil((L+1)/k) rows. Subtrees are
interleaved across channels and banks so path reads exploit all channels;
this is how the paper's configurations approach peak DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dram.config import DramConfig


@dataclass(frozen=True)
class BucketLocation:
    """Physical coordinates of one bucket."""

    channel: int
    bank: int
    row: int
    row_offset_bytes: int


class SubtreeLayout:
    """Maps (tree level, leaf path) bucket coordinates to DRAM locations."""

    def __init__(self, levels: int, bucket_bytes: int, dram: DramConfig):
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self.levels = levels
        self.bucket_bytes = bucket_bytes
        self.dram = dram
        buckets_per_row = max(dram.row_bytes // bucket_bytes, 1)
        # Largest k with 2^k - 1 buckets fitting in a row.
        k = 1
        while (1 << (k + 1)) - 1 <= buckets_per_row:
            k += 1
        self.subtree_levels = k

    def subtree_of(self, level: int, leaf: int) -> Tuple[int, int]:
        """(subtree_id, index_within_subtree) for the bucket at
        ``level`` on the path to ``leaf``."""
        if not 0 <= level <= self.levels:
            raise ValueError("level out of range")
        # The bucket's heap coordinates: depth = level, horizontal position
        # = leaf >> (levels - level).
        position = leaf >> (self.levels - level)
        chunk = level // self.subtree_levels  # which k-level layer
        depth_in_subtree = level - chunk * self.subtree_levels
        # Subtree root position at this layer:
        root_position = position >> depth_in_subtree
        # Unique id: concatenate layer and root position. Layer strides are
        # sized by the number of subtree roots above this layer.
        subtree_id = self._layer_base(chunk) + root_position
        index_in_subtree = ((1 << depth_in_subtree) - 1) + (
            position & ((1 << depth_in_subtree) - 1)
        )
        return subtree_id, index_in_subtree

    def _layer_base(self, chunk: int) -> int:
        base = 0
        for c in range(chunk):
            base += 1 << (c * self.subtree_levels)
        return base

    def locate(self, level: int, leaf: int) -> BucketLocation:
        """Physical DRAM location of a bucket."""
        subtree_id, index = self.subtree_of(level, leaf)
        dram = self.dram
        channel = subtree_id % dram.channels
        bank = (subtree_id // dram.channels) % dram.banks_per_channel
        row = (subtree_id // (dram.channels * dram.banks_per_channel)) % (
            dram.rows_per_bank
        )
        return BucketLocation(
            channel=channel,
            bank=bank,
            row=row,
            row_offset_bytes=index * self.bucket_bytes,
        )

    def path_locations(self, leaf: int) -> List[BucketLocation]:
        """Locations of every bucket on the path to ``leaf``."""
        return [self.locate(level, leaf) for level in range(self.levels + 1)]

    def path_row_groups(self, leaf: int) -> List[Tuple[int, int, int]]:
        """Rows touched by the path, as (bank, row, bucket_count) groups.

        Commodity controllers interleave addresses across channels at
        cache-line granularity, so one logical row group occupies the same
        (bank, row) coordinates on *every* channel and its bursts spread
        evenly over them. Grouping is by subtree, the unit the layout
        packs per row.
        """
        groups: List[Tuple[int, int, int]] = []
        counts: dict = {}
        order: List[Tuple[int, int]] = []
        dram = self.dram
        for level in range(self.levels + 1):
            subtree_id, _ = self.subtree_of(level, leaf)
            bank = subtree_id % dram.banks_per_channel
            row = (subtree_id // dram.banks_per_channel) % dram.rows_per_bank
            key = (bank, row)
            if key not in counts:
                counts[key] = 0
                order.append(key)
            counts[key] += 1
        for bank, row in order:
            groups.append((bank, row, counts[(bank, row)]))
        return groups
