"""DDR3 geometry and timing parameters (DRAMSim2's default Micron part)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramConfig:
    """One memory system: ``channels`` independent DDR3 channels.

    Timing fields are in DRAM clock cycles at ``dram_mhz`` (the I/O bus
    runs DDR, so a 64-byte transfer takes ``burst_cycles`` = 4 cycles at
    a 64-bit bus: 8 beats / 2 per cycle).
    """

    channels: int = 2
    banks_per_channel: int = 8
    rows_per_bank: int = 16384
    columns_per_row: int = 1024
    bus_bytes: int = 8  # 64-bit data bus
    dram_mhz: float = 667.0

    # Core DDR3-1333 timing (DRAM cycles).
    t_cas: int = 10  # column access strobe (CL)
    t_rcd: int = 10  # row to column delay
    t_rp: int = 10  # row precharge
    burst_beats: int = 8  # beats per 64-byte burst (BL8)

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("need at least one channel and one bank")

    @property
    def row_bytes(self) -> int:
        """Row-buffer size: columns x bus width (8 KiB by default)."""
        return self.columns_per_row * self.bus_bytes

    @property
    def burst_cycles(self) -> int:
        """DRAM cycles to move one 64-byte burst (DDR: 2 beats/cycle)."""
        return self.burst_beats // 2

    @property
    def burst_bytes(self) -> int:
        """Bytes per burst (64 with BL8 on a 64-bit bus)."""
        return self.burst_beats * self.bus_bytes

    @property
    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Aggregate peak bandwidth across channels (~10.67 GB/s each)."""
        per_channel = self.dram_mhz * 1e6 * 2 * self.bus_bytes
        return per_channel * self.channels

    def dram_to_proc_cycles(self, dram_cycles: float, proc_ghz: float) -> float:
        """Convert DRAM cycles to processor cycles."""
        return dram_cycles * (proc_ghz * 1000.0 / self.dram_mhz)
