"""Channel/bank timing model for whole-path ORAM accesses.

The model captures the two effects that dominate ORAM path latency on
commodity DRAM:

- *bus serialisation*: each channel moves at most one 64-byte burst per
  ``burst_cycles``; a path read of (L+1) x bucket_bytes is bandwidth-bound
  when buckets spread evenly over channels and suffers when they collide
  (the "channel conflicts" behind Table 2's sub-linear scaling);
- *row activations*: grouped by the subtree layout; consecutive bursts to
  an open row pay only CAS + burst, a closed row pays precharge +
  activate first. Activations on distinct banks overlap with transfers.

``path_access_cycles`` returns DRAM cycles for one full path read or
write; an ORAM access is one read plus one write-back of the same path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.config import DramConfig
from repro.dram.layout import SubtreeLayout
from repro.utils.rng import DeterministicRng


@dataclass
class PathAccessStats:
    """Decomposition of one path access."""

    dram_cycles: float
    bursts: int
    row_hits: int
    row_misses: int


class DramModel:
    """Stateful open-row DRAM model for one ORAM tree."""

    def __init__(self, levels: int, bucket_bytes: int, config: Optional[DramConfig] = None):
        self.config = config if config is not None else DramConfig()
        self.layout = SubtreeLayout(levels, bucket_bytes, self.config)
        self.levels = levels
        self.bucket_bytes = bucket_bytes
        # Open row per bank (mirrored across channels by interleaving).
        self._open_rows: Dict[int, int] = {}
        self.total_cycles = 0.0
        self.total_accesses = 0

    def _bursts_per_bucket(self) -> int:
        return -(-self.bucket_bytes // self.config.burst_bytes)

    def path_access_cycles(self, leaf: int) -> PathAccessStats:
        """DRAM cycles for one path read (or write) to ``leaf``.

        Bursts interleave over channels at cache-line granularity (the
        standard controller mapping), so transfer time is the per-channel
        share of the path's bursts. Row activations are per row group
        (subtree): the first miss is fully exposed, later misses overlap
        with transfers on other banks and expose only a fraction of tRP.
        """
        cfg = self.config
        bursts_per_bucket = self._bursts_per_bucket()
        row_hits = 0
        row_misses = 0
        stall = 0.0
        total_bursts = 0

        for bank, row, bucket_count in self.layout.path_row_groups(leaf):
            total_bursts += bucket_count * bursts_per_bucket
            if self._open_rows.get(bank) == row:
                row_hits += 1
            else:
                row_misses += 1
                if stall == 0.0:
                    stall = float(cfg.t_rp + cfg.t_rcd + cfg.t_cas)
                else:
                    stall += cfg.t_rp * 0.25
            self._open_rows[bank] = row

        per_channel_bursts = -(-total_bursts // cfg.channels)
        cycles = stall + per_channel_bursts * cfg.burst_cycles
        stats = PathAccessStats(
            dram_cycles=cycles,
            bursts=total_bursts,
            row_hits=row_hits,
            row_misses=row_misses,
        )
        self.total_cycles += cycles
        self.total_accesses += 1
        return stats

    def oram_access_cycles(self, leaf: int) -> float:
        """DRAM cycles for a full ORAM tree access (path read + write)."""
        read = self.path_access_cycles(leaf)
        write = self.path_access_cycles(leaf)
        return read.dram_cycles + write.dram_cycles

    def average_path_cycles(self, samples: int = 256, seed: int = 12345) -> float:
        """Monte-Carlo average DRAM cycles over uniform leaves.

        Used by the timing model to turn the per-leaf distribution into a
        single expected path latency (the paper reports averages over
        multiple accesses the same way, Table 2).
        """
        rng = DeterministicRng(seed)
        total = 0.0
        for _ in range(samples):
            total += self.path_access_cycles(rng.random_leaf(self.levels)).dram_cycles
        return total / samples

    def average_oram_latency_proc_cycles(
        self, proc_ghz: float, samples: int = 256, seed: int = 12345
    ) -> float:
        """Expected processor cycles for path read + write-back."""
        per_path = self.average_path_cycles(samples=samples, seed=seed)
        return self.config.dram_to_proc_cycles(2.0 * per_path, proc_ghz)

    def insecure_access_cycles(self, proc_ghz: float, row_hit_fraction: float = 0.2) -> float:
        """Processor cycles for one 64-byte access without ORAM.

        A conventional LLC-miss stream has poor row locality; with a 20%
        row-hit rate the expected latency matches the paper's 58-cycle
        average insecure DRAM access (§7.1.2).
        """
        cfg = self.config
        hit = cfg.t_cas + cfg.burst_cycles
        miss = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.burst_cycles
        dram_cycles = row_hit_fraction * hit + (1 - row_hit_fraction) * miss
        return cfg.dram_to_proc_cycles(dram_cycles, proc_ghz)
