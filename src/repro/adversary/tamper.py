"""Active adversary: tampering primitives against encrypted storage.

Implements the attack repertoire the paper's integrity analysis considers:
bit flips in block data, wholesale replay of stale bucket images
(freshness violation), and the §6.4 seed-rollback attack that coerces
one-time-pad reuse under the bucket-seed encryption scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.storage.encrypted import EncryptedTreeStorage


class Tamperer:
    """Wraps an :class:`EncryptedTreeStorage` with tampering operations."""

    def __init__(self, storage: EncryptedTreeStorage):
        self.storage = storage
        self._snapshots: Dict[int, List[bytes]] = {}

    # -- snapshots (for replay attacks) ---------------------------------------

    def snapshot(self, tag: int = 0) -> None:
        """Record the current image of every bucket under ``tag``."""
        self._snapshots[tag] = [
            self.storage.raw_image(i) for i in range(self.storage.config.num_buckets)
        ]

    def replay_bucket(self, index: int, tag: int = 0) -> None:
        """Restore one bucket to its snapshotted image (freshness attack)."""
        self.storage.tamper_image(index, self._snapshots[tag][index])

    def replay_all(self, tag: int = 0) -> None:
        """Restore the whole tree to a snapshot."""
        for index, image in enumerate(self._snapshots[tag]):
            self.storage.tamper_image(index, image)

    # -- bit flips ---------------------------------------------------------------

    def flip_bit(self, index: int, byte_offset: int, bit: int = 0) -> None:
        """Flip one ciphertext bit of a bucket image."""
        image = bytearray(self.storage.raw_image(index))
        image[byte_offset] ^= 1 << bit
        self.storage.tamper_image(index, bytes(image))

    def corrupt_body(self, index: int, byte_offset: int = 0) -> None:
        """Flip a bit inside the encrypted body (past the seed field)."""
        self.flip_bit(index, 8 + byte_offset)

    # -- §6.4 seed rollback ---------------------------------------------------------

    def rollback_seed(self, index: int, delta: int = 1) -> int:
        """Decrement the plaintext seed of a bucket image.

        Under the bucket-seed scheme, the next legitimate re-encryption of
        this bucket will reuse a pad the adversary has already observed
        (pad for seed ``old_seed``), enabling the XOR attack of §6.4.
        Returns the seed value written.
        """
        image = bytearray(self.storage.raw_image(index))
        seed = int.from_bytes(image[:8], "little")
        new_seed = max(seed - delta, 0)
        image[:8] = new_seed.to_bytes(8, "little")
        self.storage.tamper_image(index, bytes(image))
        return new_seed

    def read_seed(self, index: int) -> int:
        """Plaintext seed currently stored with a bucket."""
        return int.from_bytes(self.storage.raw_image(index)[:8], "little")
