"""Active adversary: tampering primitives against untrusted storage.

Implements the attack repertoire the paper's integrity analysis considers:
bit flips in block data, wholesale replay of stale bucket images
(freshness violation), and the §6.4 seed-rollback attack that coerces
one-time-pad reuse under the bucket-seed encryption scheme.

Two tamperers cover the two storage families:

- :class:`Tamperer` attacks ciphertext images of an
  :class:`~repro.storage.encrypted.EncryptedTreeStorage` (the realistic
  adversary, who sees only encrypted bytes);
- :class:`StorageTamperer` attacks *content records* of any plaintext
  storage model (object, array-geometry, columnar) through the shared
  ``bucket_records``/``replace_bucket_records`` interface — the
  storage-representation-agnostic adversary used to prove that PMMAC and
  Merkle detection behave identically under every block-store layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.storage.encrypted import EncryptedTreeStorage


class StorageTamperer:
    """Content-level tampering against any plaintext tree storage.

    Works uniformly on :class:`~repro.storage.tree.TreeStorage`,
    :class:`~repro.storage.array_tree.ArrayTreeStorage` and
    :class:`~repro.storage.columnar.ColumnarTreeStorage`: every attack is
    expressed over canonical ``(addr, leaf, data, mac)`` records, so one
    test exercises every representation of the tree.
    """

    def __init__(self, storage):
        self.storage = storage
        self._snapshots: Dict[int, List[tuple]] = {}

    # -- location -------------------------------------------------------------

    def find(self, addr: int) -> Optional[Tuple[int, int]]:
        """(bucket index, slot position) of a block in the tree, or None."""
        for index in range(self.storage.config.num_buckets):
            for position, record in enumerate(self.storage.bucket_records(index)):
                if record[0] == addr:
                    return index, position
        return None

    def _edit(self, addr: int, editor) -> bool:
        """Apply ``editor(record) -> record-or-None`` to a located block.

        Returns False when the block is not currently tree-resident (it
        may be in the stash); ``None`` from the editor deletes the block.
        """
        located = self.find(addr)
        if located is None:
            return False
        index, position = located
        records = list(self.storage.bucket_records(index))
        edited = editor(records[position])
        if edited is None:
            del records[position]
        else:
            records[position] = edited
        self.storage.replace_bucket_records(index, tuple(records))
        return True

    # -- attacks --------------------------------------------------------------

    def corrupt_data(self, addr: int, byte_offset: int = 0, bit: int = 0) -> bool:
        """Flip one bit of a block's stored payload."""

        def editor(record):
            a, leaf, data, mac = record
            body = bytearray(data)
            body[byte_offset] ^= 1 << bit
            return (a, leaf, bytes(body), mac)

        return self._edit(addr, editor)

    def corrupt_mac(self, addr: int) -> bool:
        """Flip one bit of a block's stored MAC tag (PMMAC blocks only)."""

        def editor(record):
            a, leaf, data, mac = record
            body = bytearray(mac)
            body[0] ^= 1
            return (a, leaf, data, bytes(body))

        return self._edit(addr, editor)

    def delete_block(self, addr: int) -> bool:
        """Erase a block from its bucket (a targeted deletion attack)."""
        return self._edit(addr, lambda record: None)

    # -- snapshots (replay / freshness attacks) -------------------------------

    def snapshot(self, tag: int = 0) -> None:
        """Record the content of every bucket under ``tag``."""
        self._snapshots[tag] = [
            self.storage.bucket_records(index)
            for index in range(self.storage.config.num_buckets)
        ]

    def replay_bucket(self, index: int, tag: int = 0) -> None:
        """Restore one bucket to its snapshotted content."""
        self.storage.replace_bucket_records(index, self._snapshots[tag][index])

    def replay_all(self, tag: int = 0) -> None:
        """Roll the whole tree back to a snapshot (freshness attack)."""
        for index, records in enumerate(self._snapshots[tag]):
            self.storage.replace_bucket_records(index, records)


class Tamperer:
    """Wraps an :class:`EncryptedTreeStorage` with tampering operations."""

    def __init__(self, storage: EncryptedTreeStorage):
        self.storage = storage
        self._snapshots: Dict[int, List[bytes]] = {}

    # -- snapshots (for replay attacks) ---------------------------------------

    def snapshot(self, tag: int = 0) -> None:
        """Record the current image of every bucket under ``tag``."""
        self._snapshots[tag] = [
            self.storage.raw_image(i) for i in range(self.storage.config.num_buckets)
        ]

    def replay_bucket(self, index: int, tag: int = 0) -> None:
        """Restore one bucket to its snapshotted image (freshness attack)."""
        self.storage.tamper_image(index, self._snapshots[tag][index])

    def replay_all(self, tag: int = 0) -> None:
        """Restore the whole tree to a snapshot."""
        for index, image in enumerate(self._snapshots[tag]):
            self.storage.tamper_image(index, image)

    # -- bit flips ---------------------------------------------------------------

    def flip_bit(self, index: int, byte_offset: int, bit: int = 0) -> None:
        """Flip one ciphertext bit of a bucket image."""
        image = bytearray(self.storage.raw_image(index))
        image[byte_offset] ^= 1 << bit
        self.storage.tamper_image(index, bytes(image))

    def corrupt_body(self, index: int, byte_offset: int = 0) -> None:
        """Flip a bit inside the encrypted body (past the seed field)."""
        self.flip_bit(index, 8 + byte_offset)

    # -- §6.4 seed rollback ---------------------------------------------------------

    def rollback_seed(self, index: int, delta: int = 1) -> int:
        """Decrement the plaintext seed of a bucket image.

        Under the bucket-seed scheme, the next legitimate re-encryption of
        this bucket will reuse a pad the adversary has already observed
        (pad for seed ``old_seed``), enabling the XOR attack of §6.4.
        Returns the seed value written.
        """
        image = bytearray(self.storage.raw_image(index))
        seed = int.from_bytes(image[:8], "little")
        new_seed = max(seed - delta, 0)
        image[:8] = new_seed.to_bytes(8, "little")
        self.storage.tamper_image(index, bytes(image))
        return new_seed

    def read_seed(self, index: int) -> int:
        """Plaintext seed currently stored with a bucket."""
        return int.from_bytes(self.storage.raw_image(index)[:8], "little")
