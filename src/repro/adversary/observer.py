"""Passive adversary: records the externally visible access sequence.

The security definition (§2) says the adversary sees the randomized data
request sequence — for Path ORAM, a series of path reads/writes to one or
more physical trees. :class:`TraceObserver` captures exactly that view:
``(tree_id, kind, leaf)`` events, without any plaintext. The §4.1.2
PLB-insecurity reproduction compares these traces across programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class AccessEvent:
    """One externally visible path operation."""

    tree_id: int
    kind: str  # "read" or "write"
    leaf: int


class TraceObserver:
    """Collects the DRAM-visible trace for one or more ORAM trees.

    A single observer may be shared by several trees (the Recursive ORAM
    baseline has H physical trees); each registers with a distinct
    ``tree_id`` via :meth:`for_tree`.
    """

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []

    def for_tree(self, tree_id: int) -> "_TreeView":
        """Adapter bound to one tree id (what storages call into)."""
        return _TreeView(self, tree_id)

    def record(self, tree_id: int, kind: str, leaf: int) -> None:
        """Append one event."""
        self.events.append(AccessEvent(tree_id, kind, leaf))

    # -- analysis helpers ------------------------------------------------------

    def tree_sequence(self) -> List[int]:
        """Sequence of tree ids touched by read events (the §4.1.2 view)."""
        return [e.tree_id for e in self.events if e.kind == "read"]

    def leaf_sequence(self, tree_id: int = 0) -> List[int]:
        """Leaves of read events against one tree."""
        return [e.leaf for e in self.events if e.kind == "read" and e.tree_id == tree_id]

    def leaf_histogram(self, tree_id: int, num_leaves: int) -> List[int]:
        """Per-leaf read counts (for uniformity chi-square tests)."""
        counts = [0] * num_leaves
        for leaf in self.leaf_sequence(tree_id):
            counts[leaf] += 1
        return counts

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class _TreeView:
    """Observer facade with the storage-facing callback interface."""

    def __init__(self, parent: TraceObserver, tree_id: int):
        self._parent = parent
        self._tree_id = tree_id

    def on_path_read(self, leaf: int, indices: Sequence[int]) -> None:
        self._parent.record(self._tree_id, "read", leaf)

    def on_path_write(self, leaf: int, indices: Sequence[int]) -> None:
        self._parent.record(self._tree_id, "write", leaf)


def distinguish_by_tree_pattern(
    trace_a: Sequence[int], trace_b: Sequence[int]
) -> bool:
    """Return True if two tree-id traces are trivially distinguishable.

    This is the distinguisher from §4.1.2: compare the *pattern* of which
    tree each access touches (after truncating to equal length). A PLB
    without a unified tree makes program A and program B produce different
    patterns; the unified tree makes both all-zeros.
    """
    n = min(len(trace_a), len(trace_b))
    return list(trace_a[:n]) != list(trace_b[:n])
