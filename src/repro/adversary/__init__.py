"""Adversary models from the threat model (§2).

- :class:`~repro.adversary.observer.TraceObserver` — the passive data-centre
  adversary: records the DRAM-visible access sequence (which tree, which
  path) for distinguishability analysis.
- :class:`~repro.adversary.tamper.Tamperer` — the active adversary: flips
  ciphertext bits, replays stale bucket images, and rolls back encryption
  seeds against an :class:`~repro.storage.encrypted.EncryptedTreeStorage`.
- :class:`~repro.adversary.tamper.StorageTamperer` — the same attack
  repertoire expressed over content records, uniform across the object,
  array and columnar plaintext storage models.
"""

from repro.adversary.observer import AccessEvent, TraceObserver
from repro.adversary.tamper import StorageTamperer, Tamperer

__all__ = ["AccessEvent", "TraceObserver", "Tamperer", "StorageTamperer"]
