"""Integrity verification schemes.

- :class:`~repro.integrity.merkle.MerklePathVerifier` — the prior-art
  baseline ([25]): a hash tree over ORAM buckets, verifying and updating
  every bucket on the accessed path. Correct but hash-bandwidth hungry
  and inherently sequential (§6.3).
- PMMAC itself lives in the Frontend
  (:class:`~repro.frontend.unified.PlbFrontend` with ``pmmac=True``)
  because it is a Frontend mechanism; this package hosts the baseline it
  is compared against and shared helpers.
"""

from repro.integrity.adapter import MerkleVerifiedStorage
from repro.integrity.merkle import MerklePathVerifier, serialise_bucket

__all__ = ["MerklePathVerifier", "MerkleVerifiedStorage", "serialise_bucket"]
