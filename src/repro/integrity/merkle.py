"""Merkle-tree integrity baseline over the ORAM tree ([25]).

Each tree node stores a hash over its bucket contents and its two
children's hashes; the root hash lives on-chip. Reading a path requires
recomputing every node hash bottom-up against stored sibling hashes and
comparing the root; writing requires recomputing the same chain — i.e.
the hash unit processes Z*(L+1) blocks per ORAM access versus PMMAC's
one (§6.3). The per-node hash is also *sequential* along the path, the
bottleneck the paper calls out.

The verifier wraps any tree storage exposing ``read_path``/``write_path``
and bucket objects; hashing goes through a :class:`~repro.crypto.mac.Mac`
whose counters feed the §6.3 bench.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.mac import Mac
from repro.errors import IntegrityViolationError
from repro.storage.bucket import Bucket


def serialise_bucket(bucket: Bucket, block_bytes: int, capacity: int) -> bytes:
    """Canonical byte image of a bucket for hashing (dummies included)."""
    out = bytearray()
    for slot in range(capacity):
        if slot < len(bucket.blocks):
            block = bucket.blocks[slot]
            out.append(1)
            out += block.addr.to_bytes(8, "little", signed=True)
            out += block.leaf.to_bytes(8, "little")
            out += block.data
            out += block.mac or b""
        else:
            out.append(0)
            out += bytes(16 + block_bytes)
    return bytes(out)


class MerklePathVerifier:
    """Maintains and checks the bucket hash tree for one ORAM tree."""

    def __init__(self, levels: int, block_bytes: int, bucket_capacity: int, mac: Mac):
        self.levels = levels
        self.block_bytes = block_bytes
        self.bucket_capacity = bucket_capacity
        self.mac = mac
        self._hashes: Dict[int, bytes] = {}
        self._empty_chain = self._build_empty_chain()
        #: On-chip root hash (trusted).
        self.root = self._node_default(0)

    # -- defaults for never-written subtrees ---------------------------------------

    def _build_empty_chain(self) -> List[bytes]:
        """Hash of an all-empty subtree rooted at each depth, leaf-up."""
        empty_bucket = serialise_bucket(
            Bucket(self.bucket_capacity), self.block_bytes, self.bucket_capacity
        )
        chain: List[bytes] = []
        child = b""
        for depth in range(self.levels, -1, -1):
            if depth == self.levels:
                node = self.mac.tag(empty_bucket)
            else:
                node = self.mac.tag(empty_bucket + child + child)
            chain.append(node)
            child = node
        chain.reverse()  # chain[depth] = hash of empty subtree at depth
        return chain

    def _node_default(self, depth: int) -> bytes:
        return self._empty_chain[depth]

    def _node_hash(self, index: int, depth: int) -> bytes:
        return self._hashes.get(index, self._node_default(depth))

    # -- path hashing --------------------------------------------------------------

    @staticmethod
    def _children(index: int) -> Tuple[int, int]:
        return 2 * index + 1, 2 * index + 2

    def _compute_path_hashes(
        self, leaf: int, buckets: List[Bucket], indices: List[int]
    ) -> List[bytes]:
        """Bottom-up hashes of the path nodes using stored sibling hashes."""
        hashes: List[Optional[bytes]] = [None] * (self.levels + 1)
        for depth in range(self.levels, -1, -1):
            image = serialise_bucket(
                buckets[depth], self.block_bytes, self.bucket_capacity
            )
            if depth == self.levels:
                hashes[depth] = self.mac.tag(image)
            else:
                left, right = self._children(indices[depth])
                on_path = indices[depth + 1]
                child_hash = hashes[depth + 1]
                if on_path == left:
                    left_h, right_h = child_hash, self._node_hash(right, depth + 1)
                else:
                    left_h, right_h = self._node_hash(left, depth + 1), child_hash
                hashes[depth] = self.mac.tag(image + left_h + right_h)
        return hashes  # type: ignore[return-value]

    # -- public API -----------------------------------------------------------------

    def verify_path(self, leaf: int, buckets: List[Bucket], indices: List[int]) -> None:
        """Raise IntegrityViolationError unless the path matches the root."""
        computed_root = self._compute_path_hashes(leaf, buckets, indices)[0]
        if computed_root != self.root:
            raise IntegrityViolationError(
                f"Merkle root mismatch on path to leaf {leaf}"
            )

    def update_path(self, leaf: int, buckets: List[Bucket], indices: List[int]) -> None:
        """Recompute and store the path's hashes after an eviction."""
        hashes = self._compute_path_hashes(leaf, buckets, indices)
        for depth, index in enumerate(indices):
            self._hashes[index] = hashes[depth]
        self.root = hashes[0]

    @property
    def hashes_stored(self) -> int:
        """Number of explicitly materialised node hashes."""
        return len(self._hashes)
