"""Merkle-verified storage adapter.

Composes a :class:`~repro.integrity.merkle.MerklePathVerifier` with any
tree storage so that *every* path read is verified against the on-chip
root and every write-back refreshes the path's hashes — the [25]-style
system PMMAC is compared against in §6.3. Drop it under any Backend:

    storage = MerkleVerifiedStorage(TreeStorage(cfg), mac)
    backend = PathOramBackend(cfg, storage, rng)

The adapter hashes Z·(L+1) blocks per ORAM access (verify + update),
which is exactly the hash-bandwidth cost the paper's measurement
instrument (``mac.bytes_hashed``) records.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crypto.mac import Mac
from repro.integrity.merkle import MerklePathVerifier
from repro.storage.bucket import Bucket


class MerkleVerifiedStorage:
    """Storage proxy enforcing Merkle integrity on every path operation."""

    def __init__(self, inner, mac: Mac):
        self.inner = inner
        self.config = inner.config
        self.mac = mac
        self.verifier = MerklePathVerifier(
            self.config.levels,
            self.config.block_bytes,
            self.config.blocks_per_bucket,
            mac,
        )
        self._pending: Tuple[int, List[Bucket], List[int]] = (-1, [], [])

    # -- storage interface -----------------------------------------------------

    def path_indices(self, leaf: int) -> List[int]:
        """Heap indices along the path (delegated)."""
        return self.inner.path_indices(leaf)

    def read_path(self, leaf: int) -> List[Tuple[int, Bucket]]:
        """Read and *verify* the path before handing it to the Backend."""
        path = self.inner.read_path(leaf)
        buckets = [bucket for _, bucket in path]
        indices = self.inner.path_indices(leaf)
        self.verifier.verify_path(leaf, buckets, indices)
        self._pending = (leaf, buckets, indices)
        return path

    def write_path(self, leaf: int) -> None:
        """Write the path back and refresh its hash chain to the root."""
        self.inner.write_path(leaf)
        pending_leaf, buckets, indices = self._pending
        if pending_leaf != leaf:
            raise RuntimeError("write_path leaf does not match last read_path")
        self.verifier.update_path(leaf, buckets, indices)

    def bucket_at(self, index: int) -> Bucket:
        """Direct bucket access (delegated; used by tests only)."""
        return self.inner.bucket_at(index)

    # -- accounting (delegated) ---------------------------------------------------

    @property
    def bytes_read(self) -> int:
        """Bytes read on the memory bus."""
        return self.inner.bytes_read

    @property
    def bytes_written(self) -> int:
        """Bytes written on the memory bus."""
        return self.inner.bytes_written

    @property
    def bytes_moved(self) -> int:
        """Read + written bytes."""
        return self.inner.bytes_moved

    def reset_counters(self) -> None:
        """Zero bandwidth counters (delegated)."""
        self.inner.reset_counters()

    def occupancy(self) -> int:
        """Real blocks resident in the tree (delegated)."""
        return self.inner.occupancy()
