"""Plaintext-object ORAM tree storage (fast functional model).

The tree is the standard heap layout: node at level ``d`` on the path to
leaf ``l`` has index ``2^d - 1 + (l >> (L - d))``. Reads and writes are
whole-path operations, matching the Path ORAM backend's access pattern, and
every operation is reported to an optional
:class:`~repro.adversary.observer.TraceObserver` exactly as an adversary
snooping the memory bus would see it (bucket indices only — contents are
encrypted in the real system).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import OramConfig
from repro.storage.bucket import Bucket


def path_indices(leaf: int, levels: int) -> List[int]:
    """Heap indices of the buckets on the path from root to ``leaf``."""
    return [(1 << d) - 1 + (leaf >> (levels - d)) for d in range(levels + 1)]


#: Per-storage cap on memoised path entries. Small trees (the replay
#: hot path) fit entirely; on paper-scale trees, where uniform leaf
#: remapping makes hits rare anyway, the caches cycle instead of
#: growing with every distinct leaf ever touched.
PATH_CACHE_LIMIT = 1 << 15


class TreeStorage:
    """Untrusted external memory holding the ORAM tree as live objects."""

    def __init__(self, config: OramConfig, observer=None):
        self.config = config
        self.observer = observer
        self._buckets: List[Optional[Bucket]] = [None] * config.num_buckets
        # Replay touches the same leaves repeatedly; memoise each path's
        # heap indices (immutable tuples) and its materialised bucket list.
        # Both are bounded by the number of leaves ever touched, and the
        # bucket lists stay valid because buckets are created exactly once.
        self._path_cache: Dict[int, Tuple[int, ...]] = {}
        self._bucket_path_cache: Dict[int, List[Bucket]] = {}
        # Bandwidth accounting (logical bytes at the padded bucket size).
        self.buckets_read = 0
        self.buckets_written = 0

    # -- geometry -----------------------------------------------------------

    def bucket_at(self, index: int) -> Bucket:
        """Bucket by heap index, materialising empties lazily."""
        bucket = self._buckets[index]
        if bucket is None:
            bucket = Bucket(self.config.blocks_per_bucket)
            self._buckets[index] = bucket
        return bucket

    def _indices(self, leaf: int) -> Tuple[int, ...]:
        """Memoised heap indices along the path to ``leaf``."""
        cached = self._path_cache.get(leaf)
        if cached is None:
            if not 0 <= leaf < self.config.num_leaves:
                raise ValueError(f"leaf {leaf} out of range")
            levels = self.config.levels
            cached = tuple(
                (1 << d) - 1 + (leaf >> (levels - d)) for d in range(levels + 1)
            )
            if len(self._path_cache) >= PATH_CACHE_LIMIT:
                self._path_cache.clear()
            self._path_cache[leaf] = cached
        return cached

    def path_indices(self, leaf: int) -> List[int]:
        """Heap indices along the path to ``leaf``."""
        return list(self._indices(leaf))

    # -- whole-path operations ------------------------------------------------

    def read_path_buckets(self, leaf: int) -> List[Bucket]:
        """Read all buckets root->leaf; index in the list is the level.

        Hot-path variant of :meth:`read_path` that skips the (level, bucket)
        tuple packaging; the Backend detects and prefers it. The returned
        list is cached and shared — callers may mutate the buckets but must
        not mutate the list itself.
        """
        path = self._bucket_path_cache.get(leaf)
        if path is None:
            indices = self._indices(leaf)
            buckets = self._buckets
            capacity = self.config.blocks_per_bucket
            path = []
            for idx in indices:
                bucket = buckets[idx]
                if bucket is None:
                    bucket = Bucket(capacity)
                    buckets[idx] = bucket
                path.append(bucket)
            if len(self._bucket_path_cache) >= PATH_CACHE_LIMIT:
                self._bucket_path_cache.clear()
            self._bucket_path_cache[leaf] = path
        self.buckets_read += len(path)
        if self.observer is not None:
            self.observer.on_path_read(leaf, self._indices(leaf))
        return path

    def read_path(self, leaf: int) -> List[Tuple[int, Bucket]]:
        """Read all buckets root->leaf; returns (level, bucket) pairs."""
        return list(enumerate(self.read_path_buckets(leaf)))

    def write_path(self, leaf: int) -> None:
        """Account for writing the path back (contents already mutated)."""
        self.buckets_written += self.config.levels + 1
        if self.observer is not None:
            self.observer.on_path_write(leaf, self._indices(leaf))

    # -- accounting -----------------------------------------------------------

    @property
    def bytes_read(self) -> int:
        """Total bytes read at the padded bucket granularity."""
        return self.buckets_read * self.config.bucket_bytes

    @property
    def bytes_written(self) -> int:
        """Total bytes written at the padded bucket granularity."""
        return self.buckets_written * self.config.bucket_bytes

    @property
    def bytes_moved(self) -> int:
        """Read + written bytes."""
        return self.bytes_read + self.bytes_written

    def reset_counters(self) -> None:
        """Zero the bandwidth counters (used between experiment phases)."""
        self.buckets_read = 0
        self.buckets_written = 0

    def occupancy(self) -> int:
        """Total real blocks currently stored in the tree."""
        return sum(len(b) for b in self._buckets if b is not None)

    # -- content introspection ----------------------------------------------

    def bucket_records(
        self, index: int
    ) -> Tuple[Tuple[int, int, bytes, Optional[bytes]], ...]:
        """(addr, leaf, data, mac) records of one bucket, in slot order.

        Content-level view shared with the columnar storage so snapshots
        and digests compare across representations (never-materialised
        and empty buckets are both the empty tuple).
        """
        bucket = self._buckets[index]
        if bucket is None or not bucket.blocks:
            return ()
        return tuple((b.addr, b.leaf, b.data, b.mac) for b in bucket.blocks)

    def replace_bucket_records(self, index: int, records) -> None:
        """Overwrite one bucket's contents from (addr, leaf, data, mac) rows.

        Tamper/restore hook used by the adversary layer; the columnar
        storage exposes the same method over its slot arena.
        """
        from repro.storage.block import Block

        bucket = self.bucket_at(index)
        bucket.blocks = [
            Block(addr, leaf, bytes(data), mac)
            for addr, leaf, data, mac in records
        ]
