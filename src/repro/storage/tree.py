"""Plaintext-object ORAM tree storage (fast functional model).

The tree is the standard heap layout: node at level ``d`` on the path to
leaf ``l`` has index ``2^d - 1 + (l >> (L - d))``. Reads and writes are
whole-path operations, matching the Path ORAM backend's access pattern, and
every operation is reported to an optional
:class:`~repro.adversary.observer.TraceObserver` exactly as an adversary
snooping the memory bus would see it (bucket indices only — contents are
encrypted in the real system).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import OramConfig
from repro.storage.bucket import Bucket


def path_indices(leaf: int, levels: int) -> List[int]:
    """Heap indices of the buckets on the path from root to ``leaf``."""
    return [(1 << d) - 1 + (leaf >> (levels - d)) for d in range(levels + 1)]


class TreeStorage:
    """Untrusted external memory holding the ORAM tree as live objects."""

    def __init__(self, config: OramConfig, observer=None):
        self.config = config
        self.observer = observer
        self._buckets: List[Optional[Bucket]] = [None] * config.num_buckets
        # Bandwidth accounting (logical bytes at the padded bucket size).
        self.buckets_read = 0
        self.buckets_written = 0

    # -- geometry -----------------------------------------------------------

    def bucket_at(self, index: int) -> Bucket:
        """Bucket by heap index, materialising empties lazily."""
        bucket = self._buckets[index]
        if bucket is None:
            bucket = Bucket(self.config.blocks_per_bucket)
            self._buckets[index] = bucket
        return bucket

    def path_indices(self, leaf: int) -> List[int]:
        """Heap indices along the path to ``leaf``."""
        if not 0 <= leaf < self.config.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        return path_indices(leaf, self.config.levels)

    # -- whole-path operations ------------------------------------------------

    def read_path(self, leaf: int) -> List[Tuple[int, Bucket]]:
        """Read all buckets root->leaf; returns (level, bucket) pairs."""
        indices = self.path_indices(leaf)
        self.buckets_read += len(indices)
        if self.observer is not None:
            self.observer.on_path_read(leaf, indices)
        return [(level, self.bucket_at(idx)) for level, idx in enumerate(indices)]

    def write_path(self, leaf: int) -> None:
        """Account for writing the path back (contents already mutated)."""
        indices = self.path_indices(leaf)
        self.buckets_written += len(indices)
        if self.observer is not None:
            self.observer.on_path_write(leaf, indices)

    # -- accounting -----------------------------------------------------------

    @property
    def bytes_read(self) -> int:
        """Total bytes read at the padded bucket granularity."""
        return self.buckets_read * self.config.bucket_bytes

    @property
    def bytes_written(self) -> int:
        """Total bytes written at the padded bucket granularity."""
        return self.buckets_written * self.config.bucket_bytes

    @property
    def bytes_moved(self) -> int:
        """Read + written bytes."""
        return self.bytes_read + self.bytes_written

    def reset_counters(self) -> None:
        """Zero the bandwidth counters (used between experiment phases)."""
        self.buckets_read = 0
        self.buckets_written = 0

    def occupancy(self) -> int:
        """Total real blocks currently stored in the tree."""
        return sum(len(b) for b in self._buckets if b is not None)
