"""Bucket: a fixed number of block slots, the node type of the ORAM tree."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.storage.block import Block


class Bucket:
    """Z-slot bucket. Empty slots are implicit dummies.

    The plaintext object model keeps only real blocks; the number of
    dummies is ``capacity - len(blocks)``. Serialisation (for the encrypted
    storage model) materialises dummies explicitly so all buckets are the
    same size on the wire, as required for indistinguishability.
    """

    __slots__ = ("capacity", "blocks", "seed")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("bucket capacity must be positive")
        self.capacity = capacity
        self.blocks: List[Block] = []
        #: Encryption seed (bucket-seed scheme); plaintext-visible metadata.
        self.seed = 0

    def is_full(self) -> bool:
        """True when no slot is free."""
        return len(self.blocks) >= self.capacity

    def add(self, block: Block) -> None:
        """Place a block into a free slot."""
        if self.is_full():
            raise OverflowError("bucket is full")
        self.blocks.append(block)

    def drain(self) -> List[Block]:
        """Remove and return all real blocks (path read into stash)."""
        out = self.blocks
        self.blocks = []
        return out

    def find(self, addr: int) -> Optional[Block]:
        """Return the block with ``addr`` if present."""
        for block in self.blocks:
            if block.addr == addr:
                return block
        return None

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bucket({len(self.blocks)}/{self.capacity})"
