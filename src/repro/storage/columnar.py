"""Columnar ORAM tree storage: struct-of-arrays block store.

Where :class:`~repro.storage.tree.TreeStorage` keeps every block as a live
:class:`~repro.storage.block.Block` object inside per-bucket lists,
:class:`ColumnarTreeStorage` stores the tree as *columns over a slot
arena*:

- ``addr_col`` / ``leaf_col`` — per-slot address and leaf-label columns;
- a contiguous, chunked **byte arena** holding every payload at
  ``slot * block_bytes`` (no per-block ``bytes`` objects at rest);
- ``mac_col`` — optional PMMAC tag per slot;
- the tree itself is a list of *bucket slot lists* (ints), so the fused
  drain/eviction loop of the columnar backend moves integers, never
  Python objects.

Block objects are materialised only at the Backend boundary (the block
of interest, ``READRMV`` hand-off, stash snapshots); the other ~Z·(L+1)
blocks touched per access stay columnar. Geometry (the leaf -> heap-index
table) is precomputed in one vectorised numpy sweep exactly like
:class:`~repro.storage.array_tree.ArrayTreeStorage`.

The pairing backend is
:class:`~repro.backend.columnar.ColumnarPathOramBackend` (selected
automatically by :func:`~repro.backend.path_oram.make_backend`). For
storage adapters that require the classic bucket-object interface — e.g.
:class:`~repro.integrity.adapter.MerkleVerifiedStorage`, or a plain
:class:`~repro.backend.path_oram.PathOramBackend` — a compatibility
``read_path``/``write_path`` pair materialises the path as
:class:`~repro.storage.bucket.Bucket` objects on read and re-absorbs
their contents into the columns on write-back (correct but slower; one
outstanding path at a time).

Selection: ``storage="columnar"`` on any preset/spec, or
``REPRO_STORAGE=columnar``. Bit-identity with the object path is pinned
by the golden digests and the differential harness in
``tests/test_columnar_differential.py``.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Tuple

from repro.config import OramConfig
from repro.storage.block import Block
from repro.storage.bucket import Bucket

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Slots per arena chunk (power of two: slot -> chunk is a shift/mask).
CHUNK_SLOTS = 512
_CHUNK_SHIFT = CHUNK_SLOTS.bit_length() - 1
_CHUNK_MASK = CHUNK_SLOTS - 1

#: Leaf-count bound for eager geometry precomputation (mirrors
#: :data:`~repro.storage.array_tree.EAGER_GEOMETRY_LEAVES`).
EAGER_GEOMETRY_LEAVES = 1 << 20


class ColumnarTreeStorage:
    """Untrusted external memory as columns over a block-slot arena."""

    #: Marker consumed by :func:`~repro.backend.path_oram.make_backend`.
    columnar = True

    def __init__(self, config: OramConfig, observer=None):
        self.config = config
        self.observer = observer
        self.block_bytes = config.block_bytes
        self._zero = bytes(config.block_bytes)
        self._path_len = config.levels + 1
        # -- slot arena (grown in chunks; a freed slot is recycled LIFO) --
        # addr/leaf are unboxed int64 columns (``array('q')``): random
        # reads touch contiguous raw memory instead of chasing pointers
        # to heap PyLongs, which is where the columnar layout beats the
        # object tree at paper-scale working sets. numpy sees them
        # zero-copy via ``frombuffer`` for the vectorised kernels.
        self.addr_col = array("q")
        self.leaf_col = array("q")
        self.mac_col: List[Optional[bytes]] = []
        self._chunks: List[memoryview] = []
        self._free: List[int] = []
        # -- the tree: per-bucket slot lists, materialised lazily --------
        self.buckets: List[Optional[List[int]]] = [None] * config.num_buckets
        # -- geometry: dense per-leaf heap-index rows and path lists -----
        num_leaves = config.num_leaves
        self._index_rows: List[Optional[Tuple[int, ...]]] = [None] * num_leaves
        self._bucket_rows: List[Optional[List[List[int]]]] = [None] * num_leaves
        self._geometry = None
        if _np is not None and num_leaves <= EAGER_GEOMETRY_LEAVES:
            levels = config.levels
            offsets = (1 << _np.arange(levels + 1, dtype=_np.int64)) - 1
            shifts = _np.arange(levels, -1, -1, dtype=_np.int64)
            leaves = _np.arange(num_leaves, dtype=_np.int64)[:, None]
            self._geometry = offsets[None, :] + (leaves >> shifts[None, :])
        # -- bandwidth accounting (padded bucket granularity) ------------
        self.buckets_read = 0
        self.buckets_written = 0
        # -- compatibility path state (bucket-object adapters) -----------
        self._pending: Optional[Tuple[int, List[Bucket]]] = None

    # -- slot arena ---------------------------------------------------------

    def _grow(self) -> None:
        """Add one chunk of zeroed slots to the arena."""
        base = len(self.addr_col)
        chunk = bytearray(CHUNK_SLOTS * self.block_bytes)
        self._chunks.append(memoryview(chunk))
        self.addr_col.extend([-1] * CHUNK_SLOTS)
        self.leaf_col.extend([0] * CHUNK_SLOTS)
        self.mac_col.extend([None] * CHUNK_SLOTS)
        self._free.extend(range(base + CHUNK_SLOTS - 1, base - 1, -1))

    def alloc(
        self,
        addr: int,
        leaf: int,
        data: Optional[bytes] = None,
        mac: Optional[bytes] = None,
    ) -> int:
        """Claim a slot for a block; ``data=None`` means an all-zero payload."""
        free = self._free
        if not free:
            self._grow()
        slot = free.pop()
        self.addr_col[slot] = addr
        self.leaf_col[slot] = leaf
        self.mac_col[slot] = mac
        view = self._chunks[slot >> _CHUNK_SHIFT]
        offset = (slot & _CHUNK_MASK) * self.block_bytes
        view[offset : offset + self.block_bytes] = (
            data if data is not None else self._zero
        )
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list (its payload stays until reuse)."""
        self._free.append(slot)

    def payload(self, slot: int) -> bytes:
        """Independent copy of a slot's payload bytes."""
        offset = (slot & _CHUNK_MASK) * self.block_bytes
        return bytes(
            self._chunks[slot >> _CHUNK_SHIFT][offset : offset + self.block_bytes]
        )

    def set_payload(self, slot: int, data: bytes) -> None:
        """Overwrite a slot's payload (must be exactly one block)."""
        if len(data) != self.block_bytes:
            raise ValueError(
                f"payload must be {self.block_bytes} bytes, got {len(data)}"
            )
        offset = (slot & _CHUNK_MASK) * self.block_bytes
        self._chunks[slot >> _CHUNK_SHIFT][offset : offset + self.block_bytes] = data

    def block_at_slot(self, slot: int) -> Block:
        """Materialise one slot as an independent :class:`Block`."""
        return Block(
            self.addr_col[slot],
            self.leaf_col[slot],
            self.payload(slot),
            self.mac_col[slot],
        )

    def interchange_columns(self):
        """The ``(addr_col, leaf_col)`` pair for zero-copy interchange.

        These are the live ``array('q')`` columns themselves — exporting
        a buffer over them is the compiled replay core's access path (no
        serialisation, no copies). Two rules bound the hand-off: the
        columns grow strictly in place (``array.extend`` during
        :meth:`alloc`), so consumers must bind the *objects*, never raw
        pointers, across calls; and no buffer export may be live across
        an :meth:`alloc` (CPython refuses to resize an array with
        exported buffers — the C kernel acquires and releases within
        each call).
        """
        return self.addr_col, self.leaf_col

    # -- geometry -----------------------------------------------------------

    def _indices(self, leaf: int) -> Tuple[int, ...]:
        """Heap indices along the path to ``leaf`` (dense-cached)."""
        if not 0 <= leaf < self.config.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        row = self._index_rows[leaf]
        if row is None:
            if self._geometry is not None:
                row = tuple(self._geometry[leaf].tolist())
            else:
                levels = self.config.levels
                row = tuple(
                    (1 << d) - 1 + (leaf >> (levels - d))
                    for d in range(levels + 1)
                )
            self._index_rows[leaf] = row
        return row

    def path_indices(self, leaf: int) -> List[int]:
        """Heap indices along the path to ``leaf``."""
        return list(self._indices(leaf))

    # -- native whole-path operations (columnar backend) --------------------

    def read_path_slots(self, leaf: int) -> List[List[int]]:
        """Live bucket slot lists for the path to ``leaf``, root->leaf.

        The returned lists are the tree's own storage: the columnar
        backend drains them in place (clearing, never replacing, so this
        per-leaf materialisation stays cacheable — the same dense-cache
        trick as ``ArrayTreeStorage.read_path_buckets``) and evicts by
        appending slot ids. Accounting and observer callbacks match
        ``TreeStorage.read_path_buckets`` exactly.
        """
        if not 0 <= leaf < self.config.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        path = self._bucket_rows[leaf]
        if path is None:
            indices = self._indices(leaf)
            buckets = self.buckets
            path = []
            for idx in indices:
                lst = buckets[idx]
                if lst is None:
                    lst = buckets[idx] = []
                path.append(lst)
            self._bucket_rows[leaf] = path
        self.buckets_read += self._path_len
        if self.observer is not None:
            self.observer.on_path_read(leaf, self._indices(leaf))
        return path

    def write_path_slots(self, leaf: int) -> None:
        """Account for writing the path back (contents already mutated)."""
        self.buckets_written += self._path_len
        if self.observer is not None:
            self.observer.on_path_write(leaf, self._indices(leaf))

    # -- compatibility whole-path operations (bucket-object adapters) -------

    def read_path(self, leaf: int) -> List[Tuple[int, Bucket]]:
        """Materialise the path as Bucket objects; (level, bucket) pairs.

        Compatibility interface for consumers that require live bucket
        objects (Merkle adapter, plain ``PathOramBackend``). Mutations to
        the returned buckets are re-absorbed into the columns by the next
        ``write_path(leaf)``; only one path may be outstanding at a time
        (a second ``read_path`` discards unsynced mutations, mirroring
        the Merkle adapter's single-path contract).

        Error contract — identical to
        :class:`~repro.storage.encrypted.EncryptedTreeStorage`, the other
        materialise-on-read storage: if the backend fails *between* a
        ``read_path`` and its ``write_path`` (e.g. a caught
        ``IntegrityViolationError``), the store still holds the
        un-synced path while the backend's restore moved materialised
        copies into its stash, so continuing to drive that backend raises
        duplicate-block errors. Treat such failures as terminal for the
        pairing; the native columnar backend (which restores in the
        arena itself) recovers fully and is the supported path.
        """
        rows = self._indices(leaf)
        capacity = self.config.blocks_per_bucket
        out: List[Bucket] = []
        for idx in rows:
            bucket = Bucket(capacity)
            lst = self.buckets[idx]
            if lst:
                bucket.blocks = [self.block_at_slot(slot) for slot in lst]
            out.append(bucket)
        self._pending = (leaf, out)
        self.buckets_read += self._path_len
        if self.observer is not None:
            self.observer.on_path_read(leaf, rows)
        return list(enumerate(out))

    def write_path(self, leaf: int) -> None:
        """Absorb the pending materialised path back into the columns."""
        if self._pending is None or self._pending[0] != leaf:
            raise RuntimeError(
                "write_path leaf does not match the last read_path "
                "(columnar compatibility mode keeps one outstanding path)"
            )
        _leaf, pending = self._pending
        self._pending = None
        buckets = self.buckets
        for idx, bucket in zip(self._indices(leaf), pending):
            lst = buckets[idx]
            if lst is None:
                lst = buckets[idx] = []
            for slot in lst:
                self._free.append(slot)
            # In-place replacement: bucket list identity is part of the
            # dense per-leaf path cache's contract.
            lst[:] = [
                self.alloc(b.addr, b.leaf, b.data, b.mac) for b in bucket.blocks
            ]
        self.buckets_written += self._path_len
        if self.observer is not None:
            self.observer.on_path_write(leaf, self._indices(leaf))

    # -- introspection ------------------------------------------------------

    def bucket_records(
        self, index: int
    ) -> Tuple[Tuple[int, int, bytes, Optional[bytes]], ...]:
        """(addr, leaf, data, mac) records of one bucket, in slot order."""
        lst = self.buckets[index]
        if not lst:
            return ()
        addr_col, leaf_col, mac_col = self.addr_col, self.leaf_col, self.mac_col
        return tuple(
            (addr_col[s], leaf_col[s], self.payload(s), mac_col[s]) for s in lst
        )

    def replace_bucket_records(self, index: int, records) -> None:
        """Overwrite one bucket's contents from (addr, leaf, data, mac) rows.

        Tamper/restore hook used by the adversary layer: the analogue of
        assigning ``bucket.blocks`` on the object storages.
        """
        lst = self.buckets[index]
        if lst is None:
            lst = self.buckets[index] = []
        for slot in lst:
            self._free.append(slot)
        # In-place (list identity is part of the path cache's contract).
        lst[:] = [
            self.alloc(addr, leaf, bytes(data), mac)
            for addr, leaf, data, mac in records
        ]

    def find_block(self, addr: int) -> Optional[Tuple[int, int]]:
        """(bucket index, slot) of a live tree block by address, or None."""
        addr_col = self.addr_col
        for index, lst in enumerate(self.buckets):
            if lst:
                for slot in lst:
                    if addr_col[slot] == addr:
                        return index, slot
        return None

    # -- accounting ---------------------------------------------------------

    @property
    def bytes_read(self) -> int:
        """Total bytes read at the padded bucket granularity."""
        return self.buckets_read * self.config.bucket_bytes

    @property
    def bytes_written(self) -> int:
        """Total bytes written at the padded bucket granularity."""
        return self.buckets_written * self.config.bucket_bytes

    @property
    def bytes_moved(self) -> int:
        """Read + written bytes."""
        return self.bytes_read + self.bytes_written

    def reset_counters(self) -> None:
        """Zero the bandwidth counters (used between experiment phases)."""
        self.buckets_read = 0
        self.buckets_written = 0

    def occupancy(self) -> int:
        """Total real blocks currently stored in the tree."""
        return sum(len(lst) for lst in self.buckets if lst)
