"""Storage-agnostic content snapshots and digests.

The differential harness (``tests/test_columnar_differential.py``) and
the cross-storage integrity tests compare ORAM state across *different
representations* of the same tree — bucket objects, array-geometry
buckets, columnar slot arenas. These helpers reduce every representation
to one canonical content view:

- a **record** is ``(addr, leaf, data, mac)`` for one real block;
- a **bucket snapshot** is the tuple of records in slot order;
- a **tree snapshot** is the tuple of bucket snapshots in heap order;
- a **digest** is the SHA-256 of the canonical byte serialization of a
  snapshot, so "bit-identical" is checkable (and reportable) as one
  hex string.

Dummy blocks never appear: the object model stores only real blocks and
the columnar model only occupied slots, so the record streams line up by
construction. Both :class:`~repro.storage.tree.TreeStorage` (and its
array subclass) and :class:`~repro.storage.columnar.ColumnarTreeStorage`
expose ``bucket_records``/``replace_bucket_records``, which is the whole
interface this module needs.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

#: One real block as content: (addr, leaf, data, mac).
Record = Tuple[int, int, bytes, Optional[bytes]]


def bucket_records(storage, index: int) -> Tuple[Record, ...]:
    """Canonical records of one bucket, in slot order."""
    return storage.bucket_records(index)


def tree_records(storage) -> Tuple[Tuple[Record, ...], ...]:
    """Canonical records of every bucket, in heap order."""
    return tuple(
        storage.bucket_records(index)
        for index in range(storage.config.num_buckets)
    )


def path_records(storage, leaf: int) -> Tuple[Tuple[Record, ...], ...]:
    """Canonical records of the buckets on the path to ``leaf``, root->leaf."""
    return tuple(
        storage.bucket_records(index) for index in storage.path_indices(leaf)
    )


def _serialise(buckets: Tuple[Tuple[Record, ...], ...]) -> bytes:
    """Unambiguous byte image of a snapshot (lengths delimit every field)."""
    out = bytearray()
    for records in buckets:
        out += len(records).to_bytes(4, "little")
        for addr, leaf, data, mac in records:
            out += addr.to_bytes(8, "little", signed=True)
            out += leaf.to_bytes(8, "little")
            out += len(data).to_bytes(4, "little")
            out += data
            if mac is None:
                out += b"\x00"
            else:
                out += b"\x01" + len(mac).to_bytes(2, "little") + mac
    return bytes(out)


def tree_digest(storage) -> str:
    """SHA-256 hex digest of the whole tree's canonical content."""
    return hashlib.sha256(_serialise(tree_records(storage))).hexdigest()


def path_digest(storage, leaf: int) -> str:
    """SHA-256 hex digest of one path's canonical content."""
    return hashlib.sha256(_serialise(path_records(storage, leaf))).hexdigest()
