"""Untrusted external storage: blocks, buckets, and the ORAM tree.

Four storage models share one Backend-facing interface:

- :class:`~repro.storage.tree.TreeStorage` keeps buckets as Python objects
  (no real encryption) and is the fast substrate for performance studies;
  bandwidth is accounted using the padded bucket size of
  :class:`~repro.config.OramConfig`.
- :class:`~repro.storage.array_tree.ArrayTreeStorage` is the replay-sweep
  variant: identical semantics, but path geometry and per-leaf caches are
  dense arrays (numpy-vectorised when available). Select it with the
  preset kwarg ``storage="array"`` or ``REPRO_STORAGE=array``.
- :class:`~repro.storage.columnar.ColumnarTreeStorage` stores the tree as
  columns over a slot arena (addr/leaf columns + contiguous byte arena)
  and pairs with the columnar Backend whose eviction loop moves slot ids
  instead of Block objects. Select with ``storage="columnar"`` or
  ``REPRO_STORAGE=columnar``; proven bit-identical by the differential
  harness in ``tests/test_columnar_differential.py``.
- :class:`~repro.storage.encrypted.EncryptedTreeStorage` serialises buckets
  to bytes and encrypts them with real one-time pads (bucket-seed or
  global-seed scheme), exposing the raw ciphertext to the adversary; it
  backs the privacy/integrity security tests including the §6.4 replay
  attack.

:mod:`repro.storage.snapshot` provides storage-agnostic content snapshots
and digests used by the equivalence and integrity test layers.
"""

from repro.storage.array_tree import (
    STORAGE_ENV,
    ArrayTreeStorage,
    default_storage_backend,
    make_storage,
    make_storage_factory,
)
from repro.storage.block import Block, DUMMY_ADDR
from repro.storage.bucket import Bucket
from repro.storage.columnar import ColumnarTreeStorage
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme
from repro.storage.snapshot import (
    bucket_records,
    path_records,
    tree_digest,
    tree_records,
)
from repro.storage.tree import TreeStorage, path_indices

__all__ = [
    "Block",
    "DUMMY_ADDR",
    "Bucket",
    "TreeStorage",
    "ArrayTreeStorage",
    "ColumnarTreeStorage",
    "EncryptedTreeStorage",
    "EncryptionScheme",
    "STORAGE_ENV",
    "default_storage_backend",
    "make_storage",
    "make_storage_factory",
    "path_indices",
    "bucket_records",
    "path_records",
    "tree_records",
    "tree_digest",
]
