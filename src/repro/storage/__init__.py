"""Untrusted external storage: blocks, buckets, and the ORAM tree.

Two storage models share one interface:

- :class:`~repro.storage.tree.TreeStorage` keeps buckets as Python objects
  (no real encryption) and is the fast substrate for performance studies;
  bandwidth is accounted using the padded bucket size of
  :class:`~repro.config.OramConfig`.
- :class:`~repro.storage.encrypted.EncryptedTreeStorage` serialises buckets
  to bytes and encrypts them with real one-time pads (bucket-seed or
  global-seed scheme), exposing the raw ciphertext to the adversary; it
  backs the privacy/integrity security tests including the §6.4 replay
  attack.
"""

from repro.storage.block import Block, DUMMY_ADDR
from repro.storage.bucket import Bucket
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme
from repro.storage.tree import TreeStorage, path_indices

__all__ = [
    "Block",
    "DUMMY_ADDR",
    "Bucket",
    "TreeStorage",
    "EncryptedTreeStorage",
    "EncryptionScheme",
    "path_indices",
]
