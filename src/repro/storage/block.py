"""The unit of ORAM storage: a (address, leaf, data[, mac]) tuple.

Blocks are the processor-visible unit (a cache line, §3.1). Each block in
the stash or tree carries its current leaf label and block address; PMMAC
additionally appends a MAC tag which the backend treats as opaque payload
bits (§6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Sentinel address used for dummy blocks in serialised buckets.
DUMMY_ADDR = -1


@dataclass(slots=True)
class Block:
    """One real data or PosMap block.

    ``addr`` is the full tagged address — for PosMap blocks this encodes
    the recursion level i and index a_i (the i||a_i tag of §4.1.1) via
    :mod:`repro.frontend.addrgen`. Slotted: blocks are churned by the
    hundred per path access, so attribute reads and per-instance memory
    both matter.
    """

    addr: int
    leaf: int
    data: bytes
    mac: Optional[bytes] = None

    def copy(self) -> "Block":
        """Independent copy (bytes are immutable, so shallow fields suffice)."""
        return Block(self.addr, self.leaf, self.data, self.mac)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block(addr={self.addr:#x}, leaf={self.leaf}, |data|={len(self.data)})"
