"""Byte-accurate encrypted ORAM tree storage.

This model serialises every bucket to a fixed-size byte image and encrypts
it with a one-time pad, exactly as the hardware does with AES counter mode
(§3.1, §6.4). The adversary sees — and may tamper with — the ciphertext
and the plaintext seed field. Two encryption schemes are selectable:

- ``EncryptionScheme.BUCKET_SEED``: the scheme of [26]; the per-bucket seed
  is stored in plaintext and incremented on re-encryption. Vulnerable to
  the §6.4 seed-replay attack (reproduced in the security tests).
- ``EncryptionScheme.GLOBAL_SEED``: the paper's fix; a single monotonic
  counter in the (trusted) controller guarantees pad freshness.

Bucket wire format (before padding to ``config.bucket_bytes``):

    seed (8 B, plaintext) || E(slot_0 || ... || slot_{Z-1})

where each slot is ``valid (1 B) || addr (8 B) || leaf (8 B) ||
data (B bytes) || mac (mac_bytes)``.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.config import OramConfig
from repro.crypto.pad import PadGenerator
from repro.storage.block import Block, DUMMY_ADDR
from repro.storage.bucket import Bucket
from repro.storage.tree import path_indices


class EncryptionScheme(enum.Enum):
    """Pad-seeding policy for bucket encryption."""

    BUCKET_SEED = "bucket-seed"
    GLOBAL_SEED = "global-seed"


class EncryptedTreeStorage:
    """ORAM tree held as encrypted byte images in untrusted memory."""

    SLOT_HEADER = 1 + 8 + 8  # valid + addr + leaf

    def __init__(
        self,
        config: OramConfig,
        pad: PadGenerator,
        scheme: EncryptionScheme = EncryptionScheme.GLOBAL_SEED,
        observer=None,
    ):
        self.config = config
        self.pad = pad
        self.scheme = scheme
        self.observer = observer
        #: Trusted monotonic counter (global-seed scheme); lives on-chip.
        self.global_seed = 0
        body = config.blocks_per_bucket * self._slot_bytes()
        self._body_bytes = body
        empty = self._encrypt_bucket_image(0, Bucket(config.blocks_per_bucket))
        #: Raw untrusted memory: one byte image per bucket (lazy init copy).
        self._images: List[Optional[bytes]] = [None] * config.num_buckets
        self._empty_image = empty
        self.buckets_read = 0
        self.buckets_written = 0

    def _slot_bytes(self) -> int:
        return self.SLOT_HEADER + self.config.block_bytes + self.config.mac_bytes

    # -- serialisation --------------------------------------------------------

    def _serialise_bucket(self, bucket: Bucket) -> bytes:
        out = bytearray()
        cfg = self.config
        for slot in range(cfg.blocks_per_bucket):
            if slot < len(bucket.blocks):
                block = bucket.blocks[slot]
                mac = block.mac or b"\x00" * cfg.mac_bytes
                if len(block.data) != cfg.block_bytes:
                    raise ValueError("block payload size mismatch")
                if len(mac) != cfg.mac_bytes:
                    raise ValueError("MAC size mismatch")
                out.append(1)
                out += block.addr.to_bytes(8, "little", signed=True)
                out += block.leaf.to_bytes(8, "little")
                out += block.data
                out += mac
            else:
                out.append(0)
                out += DUMMY_ADDR.to_bytes(8, "little", signed=True)
                out += b"\x00" * 8
                out += b"\x00" * cfg.block_bytes
                out += b"\x00" * cfg.mac_bytes
        return bytes(out)

    def _deserialise_bucket(self, body: bytes) -> Bucket:
        cfg = self.config
        bucket = Bucket(cfg.blocks_per_bucket)
        step = self._slot_bytes()
        for slot in range(cfg.blocks_per_bucket):
            rec = body[slot * step : (slot + 1) * step]
            if rec[0] != 1:
                continue
            addr = int.from_bytes(rec[1:9], "little", signed=True)
            leaf = int.from_bytes(rec[9:17], "little")
            data = rec[17 : 17 + cfg.block_bytes]
            mac = rec[17 + cfg.block_bytes :] if cfg.mac_bytes else None
            bucket.add(Block(addr, leaf, data, mac))
        return bucket

    # -- encryption -----------------------------------------------------------

    def _pad_for(self, bucket_id: int, seed: int) -> bytes:
        if self.scheme is EncryptionScheme.BUCKET_SEED:
            return self.pad.bucket_seed_pad(bucket_id, seed, self._body_bytes)
        return self.pad.global_seed_pad(seed, self._body_bytes)

    def _encrypt_bucket_image(self, bucket_id: int, bucket: Bucket) -> bytes:
        if self.scheme is EncryptionScheme.BUCKET_SEED:
            seed = bucket.seed + 1
            bucket.seed = seed
        else:
            seed = self.global_seed
            self.global_seed += 1
        body = self._serialise_bucket(bucket)
        cipher = PadGenerator.xor(body, self._pad_for(bucket_id, seed))
        return seed.to_bytes(8, "little") + cipher

    def _decrypt_bucket_image(self, bucket_id: int, image: bytes) -> Bucket:
        seed = int.from_bytes(image[:8], "little")
        body = PadGenerator.xor(image[8:], self._pad_for(bucket_id, seed))
        bucket = self._deserialise_bucket(body)
        bucket.seed = seed
        return bucket

    # -- path interface (mirrors TreeStorage) ----------------------------------

    def path_indices(self, leaf: int) -> List[int]:
        """Heap indices along the path to ``leaf``."""
        if not 0 <= leaf < self.config.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        return path_indices(leaf, self.config.levels)

    def read_path(self, leaf: int) -> List[Tuple[int, Bucket]]:
        """Decrypt all buckets on the path; returns (level, bucket) pairs."""
        indices = self.path_indices(leaf)
        self.buckets_read += len(indices)
        if self.observer is not None:
            self.observer.on_path_read(leaf, indices)
        out = []
        for level, idx in enumerate(indices):
            image = self._images[idx] or self._empty_image
            out.append((level, self._decrypt_bucket_image(idx, image)))
        self._pending = (leaf, indices, out)
        return out

    def write_path(self, leaf: int) -> None:
        """Re-encrypt and store the buckets returned by the last read_path."""
        pending_leaf, indices, buckets = self._pending
        if pending_leaf != leaf:
            raise RuntimeError("write_path leaf does not match last read_path")
        self.buckets_written += len(indices)
        if self.observer is not None:
            self.observer.on_path_write(leaf, indices)
        for (level, bucket), idx in zip(buckets, indices):
            self._images[idx] = self._encrypt_bucket_image(idx, bucket)

    # -- adversary surface ------------------------------------------------------

    def raw_image(self, index: int) -> bytes:
        """Ciphertext image of a bucket, as visible on the memory bus."""
        return self._images[index] or self._empty_image

    def tamper_image(self, index: int, image: bytes) -> None:
        """Overwrite a bucket image (active adversary)."""
        expected = 8 + self._body_bytes
        if len(image) != expected:
            raise ValueError(f"bucket image must be {expected} bytes")
        self._images[index] = image

    # -- accounting ---------------------------------------------------------------

    @property
    def bytes_read(self) -> int:
        """Total bytes read at the padded bucket granularity."""
        return self.buckets_read * self.config.bucket_bytes

    @property
    def bytes_written(self) -> int:
        """Total bytes written at the padded bucket granularity."""
        return self.buckets_written * self.config.bucket_bytes

    @property
    def bytes_moved(self) -> int:
        """Read + written bytes."""
        return self.bytes_read + self.bytes_written

    def reset_counters(self) -> None:
        """Zero the bandwidth counters."""
        self.buckets_read = 0
        self.buckets_written = 0

    def occupancy(self) -> int:
        """Total real blocks stored (requires decrypting every bucket)."""
        total = 0
        for idx, image in enumerate(self._images):
            if image is None:
                continue
            total += len(self._decrypt_bucket_image(idx, image))
        return total
