"""Flat-array ORAM tree storage for paper-scale replay sweeps.

:class:`ArrayTreeStorage` keeps the exact bucket-object contract of
:class:`~repro.storage.tree.TreeStorage` — it *is* a ``TreeStorage``,
inheriting the whole-path operations and bandwidth accounting — but
replaces the bounded-dict caches on the path hot loop with dense,
leaf-indexed arrays:

- the whole leaf -> heap-index geometry is precomputed once as a
  ``num_leaves x (levels+1)`` table (vectorised with numpy when it is
  importable, computed per-row on demand otherwise), so a path read does
  no per-level arithmetic and no bounded-dict bookkeeping;
- materialised per-leaf bucket lists live in a plain list indexed by the
  leaf label itself: O(1) with no hashing and no cache-cycling, because
  the leaf space is dense by construction.

Contents, drain/evict semantics, bandwidth accounting and observer
callbacks are identical to ``TreeStorage`` — the golden-digest equivalence
tests replay full traces over both and require bitwise-equal results.

Selection: pass ``storage="array"`` to the PLB presets (or any
``storage_factory`` caller), or set ``REPRO_STORAGE=array`` to make it the
default for every preset-built frontend. The :func:`make_storage` registry
below also dispatches ``"columnar"`` to the slot-arena store of
:mod:`repro.storage.columnar`.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.config import OramConfig
from repro.storage.bucket import Bucket
from repro.storage.tree import TreeStorage

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Environment variable selecting the default storage backend for presets.
STORAGE_ENV = "REPRO_STORAGE"

#: Leaf-count bound for eager geometry precomputation. Above it (a > 2^21
#: bucket tree) rows are computed on first touch instead, so pathological
#: configurations do not pay a large allocation up front.
EAGER_GEOMETRY_LEAVES = 1 << 20


def default_storage_backend() -> str:
    """Storage backend name from ``REPRO_STORAGE`` (``object`` default)."""
    value = os.environ.get(STORAGE_ENV, "").strip().lower()
    return value if value else "object"


class ArrayTreeStorage(TreeStorage):
    """Untrusted external memory with array-backed path geometry."""

    def __init__(self, config: OramConfig, observer=None):
        super().__init__(config, observer=observer)
        num_leaves = config.num_leaves
        self._path_len = config.levels + 1
        # Dense per-leaf caches replacing the parent's bounded dicts:
        # row of heap indices, materialised bucket list, both indexed by
        # the leaf label directly.
        self._index_rows: List[Optional[Tuple[int, ...]]] = [None] * num_leaves
        self._bucket_rows: List[Optional[List[Bucket]]] = [None] * num_leaves
        self._geometry = None
        if _np is not None and num_leaves <= EAGER_GEOMETRY_LEAVES:
            # Entire geometry in one vectorised sweep:
            # row[leaf][d] = 2^d - 1 + (leaf >> (levels - d)).
            levels = config.levels
            offsets = (1 << _np.arange(levels + 1, dtype=_np.int64)) - 1
            shifts = _np.arange(levels, -1, -1, dtype=_np.int64)
            leaves = _np.arange(num_leaves, dtype=_np.int64)[:, None]
            self._geometry = offsets[None, :] + (leaves >> shifts[None, :])

    def _indices(self, leaf: int) -> Tuple[int, ...]:
        """Heap indices along the path to ``leaf`` (dense-cached)."""
        if not 0 <= leaf < self.config.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        row = self._index_rows[leaf]
        if row is None:
            if self._geometry is not None:
                row = tuple(self._geometry[leaf].tolist())
            else:
                levels = self.config.levels
                row = tuple(
                    (1 << d) - 1 + (leaf >> (levels - d))
                    for d in range(levels + 1)
                )
            self._index_rows[leaf] = row
        return row

    def read_path_buckets(self, leaf: int) -> List[Bucket]:
        """Read all buckets root->leaf; index in the list is the level.

        Same contract as ``TreeStorage.read_path_buckets``: the returned
        list is cached and shared — callers may mutate the buckets but
        must not mutate the list itself.
        """
        if not 0 <= leaf < self.config.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")
        path = self._bucket_rows[leaf]
        if path is None:
            indices = self._indices(leaf)
            buckets = self._buckets
            capacity = self.config.blocks_per_bucket
            path = []
            for idx in indices:
                bucket = buckets[idx]
                if bucket is None:
                    bucket = Bucket(capacity)
                    buckets[idx] = bucket
                path.append(bucket)
            self._bucket_rows[leaf] = path
        self.buckets_read += self._path_len
        if self.observer is not None:
            self.observer.on_path_read(leaf, self._indices(leaf))
        return path


def make_storage(kind: str, config: OramConfig, observer=None):
    """Instantiate a storage backend by name: object, array, or columnar."""
    if kind in ("object", "tree", "", None):
        return TreeStorage(config, observer=observer)
    if kind == "array":
        return ArrayTreeStorage(config, observer=observer)
    if kind == "columnar":
        from repro.storage.columnar import ColumnarTreeStorage

        return ColumnarTreeStorage(config, observer=observer)
    raise ValueError(
        f"unknown storage backend {kind!r}; "
        "choose 'object', 'array' or 'columnar'"
    )


def make_storage_factory(kind: Optional[str]):
    """``storage_factory`` hook (config, observer) -> storage for presets.

    ``kind=None`` resolves from ``REPRO_STORAGE`` at call time; an explicit
    kind pins the backend regardless of the environment.
    """

    def factory(config: OramConfig, observer=None):
        resolved = kind if kind is not None else default_storage_backend()
        view = observer.for_tree(0) if observer is not None else None
        return make_storage(resolved, config, observer=view)

    return factory


def storage_factory_for(kind: Optional[str]):
    """Map a spec/preset storage kind onto a ``storage_factory`` (or None).

    ``None``/``"default"`` resolve from ``REPRO_STORAGE``; ``"object"`` and
    ``"tree"`` return None so a frontend keeps its built-in default (plain
    :class:`TreeStorage`) — byte-for-byte the historical construction path.
    """
    resolved = kind if kind not in (None, "default") else default_storage_backend()
    if resolved in ("object", "tree"):
        return None
    return make_storage_factory(resolved)
