"""Freecursive ORAM — reproduction of Fletcher et al., ASPLOS 2015.

A complete, pure-Python implementation of "Freecursive ORAM: [Nearly]
Free Recursion and Integrity Verification for Position-based Oblivious
RAM": Path ORAM backend, Recursive ORAM baseline, the PosMap Lookaside
Buffer with a Unified ORAM tree (S4), compressed PosMap (S5), PMMAC
integrity verification (S6), and the full evaluation substrate (DDR3
timing model, cache hierarchy, SPEC stand-in workloads, ASIC area model).

Quickstart::

    from repro import pic_x32, Op

    oram = pic_x32(num_blocks=2**14)       # PLB + compression + PMMAC
    oram.write(7, b"secret".ljust(64, b"\\0"))
    assert oram.read(7).startswith(b"secret")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import FrontendTimings, OramConfig, ProcessorConfig
from repro.crypto.suite import CryptoSuite
from repro.errors import (
    BlockNotFoundError,
    ConfigurationError,
    IntegrityViolationError,
    ReproError,
    SpecError,
    StashOverflowError,
)
from repro.frontend.linear import LinearFrontend
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.presets import (
    SCHEMES,
    build_frontend,
    p_x16,
    pc_x32,
    pc_x64,
    phantom_4kb,
    pi_x8,
    pic_x32,
    r_x8,
)
from repro.spec import SchemeSpec, get_spec, register, spec_names
from repro.utils.rng import DeterministicRng

__version__ = "1.0.0"

__all__ = [
    "Op",
    "PathOramBackend",
    "OramConfig",
    "ProcessorConfig",
    "FrontendTimings",
    "CryptoSuite",
    "ReproError",
    "StashOverflowError",
    "IntegrityViolationError",
    "BlockNotFoundError",
    "ConfigurationError",
    "SpecError",
    "LinearFrontend",
    "RecursiveFrontend",
    "PlbFrontend",
    "SCHEMES",
    "build_frontend",
    "r_x8",
    "p_x16",
    "pc_x32",
    "pc_x64",
    "pi_x8",
    "pic_x32",
    "phantom_4kb",
    "SchemeSpec",
    "get_spec",
    "register",
    "spec_names",
    "DeterministicRng",
    "__version__",
]
