"""Named scheme presets matching the paper's evaluation (§7.1.4).

Naming follows the paper: P = PLB, I = Integrity (PMMAC), C = Compressed
PosMap, and the X suffix is the PosMap fan-out:

- ``R_X8``    — Recursive ORAM baseline of [26]: separate trees, X = 8
                (32-byte PosMap blocks), no PLB.
- ``P_X16``   — PLB + Unified tree, uncompressed PosMap (X = 16 at 64 B).
- ``PC_X32``  — PLB + compressed PosMap (alpha=64, beta=14, X = 32).
- ``PI_X8``   — PLB + PMMAC with flat 64-bit counters (X = 8).
- ``PIC_X32`` — PLB + compressed PosMap + PMMAC (the paper's headline).
- ``phantom_4kb`` — Phantom [21] configuration: 4 KB blocks, no recursion.

Simulation-scale defaults (N = 2^16 blocks, 8 KB on-chip budget) keep runs
tractable; every parameter can be overridden for full-scale studies.
"""

from __future__ import annotations

from typing import Optional

from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.frontend.linear import LinearFrontend
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.storage.array_tree import default_storage_backend, make_storage_factory
from repro.utils.rng import DeterministicRng

#: Scheme names usable with :func:`build_frontend`.
SCHEMES = ("R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32")


def _resolve_storage_factory(storage: Optional[str]):
    """Map a preset ``storage`` kwarg (or ``REPRO_STORAGE``) to a factory.

    ``None``/``"object"`` return None so the frontend keeps its built-in
    default (plain :class:`TreeStorage`) — byte-for-byte the historical
    construction path.
    """
    resolved = storage if storage is not None else default_storage_backend()
    if resolved in ("object", "tree"):
        return None
    return make_storage_factory(resolved)


def r_x8(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    storage: Optional[str] = None,
) -> RecursiveFrontend:
    """Recursive ORAM baseline with X=8 (32-byte PosMap blocks, [26])."""
    return RecursiveFrontend(
        num_blocks=num_blocks,
        data_block_bytes=block_bytes,
        posmap_block_bytes=32,
        blocks_per_bucket=blocks_per_bucket,
        onchip_entries=onchip_entries,
        rng=rng,
        observer=observer,
        storage=storage,
    )


def _plb_frontend(
    posmap_format: str,
    pmmac: bool,
    num_blocks: int,
    block_bytes: int,
    blocks_per_bucket: int,
    plb_capacity_bytes: int,
    onchip_entries: int,
    rng: Optional[DeterministicRng],
    observer,
    crypto: Optional[CryptoSuite],
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    return PlbFrontend(
        num_blocks=num_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
        plb_capacity_bytes=plb_capacity_bytes,
        plb_ways=plb_ways,
        onchip_entries=onchip_entries,
        posmap_format=posmap_format,
        pmmac=pmmac,
        rng=rng,
        observer=observer,
        crypto=crypto,
        storage_factory=_resolve_storage_factory(storage),
    )


def p_x16(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + Unified tree with the uncompressed PosMap (X=16 at 64 B)."""
    return _plb_frontend(
        "uncompressed", False, num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pc_x32(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + compressed PosMap (X=32 for 64 B blocks; §5.3)."""
    return _plb_frontend(
        "compressed", False, num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pi_x8(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + PMMAC with flat 64-bit counters (X=8; §6.2.2)."""
    return _plb_frontend(
        "flat", True, num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pic_x32(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + compressed PosMap + PMMAC — the paper's combined scheme."""
    return _plb_frontend(
        "compressed", True, num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pc_x64(
    num_blocks: int = 2**15,
    block_bytes: int = 128,
    blocks_per_bucket: int = 3,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PC with 128-byte blocks, doubling X to 64 (the Fig. 8 point)."""
    return _plb_frontend(
        "compressed", False, num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto,
        storage=storage,
    )


def phantom_4kb(
    num_blocks: int = 2**12,
    block_bytes: int = 4096,
    blocks_per_bucket: int = 4,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    storage: Optional[str] = None,
) -> LinearFrontend:
    """Phantom [21] configuration: large blocks, full on-chip PosMap."""
    cfg = OramConfig(
        num_blocks=num_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
    )
    rng = rng if rng is not None else DeterministicRng(0)
    from repro.storage.array_tree import make_storage

    resolved = storage if storage is not None else default_storage_backend()
    view = observer.for_tree(0) if observer is not None else None
    return LinearFrontend(cfg, rng, storage=make_storage(resolved, cfg, observer=view))


def build_frontend(scheme: str, **kwargs):
    """Factory dispatch on a paper scheme name (see :data:`SCHEMES`)."""
    factories = {
        "R_X8": r_x8,
        "P_X16": p_x16,
        "PC_X32": pc_x32,
        "PI_X8": pi_x8,
        "PIC_X32": pic_x32,
        "PC_X64": pc_x64,
    }
    if scheme not in factories:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    return factories[scheme](**kwargs)
