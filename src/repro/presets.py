"""Named scheme presets matching the paper's evaluation (§7.1.4).

Naming follows the paper: P = PLB, I = Integrity (PMMAC), C = Compressed
PosMap, and the X suffix is the PosMap fan-out:

- ``R_X8``    — Recursive ORAM baseline of [26]: separate trees, X = 8
                (32-byte PosMap blocks), no PLB.
- ``P_X16``   — PLB + Unified tree, uncompressed PosMap (X = 16 at 64 B).
- ``PC_X32``  — PLB + compressed PosMap (alpha=64, beta=14, X = 32).
- ``PI_X8``   — PLB + PMMAC with flat 64-bit counters (X = 8).
- ``PIC_X32`` — PLB + compressed PosMap + PMMAC (the paper's headline).
- ``phantom_4kb`` — Phantom [21] configuration: 4 KB blocks, no recursion.

The source of truth is the declarative registry in :mod:`repro.spec`:
every preset is a frozen :class:`~repro.spec.SchemeSpec`, and the factory
functions below are thin back-compat wrappers over ``get_spec(...).with_``
(kept signature-stable; golden-digest tests prove the spec path builds
bit-identical frontends). New code should prefer specs directly::

    from repro.spec import SchemeSpec, get_spec

    oram = get_spec("PIC_X32").with_(plb_capacity_bytes=32 * 1024).build()
    oram = SchemeSpec.from_string("PIC_X32:plb=32KiB,storage=array").build()
    oram = SchemeSpec.from_string("PC_X32:storage=columnar").build()

Every preset accepts ``storage="object" | "array" | "columnar"`` (or
inherits ``REPRO_STORAGE``); the columnar kind swaps in the slot-arena
store *and* its matching columnar Backend as one proven-equivalent pair.

Simulation-scale defaults (N = 2^16 blocks, 8 KB on-chip budget) keep runs
tractable; every parameter can be overridden for full-scale studies.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.suite import CryptoSuite
from repro.frontend.linear import LinearFrontend
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.spec import SchemeSpec, get_spec, resolve_spec
from repro.utils.rng import DeterministicRng

#: Scheme names usable with :func:`build_frontend`.
SCHEMES = ("R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32")

#: Build-time keyword arguments accepted by :func:`build_frontend` that are
#: not spec fields (objects, not serializable configuration).
_BUILD_KWARGS = ("rng", "observer", "crypto")


def r_x8(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    storage: Optional[str] = None,
) -> RecursiveFrontend:
    """Recursive ORAM baseline with X=8 (32-byte PosMap blocks, [26])."""
    spec = get_spec("R_X8").with_(
        num_blocks=num_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
        onchip_entries=onchip_entries,
        **({} if storage is None else {"storage": storage}),
    )
    return spec.build(rng=rng, observer=observer)


def _plb_preset(
    name: str,
    num_blocks: int,
    block_bytes: int,
    blocks_per_bucket: int,
    plb_capacity_bytes: int,
    onchip_entries: int,
    rng: Optional[DeterministicRng],
    observer,
    crypto: Optional[CryptoSuite],
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    spec = get_spec(name).with_(
        num_blocks=num_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
        plb_capacity_bytes=plb_capacity_bytes,
        plb_ways=plb_ways,
        onchip_entries=onchip_entries,
        **({} if storage is None else {"storage": storage}),
    )
    return spec.build(rng=rng, observer=observer, crypto=crypto)


def p_x16(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + Unified tree with the uncompressed PosMap (X=16 at 64 B)."""
    return _plb_preset(
        "P_X16", num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pc_x32(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + compressed PosMap (X=32 for 64 B blocks; §5.3)."""
    return _plb_preset(
        "PC_X32", num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pi_x8(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + PMMAC with flat 64-bit counters (X=8; §6.2.2)."""
    return _plb_preset(
        "PI_X8", num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pic_x32(
    num_blocks: int = 2**16,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    plb_ways: int = 1,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PLB + compressed PosMap + PMMAC — the paper's combined scheme."""
    return _plb_preset(
        "PIC_X32", num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto, plb_ways,
        storage,
    )


def pc_x64(
    num_blocks: int = 2**15,
    block_bytes: int = 128,
    blocks_per_bucket: int = 3,
    plb_capacity_bytes: int = 64 * 1024,
    onchip_entries: int = 2**11,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    crypto: Optional[CryptoSuite] = None,
    storage: Optional[str] = None,
) -> PlbFrontend:
    """PC with 128-byte blocks, doubling X to 64 (the Fig. 8 point)."""
    return _plb_preset(
        "PC_X64", num_blocks, block_bytes, blocks_per_bucket,
        plb_capacity_bytes, onchip_entries, rng, observer, crypto,
        storage=storage,
    )


def phantom_4kb(
    num_blocks: int = 2**12,
    block_bytes: int = 4096,
    blocks_per_bucket: int = 4,
    rng: Optional[DeterministicRng] = None,
    observer=None,
    storage: Optional[str] = None,
) -> LinearFrontend:
    """Phantom [21] configuration: large blocks, full on-chip PosMap."""
    spec = get_spec("phantom_4kb").with_(
        num_blocks=num_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
        **({} if storage is None else {"storage": storage}),
    )
    return spec.build(rng=rng, observer=observer)


def build_frontend(scheme, **kwargs):
    """Factory dispatch on a scheme name, spec string, or SchemeSpec.

    ``scheme`` may be any registered name (see :data:`SCHEMES`), a spec
    mini-language string (``"PIC_X32:plb=32KiB"``), or a
    :class:`~repro.spec.SchemeSpec`. Remaining keyword arguments are spec
    field overrides, except the build-time objects ``rng``, ``observer``
    and ``crypto``; unknown fields raise
    :class:`~repro.errors.SpecError` naming the valid ones.
    """
    build_args = {k: kwargs.pop(k) for k in _BUILD_KWARGS if k in kwargs}
    if kwargs.get("storage", ...) is None:
        # Legacy callers pass storage=None for "keep the env default".
        del kwargs["storage"]
    return resolve_spec(scheme).with_(**kwargs).build(**build_args)
