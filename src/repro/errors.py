"""Exception hierarchy for the Freecursive ORAM library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class StashOverflowError(ReproError):
    """Stash occupancy exceeded its configured limit.

    For Z >= 4 this is a negligible-probability event in a correct system
    (§3.1.2); seeing it in a simulation almost always means an adversary
    injected blocks or a frontend violated the readrmv/append discipline.
    """


class IntegrityViolationError(ReproError):
    """PMMAC or Merkle verification failed — memory was tampered with.

    Per the threat model (§2), the processor receives this as an exception
    and may kill the program.
    """


class BlockNotFoundError(ReproError):
    """The block of interest was not on its path nor in the stash.

    With honest memory this indicates a PosMap/backend bug; with an active
    adversary it indicates tampering (e.g. the block's address bits were
    corrupted, §6.5.2) and is handled like an integrity violation.
    """


class ConfigurationError(ReproError):
    """Inconsistent or unsupported parameter combination."""


class SpecError(ReproError, ValueError):
    """Malformed scheme/sweep spec: unknown name, field, or value.

    Subclasses :class:`ValueError` as well so call sites that predate the
    declarative spec layer (``build_frontend`` rejecting an unknown scheme
    name with ``ValueError``) keep their historical contract.
    """
