"""Exception hierarchy for the Freecursive ORAM library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class StashOverflowError(ReproError):
    """Stash occupancy exceeded its configured limit.

    For Z >= 4 this is a negligible-probability event in a correct system
    (§3.1.2); seeing it in a simulation almost always means an adversary
    injected blocks or a frontend violated the readrmv/append discipline.
    """


class IntegrityViolationError(ReproError):
    """PMMAC or Merkle verification failed — memory was tampered with.

    Per the threat model (§2), the processor receives this as an exception
    and may kill the program.
    """


class BlockNotFoundError(ReproError):
    """The block of interest was not on its path nor in the stash.

    With honest memory this indicates a PosMap/backend bug; with an active
    adversary it indicates tampering (e.g. the block's address bits were
    corrupted, §6.5.2) and is handled like an integrity violation.
    """


class ConfigurationError(ReproError):
    """Inconsistent or unsupported parameter combination."""


class SpecError(ReproError, ValueError):
    """Malformed scheme/sweep spec: unknown name, field, or value.

    Subclasses :class:`ValueError` as well so call sites that predate the
    declarative spec layer (``build_frontend`` rejecting an unknown scheme
    name with ``ValueError``) keep their historical contract.
    """


class NativeKernelUnavailable(ReproError):
    """``REPRO_REPLAY=compiled`` was requested but cannot be honoured.

    Raised only under ``REPRO_NATIVE=require`` (the CI compiled lane's
    setting) when the optional C extension is unbuilt or disabled;
    without ``require`` the dispatcher falls back to the batched kernel
    with a :class:`RuntimeWarning` instead.
    """


class InjectedFault(ReproError):
    """A fault deliberately raised by the :mod:`repro.faults` plane.

    Recovery machinery (cell retry, shard failover, cache fallback) treats
    this exactly like an organic failure; tests use the distinct type to
    assert that *only* injected faults fired.
    """


class FaultKillPoint(InjectedFault):
    """A simulated hard crash at a kill-point (e.g. mid cache write).

    Raised where a real process would die: callers other than the chaos
    harness must never catch it below the process boundary, so crash-safety
    tests observe the exact on-disk state a SIGKILL would leave behind.
    """


class FabricError(ReproError):
    """The distributed sweep fabric cannot make progress.

    Raised by the coordinator when no worker ever joins, or when every
    worker has died and no respawn budget remains. The sweep's journal is
    flushed before this propagates, so ``--resume`` picks up exactly
    where the fabric stopped.
    """


class SweepInterrupted(ReproError):
    """A sweep stopped early (Ctrl-C or injected interrupt) with partial work.

    Carries the partial ``report`` dict (completed cells only, marked
    ``"interrupted": True``) so the CLI can persist it and print a
    ``--resume`` hint before exiting with status 130.
    """

    def __init__(self, message: str, report: dict | None = None):
        super().__init__(message)
        self.report = report


#: Exception types a backend *rollback* is allowed to absorb (chained
#: onto the original error as a note) when restoration itself fails:
#: the library's own errors plus the container/buffer faults a corrupted
#: column snapshot can produce. Anything else escaping a restore path is
#: a programming error and must propagate, not be silently attached.
RESTORE_FAILURES = (ReproError, ValueError, KeyError, IndexError, BufferError)

#: Exception types a fabric worker reports as an *ordinary* failed cell
#: (one ``error`` frame, one charged attempt, retried/quarantined by the
#: coordinator): the library's own errors, the data faults a corrupted
#: spec/trace/cache can produce, and environmental failures (I/O,
#: memory, arithmetic). Programming errors — TypeError, AttributeError,
#: and friends — are *not* listed: they propagate and kill the worker so
#: bugs surface loudly instead of silently burning the retry budget.
CELL_FAILURES = RESTORE_FAILURES + (ArithmeticError, MemoryError, OSError)


class CacheCorruptionWarning(RuntimeWarning):
    """A disk-cache entry was corrupt/stale and has been evicted for recompute.

    Emitted (and counted on the cache object) instead of raising so a
    damaged cache degrades to recomputation, never to an aborted run.
    """
