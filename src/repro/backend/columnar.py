"""Columnar Path ORAM Backend: the §3.1 access algorithm over slot columns.

``ColumnarPathOramBackend`` is a drop-in replacement for
:class:`~repro.backend.path_oram.PathOramBackend` bound to a
:class:`~repro.storage.columnar.ColumnarTreeStorage`. The algorithm —
fused drain + greedy deepest-first eviction with LIFO candidate/pool
placement, wholesale stash reconciliation, identical error restoration —
is a line-for-line transcription of the object backend, but every loop
moves *arena slot ids* (plain ints read out of the storage's addr/leaf
columns) instead of Block objects. Only the block of interest is ever
materialised: for the caller's ``update`` callback, for ``READRMV``
hand-off, and as the defensive ``READ``/``WRITE`` result.

Three eviction kernels produce bit-identical placements:

- the *scalar* kernel mirrors the object backend's by-depth grouping
  directly (fastest at simulation-scale paths of a few dozen blocks);
- the *vectorised* kernel engages when the merged working set reaches
  :data:`VEC_MIN_MERGE` blocks (large Z, deep trees, stash pressure):
  depths for the whole merge are computed in one numpy sweep
  (``levels - bit_length(leaf_col ^ leaf)`` via the exact float64
  exponent) and the LIFO placement is replayed over a single
  ``lexsort((-seq, depth))`` order with per-depth segment pointers —
  the closed form of "candidates LIFO, then pool LIFO";
- the *native* kernel (:meth:`enable_native_kernel`, engaged by
  ``REPRO_REPLAY=compiled``) is the scalar kernel's drain and placement
  transcribed into C (``repro.sim.native._replay_core``), reading the
  addr/leaf columns zero-copy through the buffer protocol; when it is
  enabled the vectorised kernel is bypassed so the scalar (reference)
  semantics — validation order, error text, placement order — hold
  exactly.

The equivalence of all kernels to the object backend is enforced by the
differential harness in ``tests/test_columnar_differential.py`` (which
forces each kernel explicitly) and by the golden digests.

Error handling is transactional on both kernels: bucket clearing is
deferred to placement time and the stash dict is only reconciled after
placement, so a failure anywhere before placement (drain, update
callback, depth validation — including the vectorised kernel's
eviction-time validation, which runs before any bucket is cleared) rolls
back to the exact pre-access stash snapshot and tree digest, matching
``PathOramBackend``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backend.ops import Op
from repro.backend.stash import ColumnarStash
from repro.config import OramConfig
from repro.errors import RESTORE_FAILURES, BlockNotFoundError
from repro.storage.block import Block
from repro.storage.columnar import _CHUNK_MASK, _CHUNK_SHIFT
from repro.utils.rng import DeterministicRng

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Merged-set size at which the vectorised eviction kernel takes over.
#: Below it, numpy's fixed per-call overhead loses to the scalar slot
#: loop (measured crossover ~100 blocks on CPython 3.11); simulation-scale
#: paths (Z=4, L<=20) therefore use the scalar kernel.
VEC_MIN_MERGE = 96

#: float64 exponents are exact only below 2**53; deeper trees (never seen
#: in practice) fall back to the scalar kernel.
_VEC_MAX_LEVELS = 52


class ColumnarPathOramBackend:
    """One Path ORAM Backend bound to a columnar store and a slot stash."""

    def __init__(
        self,
        config: OramConfig,
        storage,
        rng: DeterministicRng,
        allow_missing: bool = True,
    ):
        self.config = config
        self.storage = storage
        self.rng = rng
        self.allow_missing = allow_missing
        self.stash = ColumnarStash(config.stash_limit, storage)
        self.access_count = 0
        self.tree_access_count = 0
        self.append_count = 0
        # Scalar-kernel scratch, mirroring the object backend's exactly.
        self._by_depth: List[List[int]] = [[] for _ in range(config.levels + 1)]
        # Drained bookkeeping: one flat, merge-ordered snapshot of the
        # drained slots, consumed by the slow-path stash rebuild and by
        # error restoration. Bucket lists are cleared in place (never
        # replaced), so the storage's per-leaf path cache stays valid.
        self._drained_flat: List[int] = []
        self._resident_scratch: List[int] = []
        self._stash_slots = self.stash.slots_by_addr
        #: Vectorised-kernel engagement threshold (instance-level so the
        #: differential tests can force either kernel).
        self.vec_min_merge = (
            VEC_MIN_MERGE
            if _np is not None and config.levels <= _VEC_MAX_LEVELS
            else None
        )
        # Hot-loop bindings. The storage's columns and chunk table are
        # grown strictly in place (list.extend), so binding the objects
        # once is safe; this backend and its storage are a coupled pair.
        self._read_path_slots = storage.read_path_slots
        self._path_capacity = config.blocks_per_bucket * (config.levels + 1)
        self._block_bytes = config.block_bytes
        self._addr_col = storage.addr_col
        self._leaf_col = storage.leaf_col
        self._mac_col = storage.mac_col
        self._chunks = storage._chunks
        # Compiled drain/evict core; None until enable_native_kernel().
        self._native = None

    def enable_native_kernel(self, core) -> None:
        """Route the drain/evict loops through the compiled core.

        ``core`` is the loaded ``repro.sim.native._replay_core`` module
        (``None`` is a no-op, so callers can pass ``load_native_core()``
        unconditionally). The native kernel works zero-copy over the
        storage's interchange columns and mirrors the scalar kernel
        exactly, so the vectorised kernel is disabled while it is
        active — bit-identity is pinned against the scalar reference.
        """
        if core is None:
            return
        # Fail fast if the storage cannot hand out buffer-capable
        # columns (the zero-copy contract the C kernel relies on).
        self.storage.interchange_columns()
        self._native = core

    # -- public API -----------------------------------------------------------

    def random_leaf(self) -> int:
        """Fresh uniform leaf label for remapping."""
        return self.rng.random_leaf(self.config.levels)

    def stash_occupancy(self) -> int:
        """Current stash size in blocks."""
        return len(self.stash)

    def stash_snapshot(self):
        """Ordered (addr, leaf, data, mac) image of the stash.

        Same contract as ``PathOramBackend.stash_snapshot`` — the
        differential harness requires the two to be equal after every
        lockstep access, insertion order included.
        """
        store = self.storage
        return tuple(
            (store.addr_col[s], store.leaf_col[s], store.payload(s),
             store.mac_col[s])
            for s in self.stash.slots_by_addr.values()
        )

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved on the tree interface."""
        return self.storage.bytes_moved

    def access(
        self,
        op: Op,
        addr: int,
        leaf: int = 0,
        new_leaf: int = 0,
        update=None,
        append_block: Optional[Block] = None,
    ) -> Optional[Block]:
        """Perform one Backend operation; same contract as the object path.

        ``READ``/``WRITE`` return an independent materialised copy;
        ``READRMV`` materialises the block, removes its slot and hands
        ownership to the caller; ``APPEND`` copies ``append_block`` into
        the arena without any tree access.
        """
        self.access_count += 1
        store = self.storage
        if op is Op.APPEND:
            if append_block is None:
                raise ValueError("APPEND requires append_block")
            self.append_count += 1
            self.stash.add(append_block)
            self.stash.check_limit()
            return None

        self.tree_access_count += 1
        path = self._read_path_slots(leaf)

        levels = self.config.levels
        cap = self.config.blocks_per_bucket
        addr_col = self._addr_col
        leaf_col = self._leaf_col
        stash_slots = self._stash_slots
        by_depth = self._by_depth
        resident = self._resident_scratch
        drained_flat = self._drained_flat
        flat_extend = drained_flat.extend

        # Looked up but *not* removed: every success path reconciles or
        # clears the dict wholesale after placement, so a fault anywhere in
        # the try block leaves the stash untouched (exact rollback).
        slot = stash_slots.get(addr)
        created_fresh = False
        saved_fields = None
        vectorise = False
        native = self._native
        merged: List[int] = []
        try:
            threshold = self.vec_min_merge
            # The merge can never exceed path capacity + stash residents,
            # so the per-bucket estimate is skipped outright for configs
            # (the common Z=4 simulation scale) that cannot reach the
            # vectorisation threshold. The native kernel replaces both
            # Python kernels wholesale, so the estimate is skipped too.
            if (
                native is None
                and threshold is not None
                and self._path_capacity + len(stash_slots) >= threshold
            ):
                estimate = len(stash_slots)
                for lst in path:
                    estimate += len(lst)
                vectorise = estimate >= threshold

            if native is not None:
                # Fused C drain: stash residents grouped first, then the
                # path root->leaf with snapshot + duplicate/leaf-range
                # validation — the scalar branches below, zero-copy over
                # the columns. Returns the block of interest's slot (or
                # None, leaving the alloc to the shared code below).
                slot = native.drain_scalar(
                    path, addr_col, leaf_col, stash_slots, slot,
                    addr, leaf, levels, by_depth, drained_flat, resident,
                )
            elif vectorise:
                # Gather-only drain: depths for the whole merge are
                # computed in one vectorised sweep afterwards (resident
                # bookkeeping is scalar-kernel-only — the vectorised
                # leftover path rebuilds from ``merged`` directly).
                if slot is None:
                    merged.extend(stash_slots.values())
                else:
                    # The block of interest is grouped last, not here.
                    merged.extend(s for s in stash_slots.values() if s != slot)
                if stash_slots:
                    for lst in path:
                        if lst:
                            flat_extend(lst)
                            for s in lst:
                                a = addr_col[s]
                                if a == addr:
                                    if slot is not None:
                                        raise ValueError(
                                            f"duplicate block {a:#x} in stash"
                                        )
                                    slot = s
                                    continue
                                if a in stash_slots:
                                    raise ValueError(
                                        f"duplicate block {a:#x} in stash"
                                    )
                                merged.append(s)
                else:
                    for lst in path:
                        if lst:
                            flat_extend(lst)
                            for s in lst:
                                if addr_col[s] == addr:
                                    if slot is not None:
                                        raise ValueError(
                                            f"duplicate block "
                                            f"{addr_col[s]:#x} in stash"
                                        )
                                    slot = s
                                    continue
                                merged.append(s)
            elif stash_slots:
                # Fused drain + depth grouping with stash-duplicate checks
                # (the stash dict still holds every resident, exactly like
                # the object backend's merged formulation).
                for s in stash_slots.values():
                    if s == slot:
                        continue  # the block of interest is grouped last
                    depth = levels - (leaf_col[s] ^ leaf).bit_length()
                    if depth < 0:
                        raise ValueError(
                            f"leaf label {leaf_col[s]} out of range for "
                            f"{levels}-level tree"
                        )
                    by_depth[depth].append(s)
                    resident.append(s)
                for lst in path:
                    if lst:
                        flat_extend(lst)
                        for s in lst:
                            a = addr_col[s]
                            if a == addr:
                                if slot is not None:
                                    raise ValueError(
                                        f"duplicate block {a:#x} in stash"
                                    )
                                slot = s
                                continue
                            if a in stash_slots:
                                raise ValueError(
                                    f"duplicate block {a:#x} in stash"
                                )
                            depth = levels - (leaf_col[s] ^ leaf).bit_length()
                            if depth < 0:
                                raise ValueError(
                                    f"leaf label {leaf_col[s]} out of range "
                                    f"for {levels}-level tree"
                                )
                            by_depth[depth].append(s)
            else:
                # Dominant replay path: empty stash, so no duplicate is
                # possible (the object backend's membership probe against
                # an empty dict is identically never-firing) and the drain
                # loop moves bare ints with no dict traffic at all.
                for lst in path:
                    if lst:
                        flat_extend(lst)
                        for s in lst:
                            if addr_col[s] == addr:
                                if slot is not None:
                                    raise ValueError(
                                        f"duplicate block {addr_col[s]:#x} "
                                        f"in stash"
                                    )
                                slot = s
                                continue
                            depth = levels - (leaf_col[s] ^ leaf).bit_length()
                            if depth < 0:
                                raise ValueError(
                                    f"leaf label {leaf_col[s]} out of range "
                                    f"for {levels}-level tree"
                                )
                            by_depth[depth].append(s)

            if slot is None:
                if not self.allow_missing:
                    raise BlockNotFoundError(
                        f"block {addr:#x} absent from path {leaf} and stash"
                    )
                slot = store.alloc(addr, new_leaf)
                created_fresh = True

            # Materialise the block of interest (inlined payload copy —
            # the one per-access byte movement the columnar layout keeps).
            bb = self._block_bytes
            offset = (slot & _CHUNK_MASK) * bb
            payload = bytes(
                self._chunks[slot >> _CHUNK_SHIFT][offset : offset + bb]
            )
            if not created_fresh:
                # Column snapshot for rollback (payload/mac are immutable
                # bytes, so this is three references, not a copy).
                saved_fields = (leaf_col[slot], payload, self._mac_col[slot])
            leaf_col[slot] = new_leaf
            block = Block(addr, new_leaf, payload, self._mac_col[slot])
            if update is not None:
                try:
                    update(block)
                finally:
                    # Write the mutations into the columns even on an
                    # exception (the error path then rolls them back from
                    # the snapshot, same as the object backend's live
                    # Block fields).
                    leaf_col[slot] = block.leaf
                    store.set_payload(slot, block.data)
                    self._mac_col[slot] = block.mac

            result: Optional[Block]
            if op is Op.READRMV:
                # Ownership moves to the Frontend (PLB); the slot is
                # released after eviction succeeds, so error restoration
                # can still re-insert it.
                result = block
            else:
                depth = levels - (block.leaf ^ leaf).bit_length()
                if depth < 0:
                    raise ValueError(
                        f"leaf label {block.leaf} out of range for "
                        f"{levels}-level tree"
                    )
                if vectorise:
                    merged.append(slot)
                else:
                    by_depth[depth].append(slot)  # grouped last, re-insert
                result = block  # already an independent materialised copy
        except BaseException as exc:
            # BaseException, not Exception: a KeyboardInterrupt (or an
            # injected kill) mid-update must roll back too — the re-raise
            # below means nothing is ever swallowed. _abort_access keeps
            # a failing restore from masking the original error.
            self._abort_access(exc, created_fresh, slot, saved_fields)
            raise

        if vectorise:
            try:
                leftover = self._evict_vectorised(merged, path, leaf, levels, cap)
            except BaseException as exc:
                # The vectorised kernel validates depths at eviction time
                # (the scalar kernel validates during the drain, inside
                # the try above), so it needs the same restoration: no
                # bucket has been cleared yet when validation fails.
                self._abort_access(exc, created_fresh, slot, saved_fields)
                raise
            if leftover:
                stash_slots.clear()
                for s in leftover:
                    stash_slots[addr_col[s]] = s
            elif stash_slots:
                stash_slots.clear()
        elif native is not None:
            # C placement: the scalar greedy loop below, compiled. The
            # returned pool feeds the same slow-path rebuild.
            pool = native.place_greedy(path, by_depth, levels, cap)
            if pool:
                self._rebuild_stash(op, addr, slot, pool)
            elif stash_slots:
                stash_slots.clear()
        else:
            # Greedy placement, deepest level first; candidates LIFO, then
            # the pool of deeper leftovers LIFO — the object backend's
            # loop verbatim, over ints.
            pool: List[int] = []
            pool_extend = pool.extend
            pool_pop = pool.pop
            for level in range(levels, -1, -1):
                candidates = by_depth[level]
                slots = path[level]
                if slots:
                    # Deferred drain clear: every path bucket was fully
                    # drained above (so the error path can identify the
                    # drained prefix from the flat snapshot), and empties
                    # here just before refill.
                    del slots[:]
                if not (candidates or pool):
                    continue
                free = cap
                while free > 0 and candidates:
                    slots.append(candidates.pop())
                    free -= 1
                if candidates:
                    pool_extend(candidates)
                    candidates.clear()  # leave the scratch lists empty
                while free > 0 and pool:
                    slots.append(pool_pop())
                    free -= 1

            if pool:
                self._rebuild_stash(op, addr, slot, pool)
            elif stash_slots:
                stash_slots.clear()
        resident.clear()
        drained_flat.clear()
        if op is Op.READRMV:
            store.release(slot)

        store.write_path_slots(leaf)
        self.stash.check_limit()
        return result

    # -- vectorised eviction kernel -------------------------------------------

    def _evict_vectorised(
        self,
        merged: List[int],
        path: List[List[int]],
        leaf: int,
        levels: int,
        cap: int,
    ) -> List[int]:
        """Vectorised depth grouping + LIFO placement; returns leftovers.

        ``merged`` lists every slot in merge order (stash residents,
        drained root->leaf, block of interest last). Depths are one numpy
        sweep; the greedy "candidates LIFO then pool LIFO" placement is
        replayed in closed form: sorting by ``(depth asc, seq desc)``
        makes each level's take the next run of the order with
        ``depth >= level``, tracked by per-depth segment pointers.
        Leftovers return in merge order, matching the scalar slow path.
        """
        n = len(merged)
        slots_arr = _np.fromiter(merged, dtype=_np.int64, count=n)
        # Zero-copy view over the unboxed leaf column; the fancy index
        # produces an independent array, so the view (and its buffer
        # export) is dropped before any arena growth can happen.
        leaf_view = _np.frombuffer(self.storage.leaf_col, dtype=_np.int64)
        leaves_arr = leaf_view[slots_arr]
        del leaf_view
        x = (leaves_arr ^ leaf).astype(_np.float64)
        depths = levels - _np.frexp(x)[1]
        if depths.min(initial=0) < 0:
            # Out-of-range leaf label: re-derive the first offender in
            # merge order so the error text matches the scalar kernel.
            for s in merged:
                value = self.storage.leaf_col[s]
                if levels - (value ^ leaf).bit_length() < 0:
                    raise ValueError(
                        f"leaf label {value} out of range for "
                        f"{levels}-level tree"
                    )
        order = _np.lexsort((-_np.arange(n, dtype=_np.int64), depths))
        sorted_slots = slots_arr[order].tolist()
        seg_counts = _np.bincount(depths[order], minlength=levels + 1)
        bounds = _np.concatenate(([0], _np.cumsum(seg_counts))).tolist()
        ptr = bounds[:-1]
        seg_end = bounds[1:]
        for level in range(levels, -1, -1):
            target = path[level]
            if target:
                del target[:]  # deferred drain clear (see the scalar kernel)
            budget = cap
            d = level
            while budget > 0 and d <= levels:
                p = ptr[d]
                take = seg_end[d] - p
                if take > 0:
                    if take > budget:
                        take = budget
                    target.extend(sorted_slots[p : p + take])
                    ptr[d] = p + take
                    budget -= take
                d += 1
        leftover_positions = [
            i for d in range(levels + 1) for i in range(ptr[d], seg_end[d])
        ]
        if not leftover_positions:
            return []
        order_list = order.tolist()
        return [merged[i] for i in sorted(order_list[i] for i in leftover_positions)]

    # -- slow-path stash rebuild ----------------------------------------------

    def _rebuild_stash(self, op: Op, addr: int, slot: int, pool) -> None:
        """Rebuild the stash dict from placement leftovers.

        Original merge order — resident survivors, drained survivors,
        block of interest last (see the object backend). Shared by the
        scalar and native placement kernels.
        """
        stash_slots = self._stash_slots
        addr_col = self._addr_col
        leftover_set = set(pool)
        stash_slots.clear()
        for s in self._resident_scratch:
            if s in leftover_set:
                stash_slots[addr_col[s]] = s
        for s in self._drained_flat:
            if s in leftover_set and s != slot:
                stash_slots[addr_col[s]] = s
        if op is not Op.READRMV and slot in leftover_set:
            stash_slots[addr] = slot

    # -- error restoration ----------------------------------------------------

    def _abort_access(
        self, exc: BaseException, created_fresh: bool,
        slot: Optional[int], saved_fields,
    ) -> None:
        """Release a fresh slot and restore state without masking ``exc``.

        Restoration failures of the *expected* kinds (the library's own
        errors, container/buffer faults from a corrupted snapshot —
        :data:`repro.errors.RESTORE_FAILURES`) are chained onto the
        original error as a note instead of replacing it; anything else
        escaping the restore path is a programming error and propagates,
        with ``exc`` attached as its ``__context__``.
        """
        try:
            if created_fresh:
                self.storage.release(slot)
                slot = None
            self._restore_on_error(slot, saved_fields)
        except RESTORE_FAILURES as restore_exc:
            exc.add_note(f"state restoration also failed: {restore_exc!r}")

    def _restore_on_error(self, slot: Optional[int], saved_fields) -> None:
        """Roll a half-finished access back to the exact pre-access state.

        Bucket clearing is deferred to placement time and placement only
        runs after the try block succeeds, so every failure reaching here
        finds the path buckets still populated and the stash dict never
        mutated; a freshly allocated zero slot was already released by the
        caller. All that remains is clearing the scratch lists and undoing
        the block of interest's remap/update from the column snapshot —
        after which the stash snapshot and tree digest both equal their
        pre-access values, mirroring ``PathOramBackend._restore_on_error``.
        """
        for group in self._by_depth:
            group.clear()
        self._drained_flat.clear()
        self._resident_scratch.clear()
        if slot is not None and saved_fields is not None:
            self._leaf_col[slot] = saved_fields[0]
            self.storage.set_payload(slot, saved_fields[1])
            self._mac_col[slot] = saved_fields[2]
