"""Path ORAM Backend: the §3.1 access algorithm with §4.2.2 extensions.

``PathOramBackend.access`` performs one full Backend operation:

1. read and decrypt all buckets on the requested path into the stash,
2. locate the block of interest (creating a zero block on first touch),
3. apply the caller's update (remap leaf, overwrite data/MAC),
4. greedily evict stash blocks back to the same path, deepest level first,
5. check the stash limit.

``READRMV`` hands the located block to the caller and removes it;
``APPEND`` inserts a previously removed block without any tree access.
Every tree touch is reported to the storage layer, which accounts
bandwidth and notifies the passive adversary.

The Backend never interprets block payloads: PosMap blocks, data blocks
and MAC tags are all opaque here — exactly the property that lets the
paper's Frontend schemes compose without Backend changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.backend.ops import Op
from repro.backend.stash import Stash
from repro.config import OramConfig
from repro.errors import RESTORE_FAILURES, BlockNotFoundError
from repro.storage.block import Block
from repro.utils.rng import DeterministicRng


def make_backend(
    config: OramConfig,
    storage,
    rng: DeterministicRng,
    allow_missing: bool = True,
):
    """Backend matched to a storage model.

    A storage advertising ``columnar = True``
    (:class:`~repro.storage.columnar.ColumnarTreeStorage`) gets the
    slot-based :class:`~repro.backend.columnar.ColumnarPathOramBackend`;
    every bucket-object storage (plain, array-geometry, encrypted,
    Merkle-wrapped) keeps :class:`PathOramBackend`. Frontends construct
    their backends exclusively through this factory, so ``storage=`` on
    any preset or spec selects the whole matched pair.
    """
    if getattr(storage, "columnar", False):
        from repro.backend.columnar import ColumnarPathOramBackend

        return ColumnarPathOramBackend(config, storage, rng, allow_missing)
    return PathOramBackend(config, storage, rng, allow_missing)


@dataclass
class AccessReceipt:
    """What one Backend call did, for timing/bandwidth attribution."""

    op: Op
    addr: int
    touched_tree: bool
    leaf: int = 0
    created_fresh: bool = False


class PathOramBackend:
    """One Path ORAM Backend bound to a storage tree and a stash."""

    def __init__(
        self,
        config: OramConfig,
        storage,
        rng: DeterministicRng,
        allow_missing: bool = True,
    ):
        self.config = config
        self.storage = storage
        self.rng = rng
        #: When True, a block never written before reads back as zeroes
        #: (factory-initialised memory); when False it is an error.
        self.allow_missing = allow_missing
        self.stash = Stash(config.stash_limit)
        self.access_count = 0
        self.tree_access_count = 0
        self.append_count = 0
        self._zero = bytes(config.block_bytes)
        # Storages that expose the tuple-free path read (TreeStorage) get
        # the fast replay path; byte-accurate/verified storages fall back
        # to the standard (level, bucket) interface.
        self._read_path_buckets = getattr(storage, "read_path_buckets", None)
        # Scratch depth-grouping lists reused across evictions (always
        # left empty between calls) to avoid per-access allocation.
        self._by_depth: List[List[Block]] = [[] for _ in range(config.levels + 1)]
        # Scratch (bucket, drained blocks) pairs in path order. Consulted
        # when eviction leaves blocks behind (rare) and by the error path,
        # which reattaches each drained list to its bucket so a failed
        # access rolls back to the exact pre-access tree.
        self._drained_lists: List[tuple] = []
        # Scratch snapshot of stash-resident blocks in dict order (same
        # slow-path reconciliation; always cleared between calls).
        self._resident_scratch: List[Block] = []
        # The stash never replaces its dict, so bind it once for the hot loop.
        self._stash_blocks = self.stash.blocks_by_addr

    # -- public API -----------------------------------------------------------

    def random_leaf(self) -> int:
        """Fresh uniform leaf label for remapping."""
        return self.rng.random_leaf(self.config.levels)

    def access(
        self,
        op: Op,
        addr: int,
        leaf: int = 0,
        new_leaf: int = 0,
        update: Optional[Callable[[Block], None]] = None,
        append_block: Optional[Block] = None,
    ) -> Optional[Block]:
        """Perform one Backend operation; returns the block of interest.

        For ``READ``/``WRITE`` a defensive copy is returned (the live block
        stays in the stash/tree). For ``READRMV`` the live block itself is
        returned and ownership passes to the caller. For ``APPEND`` the
        caller supplies ``append_block`` (with its current leaf already
        set) and None is returned.

        ``update`` is invoked on the live block after it is found and its
        leaf remapped — this is where the Frontend overwrites data, splices
        new PosMap entries, or attaches a fresh MAC, modelling in-stash
        modification.
        """
        self.access_count += 1
        if op is Op.APPEND:
            if append_block is None:
                raise ValueError("APPEND requires append_block")
            self.append_count += 1
            self.stash.add(append_block)
            self.stash.check_limit()
            return None

        self.tree_access_count += 1
        read_buckets = self._read_path_buckets
        if read_buckets is not None:
            path = read_buckets(leaf)
        else:
            path = [bucket for _level, bucket in self.storage.read_path(leaf)]

        # Fused drain + greedy eviction. Path blocks are grouped by legal
        # eviction depth as they are drained and only ever enter the stash
        # dict if they survive eviction (rare), eliminating two dict
        # operations per block on the dominant loop of replay. Grouping
        # order — resident stash blocks in insertion order, then drained
        # blocks root->leaf, then the (remapped) block of interest last —
        # and the LIFO candidate/pool placement below are exactly the
        # classic formulation run over a merged stash, so stash contents,
        # bucket contents and occupancy statistics are bit-identical to it.
        levels = self.config.levels
        cap = self.config.blocks_per_bucket
        stash_blocks = self._stash_blocks
        by_depth = self._by_depth

        # The stash entry is looked up but *not* removed: every success path
        # below rebuilds or clears the dict wholesale, so deferring the
        # removal costs nothing — and it means a fault anywhere in the try
        # block leaves the stash untouched (exact pre-access rollback).
        block = stash_blocks.get(addr)
        resident = self._resident_scratch
        drained_lists = self._drained_lists
        created_fresh = False
        saved_fields = None
        try:
            for b in stash_blocks.values():
                if b is block:
                    continue  # the block of interest is grouped last
                depth = levels - (b.leaf ^ leaf).bit_length()
                if depth < 0:
                    raise ValueError(
                        f"leaf label {b.leaf} out of range for {levels}-level tree"
                    )
                by_depth[depth].append(b)
                resident.append(b)

            for bucket in path:
                drained = bucket.blocks
                if drained:
                    bucket.blocks = []
                    drained_lists.append((bucket, drained))
                    for b in drained:
                        a = b.addr
                        if a == addr:
                            if block is not None:
                                raise ValueError(
                                    f"duplicate block {a:#x} in stash"
                                )
                            block = b
                            continue
                        # Stash-vs-path duplicate guard (a storage aliasing
                        # bug would corrupt the tree silently otherwise).
                        # Path-vs-path duplicates of a non-accessed address
                        # are not detectable without a per-access set; the
                        # Stash.add check still covers the APPEND path.
                        if a in stash_blocks:
                            raise ValueError(f"duplicate block {a:#x} in stash")
                        depth = levels - (b.leaf ^ leaf).bit_length()
                        if depth < 0:
                            raise ValueError(
                                f"leaf label {b.leaf} out of range for "
                                f"{levels}-level tree"
                            )
                        by_depth[depth].append(b)

            if block is None:
                if not self.allow_missing:
                    raise BlockNotFoundError(
                        f"block {addr:#x} absent from path {leaf} and stash"
                    )
                block = Block(addr, new_leaf, self._zero, None)
                created_fresh = True

            if not created_fresh:
                # Field snapshot for rollback (data/mac are immutable bytes,
                # so this is three references, not a copy).
                saved_fields = (block.leaf, block.data, block.mac)
            block.leaf = new_leaf
            if update is not None:
                update(block)

            result: Optional[Block]
            if op is Op.READRMV:
                result = block  # ownership moves to the Frontend (PLB)
            else:
                depth = levels - (block.leaf ^ leaf).bit_length()
                if depth < 0:
                    raise ValueError(
                        f"leaf label {block.leaf} out of range for "
                        f"{levels}-level tree"
                    )
                by_depth[depth].append(block)  # grouped last, like a re-insert
                result = block.copy()
        except BaseException as exc:
            # BaseException, not Exception: a KeyboardInterrupt (or an
            # injected kill) mid-update must roll back too — the re-raise
            # means nothing is ever swallowed. A freshly materialised
            # zero block never existed before this access, so it is
            # simply discarded. A restore failure of an *expected* kind
            # (RESTORE_FAILURES) is chained onto the original error as a
            # note instead of replacing it; programming errors in the
            # restore path itself still propagate.
            try:
                self._restore_on_error(
                    None if created_fresh else block, saved_fields
                )
            except RESTORE_FAILURES as restore_exc:
                exc.add_note(
                    f"state restoration also failed: {restore_exc!r}"
                )
            raise

        # Greedy placement, deepest level first; candidates LIFO, then the
        # pool of deeper leftovers LIFO. Stash membership is reconciled
        # wholesale afterwards instead of per placed block.
        pool: List[Block] = []
        pool_extend = pool.extend
        pool_pop = pool.pop
        for level in range(levels, -1, -1):
            candidates = by_depth[level]
            if not (candidates or pool):
                continue
            slots = path[level].blocks
            free = cap - len(slots)
            while free > 0 and candidates:
                slots.append(candidates.pop())
                free -= 1
            if candidates:
                pool_extend(candidates)
                candidates.clear()  # leave the scratch lists empty
            while free > 0 and pool:
                slots.append(pool_pop())
                free -= 1

        if pool:
            # Slow path: some blocks stay behind. Rebuild the stash dict in
            # original merge order — resident survivors first (their
            # original relative order), drained survivors in drain order,
            # the block of interest last — so future grouping order matches
            # the merged-stash semantics exactly.
            leftover = {id(b) for b in pool}
            stash_blocks.clear()
            for b in resident:
                if id(b) in leftover:
                    stash_blocks[b.addr] = b
            for _bucket, drained in drained_lists:
                for b in drained:
                    if id(b) in leftover and b is not block:
                        stash_blocks[b.addr] = b
            if op is not Op.READRMV and id(block) in leftover:
                stash_blocks[addr] = block
        elif stash_blocks:
            # Common fast path: everything was placed back onto the path.
            stash_blocks.clear()
        resident.clear()
        drained_lists.clear()

        self.storage.write_path(leaf)
        self.stash.check_limit()
        return result

    def _restore_on_error(self, block: Optional[Block], saved_fields) -> None:
        """Roll a half-finished access back to the exact pre-access state.

        Drained block lists are reattached to their buckets (same list
        objects, same order), the block of interest's remap/update is
        undone from the field snapshot, and the scratch lists are cleared.
        The stash dict was never mutated, so after this the stash snapshot
        and the tree digest both equal their pre-access values and the
        backend remains usable.
        """
        for group in self._by_depth:
            group.clear()
        for bucket, drained in self._drained_lists:
            bucket.blocks = drained
        self._drained_lists.clear()
        self._resident_scratch.clear()
        if block is not None and saved_fields is not None:
            block.leaf, block.data, block.mac = saved_fields

    # -- introspection ------------------------------------------------------------

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved on the tree interface."""
        return self.storage.bytes_moved

    def stash_occupancy(self) -> int:
        """Current stash size in blocks."""
        return len(self.stash)

    def stash_snapshot(self):
        """Ordered (addr, leaf, data, mac) image of the stash.

        The differential harness compares this tuple across backend
        implementations after every access; insertion order is part of
        the contract (it fixes future eviction grouping order).
        """
        return tuple(
            (b.addr, b.leaf, b.data, b.mac)
            for b in self.stash.blocks_by_addr.values()
        )
