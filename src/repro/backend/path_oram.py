"""Path ORAM Backend: the §3.1 access algorithm with §4.2.2 extensions.

``PathOramBackend.access`` performs one full Backend operation:

1. read and decrypt all buckets on the requested path into the stash,
2. locate the block of interest (creating a zero block on first touch),
3. apply the caller's update (remap leaf, overwrite data/MAC),
4. greedily evict stash blocks back to the same path, deepest level first,
5. check the stash limit.

``READRMV`` hands the located block to the caller and removes it;
``APPEND`` inserts a previously removed block without any tree access.
Every tree touch is reported to the storage layer, which accounts
bandwidth and notifies the passive adversary.

The Backend never interprets block payloads: PosMap blocks, data blocks
and MAC tags are all opaque here — exactly the property that lets the
paper's Frontend schemes compose without Backend changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.backend.ops import Op
from repro.backend.stash import Stash
from repro.config import OramConfig
from repro.errors import BlockNotFoundError
from repro.storage.block import Block
from repro.utils.rng import DeterministicRng


@dataclass
class AccessReceipt:
    """What one Backend call did, for timing/bandwidth attribution."""

    op: Op
    addr: int
    touched_tree: bool
    leaf: int = 0
    created_fresh: bool = False


class PathOramBackend:
    """One Path ORAM Backend bound to a storage tree and a stash."""

    def __init__(
        self,
        config: OramConfig,
        storage,
        rng: DeterministicRng,
        allow_missing: bool = True,
    ):
        self.config = config
        self.storage = storage
        self.rng = rng
        #: When True, a block never written before reads back as zeroes
        #: (factory-initialised memory); when False it is an error.
        self.allow_missing = allow_missing
        self.stash = Stash(config.stash_limit)
        self.access_count = 0
        self.tree_access_count = 0
        self.append_count = 0
        self._zero = bytes(config.block_bytes)
        # Storages that expose the tuple-free path read (TreeStorage) get
        # the fast replay path; byte-accurate/verified storages fall back
        # to the standard (level, bucket) interface.
        self._read_path_buckets = getattr(storage, "read_path_buckets", None)
        # Scratch depth-grouping lists reused across evictions (always
        # left empty between calls) to avoid per-access allocation.
        self._by_depth: List[List[Block]] = [[] for _ in range(config.levels + 1)]
        # The stash never replaces its dict, so bind it once for the hot loop.
        self._stash_blocks = self.stash.blocks_by_addr

    # -- public API -----------------------------------------------------------

    def random_leaf(self) -> int:
        """Fresh uniform leaf label for remapping."""
        return self.rng.random_leaf(self.config.levels)

    def access(
        self,
        op: Op,
        addr: int,
        leaf: int = 0,
        new_leaf: int = 0,
        update: Optional[Callable[[Block], None]] = None,
        append_block: Optional[Block] = None,
    ) -> Optional[Block]:
        """Perform one Backend operation; returns the block of interest.

        For ``READ``/``WRITE`` a defensive copy is returned (the live block
        stays in the stash/tree). For ``READRMV`` the live block itself is
        returned and ownership passes to the caller. For ``APPEND`` the
        caller supplies ``append_block`` (with its current leaf already
        set) and None is returned.

        ``update`` is invoked on the live block after it is found and its
        leaf remapped — this is where the Frontend overwrites data, splices
        new PosMap entries, or attaches a fresh MAC, modelling in-stash
        modification.
        """
        self.access_count += 1
        if op is Op.APPEND:
            if append_block is None:
                raise ValueError("APPEND requires append_block")
            self.append_count += 1
            self.stash.add(append_block)
            self.stash.check_limit()
            return None

        self.tree_access_count += 1
        read_buckets = self._read_path_buckets
        if read_buckets is not None:
            path = read_buckets(leaf)
        else:
            path = [bucket for _level, bucket in self.storage.read_path(leaf)]
        stash_blocks = self._stash_blocks
        for bucket in path:
            drained = bucket.blocks
            if drained:
                bucket.blocks = []
                for b in drained:
                    a = b.addr
                    if a in stash_blocks:
                        raise ValueError(f"duplicate block {a:#x} in stash")
                    stash_blocks[a] = b

        block = stash_blocks.pop(addr, None)
        created_fresh = False
        if block is None:
            if not self.allow_missing:
                raise BlockNotFoundError(
                    f"block {addr:#x} absent from path {leaf} and stash"
                )
            block = Block(addr, new_leaf, self._zero, None)
            created_fresh = True

        block.leaf = new_leaf
        if update is not None:
            update(block)

        result: Optional[Block]
        if op is Op.READRMV:
            result = block  # ownership moves to the Frontend (PLB)
        else:
            stash_blocks[addr] = block  # was just popped; address is free
            result = block.copy()

        self._evict(leaf, path)
        self.storage.write_path(leaf)
        self.stash.check_limit()
        return result

    # -- eviction ---------------------------------------------------------------

    def _evict(self, leaf: int, path: List) -> None:
        """Greedy Path ORAM eviction onto ``path`` (deepest level first).

        ``path`` is the list of path buckets indexed by level. The depth
        computation inlines :func:`~repro.utils.bitops.common_prefix_len`
        because this loop runs once per stash block per access and
        dominates replay time; the out-of-range guard is kept (an
        oversized stash-block leaf would otherwise alias into the wrong
        depth group and silently corrupt the tree).
        """
        levels = self.config.levels
        cap = self.config.blocks_per_bucket
        stash_blocks = self._stash_blocks
        # Group stash blocks by the deepest level they may legally occupy.
        by_depth = self._by_depth
        for block in stash_blocks.values():
            xor = block.leaf ^ leaf
            depth = levels - xor.bit_length()
            if depth < 0:
                raise ValueError(
                    f"leaf label {block.leaf} out of range for {levels}-level tree"
                )
            by_depth[depth].append(block)

        # ``pool`` carries not-yet-placed blocks toward the root; placement
        # order (this level's group LIFO, then older leftovers LIFO) matches
        # the original greedy formulation exactly.
        pool: List[Block] = []
        pool_extend = pool.extend
        pool_pop = pool.pop
        for level in range(levels, -1, -1):
            candidates = by_depth[level]
            if not (candidates or pool):
                continue
            slots = path[level].blocks
            free = cap - len(slots)
            while free > 0 and candidates:
                block = candidates.pop()
                slots.append(block)
                free -= 1
                del stash_blocks[block.addr]
            if candidates:
                pool_extend(candidates)
                candidates.clear()  # leave the scratch lists empty
            while free > 0 and pool:
                block = pool_pop()
                slots.append(block)
                free -= 1
                del stash_blocks[block.addr]

    # -- introspection ------------------------------------------------------------

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved on the tree interface."""
        return self.storage.bytes_moved

    def stash_occupancy(self) -> int:
        """Current stash size in blocks."""
        return len(self.stash)
