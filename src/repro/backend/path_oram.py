"""Path ORAM Backend: the §3.1 access algorithm with §4.2.2 extensions.

``PathOramBackend.access`` performs one full Backend operation:

1. read and decrypt all buckets on the requested path into the stash,
2. locate the block of interest (creating a zero block on first touch),
3. apply the caller's update (remap leaf, overwrite data/MAC),
4. greedily evict stash blocks back to the same path, deepest level first,
5. check the stash limit.

``READRMV`` hands the located block to the caller and removes it;
``APPEND`` inserts a previously removed block without any tree access.
Every tree touch is reported to the storage layer, which accounts
bandwidth and notifies the passive adversary.

The Backend never interprets block payloads: PosMap blocks, data blocks
and MAC tags are all opaque here — exactly the property that lets the
paper's Frontend schemes compose without Backend changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.backend.ops import Op
from repro.backend.stash import Stash
from repro.config import OramConfig
from repro.errors import BlockNotFoundError
from repro.storage.block import Block
from repro.utils.bitops import common_prefix_len
from repro.utils.rng import DeterministicRng


@dataclass
class AccessReceipt:
    """What one Backend call did, for timing/bandwidth attribution."""

    op: Op
    addr: int
    touched_tree: bool
    leaf: int = 0
    created_fresh: bool = False


class PathOramBackend:
    """One Path ORAM Backend bound to a storage tree and a stash."""

    def __init__(
        self,
        config: OramConfig,
        storage,
        rng: DeterministicRng,
        allow_missing: bool = True,
    ):
        self.config = config
        self.storage = storage
        self.rng = rng
        #: When True, a block never written before reads back as zeroes
        #: (factory-initialised memory); when False it is an error.
        self.allow_missing = allow_missing
        self.stash = Stash(config.stash_limit)
        self.access_count = 0
        self.tree_access_count = 0
        self.append_count = 0
        self._zero = bytes(config.block_bytes)

    # -- public API -----------------------------------------------------------

    def random_leaf(self) -> int:
        """Fresh uniform leaf label for remapping."""
        return self.rng.random_leaf(self.config.levels)

    def access(
        self,
        op: Op,
        addr: int,
        leaf: int = 0,
        new_leaf: int = 0,
        update: Optional[Callable[[Block], None]] = None,
        append_block: Optional[Block] = None,
    ) -> Optional[Block]:
        """Perform one Backend operation; returns the block of interest.

        For ``READ``/``WRITE`` a defensive copy is returned (the live block
        stays in the stash/tree). For ``READRMV`` the live block itself is
        returned and ownership passes to the caller. For ``APPEND`` the
        caller supplies ``append_block`` (with its current leaf already
        set) and None is returned.

        ``update`` is invoked on the live block after it is found and its
        leaf remapped — this is where the Frontend overwrites data, splices
        new PosMap entries, or attaches a fresh MAC, modelling in-stash
        modification.
        """
        self.access_count += 1
        if op is Op.APPEND:
            if append_block is None:
                raise ValueError("APPEND requires append_block")
            self.append_count += 1
            self.stash.add(append_block)
            self.stash.check_limit()
            return None

        self.tree_access_count += 1
        path = self.storage.read_path(leaf)
        for _level, bucket in path:
            self.stash.add_all(bucket.drain())

        block = self.stash.pop(addr)
        created_fresh = False
        if block is None:
            if not self.allow_missing:
                raise BlockNotFoundError(
                    f"block {addr:#x} absent from path {leaf} and stash"
                )
            block = Block(addr, new_leaf, self._zero, None)
            created_fresh = True

        block.leaf = new_leaf
        if update is not None:
            update(block)

        result: Optional[Block]
        if op is Op.READRMV:
            result = block  # ownership moves to the Frontend (PLB)
        else:
            self.stash.add(block)
            result = block.copy()

        self._evict(leaf, path)
        self.storage.write_path(leaf)
        self.stash.check_limit()
        return result

    # -- eviction ---------------------------------------------------------------

    def _evict(self, leaf: int, path) -> None:
        """Greedy Path ORAM eviction onto ``path`` (deepest level first)."""
        levels = self.config.levels
        cap = self.config.blocks_per_bucket
        # Group stash blocks by the deepest level they may legally occupy.
        by_depth: List[List[Block]] = [[] for _ in range(levels + 1)]
        for block in self.stash:
            depth = common_prefix_len(block.leaf, leaf, levels)
            by_depth[depth].append(block)

        placed: List[int] = []
        pool: List[Block] = []
        for level in range(levels, -1, -1):
            pool.extend(by_depth[level])
            bucket = path[level][1]
            while pool and len(bucket) < cap:
                block = pool.pop()
                bucket.add(block)
                placed.append(block.addr)
        self.stash.remove_many(placed)

    # -- introspection ------------------------------------------------------------

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved on the tree interface."""
        return self.storage.bytes_moved

    def stash_occupancy(self) -> int:
        """Current stash size in blocks."""
        return len(self.stash)
