"""Backend operation flavours (§3.1 and §4.2.2)."""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Operation requested of the Backend for one block.

    ``READ``/``WRITE`` are the classic Path ORAM operations. ``READRMV``
    physically deletes the block from the stash after forwarding it to the
    Frontend (PLB refill). ``APPEND`` adds a block to the stash without any
    tree access (PLB eviction); the block must not currently exist in the
    ORAM and must carry a valid current leaf (§4.2.2).

    Both Backend implementations (object and columnar) honour the same
    four flavours with identical observable semantics — the operation
    enum is the entire Frontend-facing contract.
    """

    READ = "read"
    WRITE = "write"
    READRMV = "readrmv"
    APPEND = "append"

    @property
    def touches_tree(self) -> bool:
        """True for operations that read/write a full tree path."""
        return self is not Op.APPEND
