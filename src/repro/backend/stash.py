"""The stash: small trusted memory for in-flight blocks (§3.1).

The stash temporarily holds blocks between path reads and evictions. Its
occupancy stays small with overwhelming probability for Z >= 4; the
configured limit (200, following [26]) converts the negligible-probability
overflow into an explicit :class:`~repro.errors.StashOverflowError` so
tests can assert it never fires under honest operation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import StashOverflowError
from repro.storage.block import Block
from repro.utils.stats import RunningStats


class ColumnarStash:
    """Slot-addressed stash for the columnar backend (no Block objects).

    Semantically identical to :class:`Stash`, but entries are arena slot
    ids in a :class:`~repro.storage.columnar.ColumnarTreeStorage`: the
    hot loop moves integers through ``slots_by_addr`` and blocks are
    materialised only for introspection (``blocks()``, iteration), so no
    per-block dict-of-objects round-trips happen on the replay path.
    """

    def __init__(self, limit: int, store):
        self.limit = limit
        self.store = store
        self._slots: Dict[int, int] = {}
        #: Occupancy sampled after each eviction (for the stash experiments).
        self.occupancy_stats = RunningStats()

    def add(self, block: Block) -> int:
        """Insert a block (copied into the arena); returns its slot."""
        if block.addr in self._slots:
            raise ValueError(f"duplicate block {block.addr:#x} in stash")
        slot = self.store.alloc(block.addr, block.leaf, block.data, block.mac)
        self._slots[block.addr] = slot
        return slot

    @property
    def slots_by_addr(self) -> Dict[int, int]:
        """Live address->slot mapping for the columnar backend's hot path.

        Same contract as :meth:`Stash.blocks_by_addr`: mutators must
        preserve the one-slot-per-address invariant themselves.
        """
        return self._slots

    def get(self, addr: int) -> Optional[Block]:
        """Materialised block by address, or None."""
        slot = self._slots.get(addr)
        return self.store.block_at_slot(slot) if slot is not None else None

    def contains(self, addr: int) -> bool:
        """Membership test."""
        return addr in self._slots

    def blocks(self) -> List[Block]:
        """Snapshot list of resident blocks (materialised, in stash order)."""
        return [self.store.block_at_slot(s) for s in self._slots.values()]

    def check_limit(self) -> None:
        """Record occupancy and raise if the configured limit is exceeded."""
        n = len(self._slots)
        self.occupancy_stats.add(n)
        if n > self.limit:
            raise StashOverflowError(
                f"stash occupancy {n} exceeds limit {self.limit}"
            )

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self):
        return iter(self.blocks())


class Stash:
    """Address-indexed block store with occupancy tracking."""

    def __init__(self, limit: int):
        self.limit = limit
        self._blocks: Dict[int, Block] = {}
        #: Occupancy sampled after each eviction (for the stash experiments).
        self.occupancy_stats = RunningStats()

    def add(self, block: Block) -> None:
        """Insert a block; duplicate addresses are a protocol violation."""
        if block.addr in self._blocks:
            raise ValueError(f"duplicate block {block.addr:#x} in stash")
        self._blocks[block.addr] = block

    def add_all(self, blocks: Iterable[Block]) -> None:
        """Insert many blocks (path read)."""
        store = self._blocks
        for block in blocks:
            addr = block.addr
            if addr in store:
                raise ValueError(f"duplicate block {addr:#x} in stash")
            store[addr] = block

    @property
    def blocks_by_addr(self) -> Dict[int, Block]:
        """Live address->block mapping for the Backend's hot path.

        Mutating this dict bypasses the duplicate-address check in
        :meth:`add`; callers (the eviction loop) must preserve the
        one-block-per-address invariant themselves.
        """
        return self._blocks

    def get(self, addr: int) -> Optional[Block]:
        """Block by address, or None."""
        return self._blocks.get(addr)

    def pop(self, addr: int) -> Optional[Block]:
        """Remove and return block by address, or None."""
        return self._blocks.pop(addr, None)

    def contains(self, addr: int) -> bool:
        """Membership test."""
        return addr in self._blocks

    def blocks(self) -> List[Block]:
        """Snapshot list of resident blocks."""
        return list(self._blocks.values())

    def remove_many(self, addrs: Iterable[int]) -> None:
        """Remove a batch of addresses (post-eviction cleanup)."""
        for addr in addrs:
            del self._blocks[addr]

    def check_limit(self) -> None:
        """Record occupancy and raise if the configured limit is exceeded."""
        n = len(self._blocks)
        self.occupancy_stats.add(n)
        if n > self.limit:
            raise StashOverflowError(
                f"stash occupancy {n} exceeds limit {self.limit}"
            )

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks.values())
