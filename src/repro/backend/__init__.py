"""Path ORAM Backend (§3.1): stash, path access, and eviction.

The Backend implements steps 2-5 of the Path ORAM access algorithm — read
a path, pull real blocks into the stash, return/update the block of
interest, evict greedily back to the same path. It supports the four
operation flavours the Frontend needs: ``READ``, ``WRITE``, ``READRMV``
(read-remove) and ``APPEND`` (§4.2.2).

All Frontend schemes in this library (Recursive baseline, PLB, compressed
PosMap, PMMAC) drive this same Backend unchanged, which is the paper's
central modularity claim. Two interchangeable implementations exist,
proven bit-identical by the differential harness and golden digests:

- :class:`PathOramBackend` over bucket-object storages (the original
  formulation, also required under the encrypted/Merkle storages);
- :class:`~repro.backend.columnar.ColumnarPathOramBackend` over the
  columnar slot-arena storage, whose hot loop moves integers instead of
  Block objects.

:func:`make_backend` picks the matching implementation for a storage.
"""

from repro.backend.columnar import ColumnarPathOramBackend
from repro.backend.ops import Op
from repro.backend.path_oram import AccessReceipt, PathOramBackend, make_backend
from repro.backend.stash import ColumnarStash, Stash

__all__ = [
    "Op",
    "PathOramBackend",
    "ColumnarPathOramBackend",
    "AccessReceipt",
    "Stash",
    "ColumnarStash",
    "make_backend",
]
