"""Path ORAM Backend (§3.1): stash, path access, and eviction.

The Backend implements steps 2-5 of the Path ORAM access algorithm — read
a path, pull real blocks into the stash, return/update the block of
interest, evict greedily back to the same path. It supports the four
operation flavours the Frontend needs: ``READ``, ``WRITE``, ``READRMV``
(read-remove) and ``APPEND`` (§4.2.2).

All Frontend schemes in this library (Recursive baseline, PLB, compressed
PosMap, PMMAC) drive this same Backend unchanged, which is the paper's
central modularity claim.
"""

from repro.backend.ops import Op
from repro.backend.path_oram import AccessReceipt, PathOramBackend
from repro.backend.stash import Stash

__all__ = ["Op", "PathOramBackend", "AccessReceipt", "Stash"]
