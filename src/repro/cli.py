"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro list
    python -m repro fig6
    python -m repro table2 fig3 hashbw
    python -m repro --workers 8 fig6 fig7
    python -m repro --no-trace-cache fig6
    python -m repro --force fig6
    python -m repro --storage array bench
    python -m repro sweep --scheme PIC_X32 --grid plb=4KiB,8KiB,16KiB
    REPRO_FULL=1 python -m repro all

``--workers N`` fans each experiment's (scheme, benchmark) matrix out
over N processes (equivalent to ``REPRO_WORKERS=N``); results are bitwise
identical to serial runs. ``--trace-cache DIR`` / ``--no-trace-cache``
control the on-disk miss-trace cache (``REPRO_TRACE_CACHE``), and
``--result-cache DIR`` / ``--no-result-cache`` the on-disk replay-result
cache (``REPRO_RESULT_CACHE``) that makes repeated runs incremental.
``--force`` (``REPRO_FORCE=1``) recomputes every cell, refreshing — not
disabling — both caches. ``--storage array|columnar`` selects the
array-backed or columnar tree storage (``REPRO_STORAGE``).
``--replay scalar`` swaps the batched replay pipeline for the historical
per-event loop, and ``--replay compiled`` selects the optional C core
(``python setup.py build_ext --inplace`` builds it; unbuilt it falls
back to batched with a warning) — all via ``REPRO_REPLAY``;
bit-identical, performance-only.
``bench`` is the replay-throughput microbenchmark; it compares the
object, array and columnar storage backends end-to-end, the batched
replay kernel against the scalar escape hatch, *and* a raw Path ORAM
backend micro-loop, writing everything to one ``BENCH_replay.json`` (CI
uploads the file and fails if columnar regresses below the object
baseline or batched replay falls below scalar). It runs only when named
explicitly.

The ``sweep`` subcommand expands a parameter grid over scheme specs
(``--scheme`` accepts registry names or spec strings like
``"PIC_X32:plb=32KiB"``; ``--grid field=v1,v2`` adds an axis — spec
fields, the benchmark parameters ``misses``/``wss``, or the serving
scenario ``tenants``/``shards``), prints the slowdown table, and writes
a JSON report (``--out``, default ``SWEEP.json``). ``--saved
fig5|fig7|fig8`` runs the corresponding saved figure sweep from
:mod:`repro.eval.sweeps` (fig8 on [26]'s platform runner) and defaults
the report to ``SWEEP_<figure>.json``; an unknown name lists the
available sweeps. Global flags go *before* the subcommand; everything
after it belongs to the subcommand.

The ``serve`` subcommand runs the multi-tenant serving layer
(:mod:`repro.serve`): N simulated tenant clients round-robined over a
``--bench`` roster, multiplexed onto M ORAM shards with bounded
admission queues, printing per-tenant/per-shard stats and writing the
full JSON report (``--out``, default ``SERVE.json``). ``--demo`` is the
small fixed-seed smoke scenario CI runs and archives.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError, SweepInterrupted
from repro.faults import FAULTS_ENV, install_from_env
from repro.eval import (
    ablation_plb,
    bench,
    compression,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    hashbw,
    table2,
    table3,
)
from repro.sim.replay import REPLAY_ENV, REPLAY_MODES
from repro.sim.result_cache import RESULT_CACHE_ENV
from repro.sim.trace_cache import CACHE_ENV
from repro.sim.runner import FORCE_ENV, WORKERS_ENV
from repro.storage.array_tree import STORAGE_ENV

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig3": fig3.main,
    "table2": table2.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "table3": table3.main,
    "hashbw": hashbw.main,
    "compression": compression.main,
    "ablation-plb": ablation_plb.main,
    "bench": bench.main,
}

#: Cheap, purely analytic experiments run first under ``all``.
_ORDER = (
    "fig3", "table2", "table3", "compression", "hashbw",
    "fig6", "fig5", "fig7", "fig8", "fig9", "ablation-plb",
)

#: Default JSON report path for the ``sweep`` subcommand.
DEFAULT_SWEEP_OUT = "SWEEP.json"

#: Default JSON report path for the ``serve`` subcommand.
DEFAULT_SERVE_OUT = "SERVE.json"

#: Subcommands with their own flag namespace after the name.
_SUBCOMMANDS = ("sweep", "serve", "fabric")

#: Global flags that consume a separate value token (``--flag VALUE``).
_VALUE_FLAGS = (
    "--workers", "--trace-cache", "--result-cache", "--storage", "--replay",
    "--faults",
)


def _find_subcommand(raw: List[str]) -> Optional[int]:
    """Index of a *positional* leading subcommand token, else None.

    Flag values are skipped, so a cache directory literally named
    ``sweep`` (``--trace-cache sweep fig6``) is never mistaken for the
    subcommand; a subcommand after another experiment name falls through
    to the normal unknown-experiment error.
    """
    skip_value = False
    for index, token in enumerate(raw):
        if skip_value:
            skip_value = False
            continue
        if token in _VALUE_FLAGS:
            skip_value = True
            continue
        if token.startswith("--"):
            continue
        return index if token in _SUBCOMMANDS else None
    return None


def _usage_error(message: str) -> int:
    print(message, file=sys.stderr)
    print(
        f"choose from: {', '.join(_ORDER)}, 'bench', 'sweep', 'serve' or 'all'",
        file=sys.stderr,
    )
    return 2


def _parse_flags(args: List[str]) -> Optional[List[str]]:
    """Consume option flags, applying them via the environment.

    Returns the remaining positional arguments, or None after printing an
    error (exit code 2). Flags map onto the same environment variables the
    library reads, so every ``run_suite`` call downstream inherits them.
    """
    positional: List[str] = []
    it = iter(args)
    for arg in it:
        value: Optional[str] = None
        if arg == "--workers" or arg.startswith("--workers="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                print("--workers requires a positive integer", file=sys.stderr)
                return None
            os.environ[WORKERS_ENV] = value
        elif arg == "--no-trace-cache":
            os.environ[CACHE_ENV] = "off"
        elif arg == "--trace-cache" or arg.startswith("--trace-cache="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--trace-cache requires a directory path", file=sys.stderr)
                return None
            os.environ[CACHE_ENV] = value
        elif arg == "--no-result-cache":
            os.environ[RESULT_CACHE_ENV] = "off"
        elif arg == "--result-cache" or arg.startswith("--result-cache="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--result-cache requires a directory path", file=sys.stderr)
                return None
            os.environ[RESULT_CACHE_ENV] = value
        elif arg == "--force":
            os.environ[FORCE_ENV] = "1"
        elif arg == "--storage" or arg.startswith("--storage="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in ("object", "array", "columnar"):
                print(
                    "--storage requires 'object', 'array' or 'columnar'",
                    file=sys.stderr,
                )
                return None
            os.environ[STORAGE_ENV] = value
        elif arg == "--replay" or arg.startswith("--replay="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in REPLAY_MODES:
                print(
                    "--replay requires 'batched', 'scalar' or 'compiled'",
                    file=sys.stderr,
                )
                return None
            os.environ[REPLAY_ENV] = value
        elif arg == "--faults" or arg.startswith("--faults="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print(
                    "--faults requires a fault plan "
                    "(e.g. 'cell.crash@PC_X32*/gob/1#1')",
                    file=sys.stderr,
                )
                return None
            os.environ[FAULTS_ENV] = value
            try:
                # Install now: imports happened before flag parsing, so the
                # env hook alone would only reach pool workers.
                install_from_env()
            except ReproError as exc:
                print(f"--faults: {exc}", file=sys.stderr)
                return None
        elif arg.startswith("--"):
            print(f"unknown option {arg}", file=sys.stderr)
            return None
        else:
            positional.append(arg)
    return positional


def _sweep_main(args: List[str]) -> int:
    """The ``sweep`` subcommand: grid x schemes x benchmarks -> table+JSON."""
    from pathlib import Path

    from repro.eval.sweeps import fig8_runner, saved_sweep
    from repro.sim.checkpoint import default_checkpoint_path
    from repro.sim.runner import SimulationRunner
    from repro.sim.sweep import SweepSpec, run_sweep, sweep_table

    schemes: List[str] = []
    benches: List[str] = []
    grid: List[str] = []
    out: Optional[str] = None
    misses: Optional[int] = None
    saved: Optional[str] = None
    checkpoint: Optional[str] = None
    resume = False
    fabric: Optional[int] = None
    connect: Optional[str] = None
    it = iter(args)
    for arg in it:
        value: Optional[str] = None
        if arg == "--saved" or arg.startswith("--saved="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--saved requires a figure sweep name", file=sys.stderr)
                return 2
            saved = value
        elif arg == "--scheme" or arg.startswith("--scheme="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--scheme requires a name or spec string", file=sys.stderr)
                return 2
            schemes.append(value)
        elif arg == "--bench" or arg.startswith("--bench="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--bench requires a benchmark name", file=sys.stderr)
                return 2
            benches.append(value)
        elif arg == "--grid" or arg.startswith("--grid="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--grid requires field=v1,v2,...", file=sys.stderr)
                return 2
            grid.append(value)
        elif arg == "--out" or arg.startswith("--out="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--out requires a file path", file=sys.stderr)
                return 2
            out = value
        elif arg == "--misses" or arg.startswith("--misses="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                print("--misses requires a positive integer", file=sys.stderr)
                return 2
            misses = int(value)
        elif arg == "--checkpoint" or arg.startswith("--checkpoint="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--checkpoint requires a file path", file=sys.stderr)
                return 2
            checkpoint = value
        elif arg == "--resume":
            resume = True
        elif arg == "--fabric" or arg.startswith("--fabric="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 0:
                print(
                    "--fabric requires a worker count (0 allowed with "
                    "--connect: attached workers only)",
                    file=sys.stderr,
                )
                return 2
            fabric = int(value)
        elif arg == "--connect" or arg.startswith("--connect="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--connect requires HOST:PORT", file=sys.stderr)
                return 2
            connect = value
        else:
            print(f"unknown sweep option {arg}", file=sys.stderr)
            return 2
    if fabric == 0 and connect is None:
        print(
            "--fabric 0 spawns no workers, so it needs --connect HOST:PORT "
            "for external workers to attach",
            file=sys.stderr,
        )
        return 2
    if saved is not None:
        if schemes or grid:
            print(
                "--saved names a complete figure sweep; it cannot be "
                "combined with --scheme or --grid",
                file=sys.stderr,
            )
            return 2
        if out is None:
            out = f"SWEEP_{saved}.json"
    elif not schemes:
        schemes = ["PIC_X32"]
    if out is None:
        out = DEFAULT_SWEEP_OUT
    # Every CLI sweep journals completed cells beside the report; a clean
    # finish with nothing quarantined removes the journal, an interrupt
    # or crash leaves it for ``--resume``.
    if checkpoint is None:
        checkpoint = str(default_checkpoint_path(out))
    try:
        if saved is not None:
            # Unknown names raise a ReproError listing every saved sweep.
            sweep = saved_sweep(saved)(benchmarks=benches if benches else None)
            # fig8 pins [26]'s platform (4 channels, 2.6 GHz, 128 B lines);
            # the other figure sweeps run on the paper's default runner.
            runner = (
                fig8_runner(misses)
                if saved == "fig8"
                else SimulationRunner(misses_per_benchmark=misses)
            )
        else:
            sweep = SweepSpec.from_args(
                schemes, grid, benches if benches else None
            )
            runner = SimulationRunner(misses_per_benchmark=misses)
        if fabric is not None or connect is not None:
            from repro.fabric import FabricCoordinator, FabricExecutor, parse_address

            host, port = (
                parse_address(connect) if connect else ("127.0.0.1", 0)
            )
            coordinator = FabricCoordinator(
                runner, spawn=fabric or 0, host=host, port=port
            )
            bound = coordinator.start()
            print(
                f"fabric: coordinator on {bound[0]}:{bound[1]}, "
                f"spawned {fabric or 0} worker(s)"
                + (" (accepting attached workers)" if connect else "")
            )
            try:
                report = run_sweep(
                    sweep,
                    runner,
                    checkpoint=checkpoint,
                    resume=resume,
                    executor=FabricExecutor(coordinator),
                )
            finally:
                coordinator.close()
        else:
            report = run_sweep(
                sweep, runner, checkpoint=checkpoint, resume=resume
            )
    except SweepInterrupted as exc:
        if exc.report is not None:
            with open(out, "w", encoding="utf-8") as fh:
                json.dump(exc.report, fh, indent=2, sort_keys=True)
            print(f"\nsweep interrupted; wrote partial report to {out}", file=sys.stderr)
        print(
            f"completed cells are journaled in {checkpoint}; "
            f"re-run the same sweep with --resume to finish it",
            file=sys.stderr,
        )
        return 130
    except ReproError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    print(sweep_table(report))
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    resilience = report.get("resilience", {})
    if resilience.get("quarantined"):
        print(
            f"{len(resilience['quarantined'])} cell(s) quarantined after "
            f"repeated failures (see report['resilience']); journal kept "
            f"at {checkpoint} for --resume",
            file=sys.stderr,
        )
    else:
        Path(checkpoint).unlink(missing_ok=True)
    return 0


#: ``serve --demo`` presets: a small, fixed-seed 4-tenant / 2-shard
#: scenario (mixed workloads including an interleaved ``"a+b"`` entry)
#: that finishes in seconds — the CI smoke scenario.
_SERVE_DEMO = dict(
    tenants=4,
    shards=2,
    requests=400,
    misses=600,
    benches=["hmmer", "gob", "hmmer+gob", "h264"],
)


def _serve_main(args: List[str]) -> int:
    """The ``serve`` subcommand: N tenants on M shards -> stats + JSON."""
    from repro.serve import (
        ADMISSION_ORDERS,
        OramService,
        POLICIES,
        ServeConfig,
        tenants_for,
    )
    from repro.sim.runner import SimulationRunner

    values: Dict[str, Optional[int]] = {
        "tenants": None, "shards": None, "requests": None, "burst": None,
        "max-batch": None, "queue-cap": None, "seed": None, "misses": None,
        "deadline": None, "quota": None, "throttle-epochs": None,
        "degrade-after": None, "recover-after": None,
    }
    scheme = "PC_X32"
    benches: List[str] = []
    policy: Optional[str] = None
    admission: Optional[str] = None
    mode = "serial"
    out: Optional[str] = None
    demo = False
    it = iter(args)
    for arg in it:
        value: Optional[str] = None
        name = arg[2:].split("=", 1)[0] if arg.startswith("--") else ""
        if name in values:
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                print(f"--{name} requires a positive integer", file=sys.stderr)
                return 2
            values[name] = int(value)
        elif arg == "--demo":
            demo = True
        elif arg == "--scheme" or arg.startswith("--scheme="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--scheme requires a name or spec string", file=sys.stderr)
                return 2
            scheme = value
        elif arg == "--bench" or arg.startswith("--bench="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--bench requires a benchmark name", file=sys.stderr)
                return 2
            benches.append(value)
        elif arg == "--policy" or arg.startswith("--policy="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in POLICIES:
                print(
                    f"--policy requires one of: {', '.join(POLICIES)}",
                    file=sys.stderr,
                )
                return 2
            policy = value
        elif arg == "--admission" or arg.startswith("--admission="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in ADMISSION_ORDERS:
                print(
                    f"--admission requires one of: {', '.join(ADMISSION_ORDERS)}",
                    file=sys.stderr,
                )
                return 2
            admission = value
        elif arg == "--mode" or arg.startswith("--mode="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in ("serial", "async"):
                print("--mode requires 'serial' or 'async'", file=sys.stderr)
                return 2
            mode = value
        elif arg == "--out" or arg.startswith("--out="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--out requires a file path", file=sys.stderr)
                return 2
            out = value
        else:
            print(f"unknown serve option {arg}", file=sys.stderr)
            return 2
    if demo:
        # Presets fill anything not given explicitly; the seed stays at
        # the runner default, so demo artifacts are reproducible.
        for key in ("tenants", "shards", "requests", "misses"):
            if values[key] is None:
                values[key] = _SERVE_DEMO[key]  # type: ignore[assignment]
        if not benches:
            benches = list(_SERVE_DEMO["benches"])  # type: ignore[arg-type]
    if not benches:
        benches = ["hmmer", "gob"]
    try:
        runner = SimulationRunner(
            misses_per_benchmark=values["misses"],
            **({"seed": values["seed"]} if values["seed"] is not None else {}),
        )
        config = ServeConfig(
            scheme=scheme,
            shards=values["shards"] if values["shards"] is not None else 1,
            burst=values["burst"] if values["burst"] is not None else 4,
            max_batch=(
                values["max-batch"] if values["max-batch"] is not None else 32
            ),
            queue_capacity=(
                values["queue-cap"] if values["queue-cap"] is not None else 64
            ),
            policy=policy if policy is not None else "defer",
            admission=admission if admission is not None else "edf",
            throttle_epochs=(
                values["throttle-epochs"]
                if values["throttle-epochs"] is not None
                else 1
            ),
            degrade_after=values["degrade-after"],
            recover_after=values["recover-after"],
        )
        service = OramService(
            tenants_for(
                benches,
                values["tenants"] if values["tenants"] is not None else 2,
                requests=values["requests"],
                deadline_cycles=(
                    float(values["deadline"])
                    if values["deadline"] is not None
                    else None
                ),
                quota=(
                    float(values["quota"]) if values["quota"] is not None else None
                ),
            ),
            runner=runner,
            config=config,
        )
        service.run(mode=mode)
    except ReproError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:  # unknown benchmark names in --bench
        print(f"serve error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    report = service.report()
    totals = report["totals"]
    print(
        f"serve: scheme {report['scheme']}, "
        f"{len(report['tenants'])} tenant(s) on {len(report['shards'])} "
        f"shard(s), policy {config.policy}, mode {mode}"
    )
    for tenant in report["tenants"]:
        print(
            f"  {tenant['name']:<16} completed {tenant['completed']:>6}"
            f"  shed {tenant['shed']:>4}"
            f"  cycles {tenant['cycles']:>14.1f}"
            f"  p95<={tenant['latency_cycles']['p95_bound']:.0f}cyc"
        )
    for shard in report["shards"]:
        depth = shard["queue_depth"]
        print(
            f"  shard {shard['shard']}: requests {shard['requests']}"
            f"  batches {shard['batches']}"
            f"  mean depth {depth['mean']:.1f} (max {depth['max']})"
            f"  shed {shard['shed']}  deferred {shard['deferred']}"
        )
    print(
        f"  totals: {totals['requests']} requests in {report['epochs']} "
        f"epochs, {totals['cycles'] / 1e6:.2f} Mcycles"
    )
    res = report["resilience"]
    print(
        f"  resilience: missed {res['deadline_missed']}"
        f"  throttled {res['throttled']}  shed {res['shed']}"
        f"  deferred {res['deferred']}"
        f"  degradation {res['degradation']['level']}"
        f" ({len(res['degradation']['transitions'])} transition(s))"
    )
    if out is None:
        out = DEFAULT_SERVE_OUT
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    return 0


def _fabric_main(args: List[str]) -> int:
    """The ``fabric`` subcommand: worker-side entry points.

    ``fabric serve-worker --connect HOST:PORT`` dials a sweep
    coordinator (``python -m repro sweep --fabric N`` binds one; add
    ``--connect`` there to listen on a fixed address) and executes
    leased cells until the coordinator shuts it down.
    """
    from repro.fabric import serve_worker

    if not args or args[0] != "serve-worker":
        print(
            "usage: python -m repro fabric serve-worker --connect HOST:PORT "
            "[--timeout SECS]",
            file=sys.stderr,
        )
        return 2
    connect: Optional[str] = None
    timeout = 10.0
    it = iter(args[1:])
    for arg in it:
        value: Optional[str] = None
        if arg == "--connect" or arg.startswith("--connect="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--connect requires HOST:PORT", file=sys.stderr)
                return 2
            connect = value
        elif arg == "--timeout" or arg.startswith("--timeout="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            try:
                timeout = float(value) if value else -1.0
            except ValueError:
                timeout = -1.0
            if timeout <= 0:
                print("--timeout requires a positive number", file=sys.stderr)
                return 2
        else:
            print(f"unknown fabric option {arg}", file=sys.stderr)
            return 2
    if connect is None:
        print("fabric serve-worker requires --connect HOST:PORT", file=sys.stderr)
        return 2
    try:
        return serve_worker(connect, connect_timeout=timeout)
    except ReproError as exc:
        print(f"fabric error: {exc}", file=sys.stderr)
        return 2


_SUBCOMMAND_MAINS = {"sweep": _sweep_main, "serve": _serve_main, "fabric": _fabric_main}


def main(argv=None) -> int:
    """Dispatch experiment names; returns a process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    split = _find_subcommand(raw)
    if split is not None:
        if _parse_flags(raw[:split]) is None:
            return 2
        return _SUBCOMMAND_MAINS[raw[split]](raw[split + 1 :])
    args = _parse_flags(raw)
    if args is None:
        return 2
    if not args or args == ["list"]:
        print("Available experiments (python -m repro [options] <name> [...]):")
        for name in _ORDER:
            doc = EXPERIMENTS[name].__module__.rsplit(".", 1)[-1]
            print(f"  {name:<13} repro.eval.{doc}")
        print("  all           run everything in order")
        print("  bench         replay-throughput microbenchmark (BENCH_replay.json)")
        print("  sweep         parameter-grid sweep over scheme specs (SWEEP.json)")
        print("  serve         multi-tenant ORAM serving scenario (SERVE.json)")
        print("  fabric        distributed-sweep worker endpoints")
        print("Options:")
        print("  --workers N         parallel (scheme, benchmark) fan-out")
        print("  --trace-cache DIR   miss-trace cache location")
        print("  --no-trace-cache    disable the on-disk trace cache")
        print("  --result-cache DIR  replay-result cache location")
        print("  --no-result-cache   disable the on-disk result cache")
        print("  --force             recompute (and refresh) every cached cell")
        print("  --storage KIND      tree storage backend: object | array | columnar")
        print("  --replay MODE       replay kernel: batched (default) | scalar")
        print("                      | compiled (optional C core; falls back to")
        print("                      batched with a warning when unbuilt)")
        print("  --faults PLAN       deterministic fault-injection plan (testing;")
        print("                      e.g. 'cell.crash@*/1#1;sweep.interrupt@*#4')")
        print("Sweep options (after 'sweep'):")
        print("  --scheme NAME|SPEC  base scheme (repeatable; spec strings ok)")
        print("  --grid F=V1,V2      grid axis over a spec field, the benchmark")
        print("                      parameters 'misses' / 'wss', or the serving")
        print("                      scenario 'tenants' / 'shards'")
        print("  --saved FIGURE      run a saved figure sweep: fig5 | fig7 | fig8")
        print("  --bench NAME        benchmark subset (repeatable)")
        print("  --misses N          per-benchmark LLC miss budget")
        print(f"  --out FILE          JSON report path (default {DEFAULT_SWEEP_OUT})")
        print("  --checkpoint FILE   cell journal path (default <out>.ckpt.jsonl)")
        print("  --resume            recompute only cells missing from the journal")
        print("  --fabric N          distribute cells over N spawned fabric workers")
        print("  --connect HOST:PORT bind the fabric coordinator there so external")
        print("                      'fabric serve-worker' processes can attach")
        print("Fabric options (after 'fabric'):")
        print("  serve-worker --connect HOST:PORT [--timeout SECS]")
        print("                      run one worker against a sweep coordinator")
        print("                      (REPRO_CONNECT_RETRIES bounds each dial loop;")
        print("                      REPRO_RPC_TIMEOUT bounds individual RPC calls)")
        print("Serve options (after 'serve'):")
        print("  --tenants N         simulated tenant clients (round-robin roster)")
        print("  --shards M          ORAM instances in the pool")
        print("  --scheme NAME|SPEC  ORAM scheme for every shard")
        print("  --bench NAME        tenant workload roster entry (repeatable;")
        print("                      interleaved 'a+b' mixes allowed)")
        print("  --requests N        per-tenant request cap")
        print("  --burst/--max-batch/--queue-cap N   admission & batching knobs")
        print("  --policy defer|shed|throttle   backpressure at a full shard queue")
        print("  --admission edf|fifo admission order (edf == fifo with no deadlines)")
        print("  --deadline N        per-request SLO deadline in simulated cycles")
        print("  --quota N           per-tenant token-bucket quota (requests/epoch)")
        print("  --throttle-epochs N cooldown epochs charged by the throttle policy")
        print("  --degrade-after N / --recover-after N   graceful-degradation")
        print("                      thresholds in consecutive (clean) epochs")
        print("  --mode serial|async epoch driver (identical simulated results)")
        print("  --seed N / --misses N   runner seed and trace miss budget")
        print("  --demo              small fixed scenario (the CI smoke artifact)")
        print(f"  --out FILE          JSON report path (default {DEFAULT_SERVE_OUT})")
        return 0
    if args == ["all"]:
        args = list(_ORDER)
    unknown = [a for a in args if a not in EXPERIMENTS]
    if unknown:
        return _usage_error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in args:
        print(f"==== {name} " + "=" * max(60 - len(name), 0))
        EXPERIMENTS[name]()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
