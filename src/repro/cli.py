"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro list
    python -m repro fig6
    python -m repro table2 fig3 hashbw
    REPRO_FULL=1 python -m repro all
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from repro.eval import (
    ablation_plb,
    compression,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    hashbw,
    table2,
    table3,
)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig3": fig3.main,
    "table2": table2.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "table3": table3.main,
    "hashbw": hashbw.main,
    "compression": compression.main,
    "ablation-plb": ablation_plb.main,
}

#: Cheap, purely analytic experiments run first under ``all``.
_ORDER = (
    "fig3", "table2", "table3", "compression", "hashbw",
    "fig6", "fig5", "fig7", "fig8", "fig9", "ablation-plb",
)


def main(argv=None) -> int:
    """Dispatch experiment names; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args == ["list"]:
        print("Available experiments (python -m repro <name> [...]):")
        for name in _ORDER:
            doc = EXPERIMENTS[name].__module__.rsplit(".", 1)[-1]
            print(f"  {name:<13} repro.eval.{doc}")
        print("  all           run everything in order")
        return 0
    if args == ["all"]:
        args = list(_ORDER)
    unknown = [a for a in args if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(_ORDER)} or 'all'", file=sys.stderr)
        return 2
    for name in args:
        print(f"==== {name} " + "=" * max(60 - len(name), 0))
        EXPERIMENTS[name]()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
