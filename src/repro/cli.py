"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro list
    python -m repro fig6
    python -m repro table2 fig3 hashbw
    python -m repro --workers 8 fig6 fig7
    python -m repro --no-trace-cache fig6
    python -m repro --force fig6
    python -m repro --storage array bench
    python -m repro sweep --scheme PIC_X32 --grid plb=4KiB,8KiB,16KiB
    REPRO_FULL=1 python -m repro all

``--workers N`` fans each experiment's (scheme, benchmark) matrix out
over N processes (equivalent to ``REPRO_WORKERS=N``); results are bitwise
identical to serial runs. ``--trace-cache DIR`` / ``--no-trace-cache``
control the on-disk miss-trace cache (``REPRO_TRACE_CACHE``), and
``--result-cache DIR`` / ``--no-result-cache`` the on-disk replay-result
cache (``REPRO_RESULT_CACHE``) that makes repeated runs incremental.
``--force`` (``REPRO_FORCE=1``) recomputes every cell, refreshing — not
disabling — both caches. ``--storage array|columnar`` selects the
array-backed or columnar tree storage (``REPRO_STORAGE``).
``--replay scalar`` swaps the batched replay pipeline for the historical
per-event loop (``REPRO_REPLAY``; bit-identical, performance-only).
``bench`` is the replay-throughput microbenchmark; it compares the
object, array and columnar storage backends end-to-end, the batched
replay kernel against the scalar escape hatch, *and* a raw Path ORAM
backend micro-loop, writing everything to one ``BENCH_replay.json`` (CI
uploads the file and fails if columnar regresses below the object
baseline or batched replay falls below scalar). It runs only when named
explicitly.

The ``sweep`` subcommand expands a parameter grid over scheme specs
(``--scheme`` accepts registry names or spec strings like
``"PIC_X32:plb=32KiB"``; ``--grid field=v1,v2`` adds an axis — spec
fields, or the benchmark parameters ``misses``/``wss``), prints the
slowdown table, and writes a JSON report (``--out``, default
``SWEEP.json``). ``--saved fig5|fig7|fig8`` runs the corresponding saved
figure sweep from :mod:`repro.eval.sweeps` (fig8 on [26]'s platform
runner) and defaults the report to ``SWEEP_<figure>.json``. Global flags
go *before* ``sweep``; everything after it belongs to the subcommand.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.eval import (
    ablation_plb,
    bench,
    compression,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    hashbw,
    table2,
    table3,
)
from repro.sim.replay import REPLAY_ENV, REPLAY_MODES
from repro.sim.result_cache import RESULT_CACHE_ENV
from repro.sim.trace_cache import CACHE_ENV
from repro.sim.runner import FORCE_ENV, WORKERS_ENV
from repro.storage.array_tree import STORAGE_ENV

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig3": fig3.main,
    "table2": table2.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "table3": table3.main,
    "hashbw": hashbw.main,
    "compression": compression.main,
    "ablation-plb": ablation_plb.main,
    "bench": bench.main,
}

#: Cheap, purely analytic experiments run first under ``all``.
_ORDER = (
    "fig3", "table2", "table3", "compression", "hashbw",
    "fig6", "fig5", "fig7", "fig8", "fig9", "ablation-plb",
)

#: Default JSON report path for the ``sweep`` subcommand.
DEFAULT_SWEEP_OUT = "SWEEP.json"

#: Global flags that consume a separate value token (``--flag VALUE``).
_VALUE_FLAGS = (
    "--workers", "--trace-cache", "--result-cache", "--storage", "--replay",
)


def _find_sweep(raw: List[str]) -> Optional[int]:
    """Index of a *positional* leading ``sweep`` token, else None.

    Flag values are skipped, so a cache directory literally named
    ``sweep`` (``--trace-cache sweep fig6``) is never mistaken for the
    subcommand; a ``sweep`` after another experiment name falls through
    to the normal unknown-experiment error.
    """
    skip_value = False
    for index, token in enumerate(raw):
        if skip_value:
            skip_value = False
            continue
        if token in _VALUE_FLAGS:
            skip_value = True
            continue
        if token.startswith("--"):
            continue
        return index if token == "sweep" else None
    return None


def _usage_error(message: str) -> int:
    print(message, file=sys.stderr)
    print(
        f"choose from: {', '.join(_ORDER)}, 'bench', 'sweep' or 'all'",
        file=sys.stderr,
    )
    return 2


def _parse_flags(args: List[str]) -> Optional[List[str]]:
    """Consume option flags, applying them via the environment.

    Returns the remaining positional arguments, or None after printing an
    error (exit code 2). Flags map onto the same environment variables the
    library reads, so every ``run_suite`` call downstream inherits them.
    """
    positional: List[str] = []
    it = iter(args)
    for arg in it:
        value: Optional[str] = None
        if arg == "--workers" or arg.startswith("--workers="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                print("--workers requires a positive integer", file=sys.stderr)
                return None
            os.environ[WORKERS_ENV] = value
        elif arg == "--no-trace-cache":
            os.environ[CACHE_ENV] = "off"
        elif arg == "--trace-cache" or arg.startswith("--trace-cache="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--trace-cache requires a directory path", file=sys.stderr)
                return None
            os.environ[CACHE_ENV] = value
        elif arg == "--no-result-cache":
            os.environ[RESULT_CACHE_ENV] = "off"
        elif arg == "--result-cache" or arg.startswith("--result-cache="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--result-cache requires a directory path", file=sys.stderr)
                return None
            os.environ[RESULT_CACHE_ENV] = value
        elif arg == "--force":
            os.environ[FORCE_ENV] = "1"
        elif arg == "--storage" or arg.startswith("--storage="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in ("object", "array", "columnar"):
                print(
                    "--storage requires 'object', 'array' or 'columnar'",
                    file=sys.stderr,
                )
                return None
            os.environ[STORAGE_ENV] = value
        elif arg == "--replay" or arg.startswith("--replay="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in REPLAY_MODES:
                print(
                    "--replay requires 'batched' or 'scalar'",
                    file=sys.stderr,
                )
                return None
            os.environ[REPLAY_ENV] = value
        elif arg.startswith("--"):
            print(f"unknown option {arg}", file=sys.stderr)
            return None
        else:
            positional.append(arg)
    return positional


def _sweep_main(args: List[str]) -> int:
    """The ``sweep`` subcommand: grid x schemes x benchmarks -> table+JSON."""
    from repro.eval.sweeps import SAVED_SWEEPS, fig8_runner, saved_sweep_names
    from repro.sim.runner import SimulationRunner
    from repro.sim.sweep import SweepSpec, run_sweep, sweep_table

    schemes: List[str] = []
    benches: List[str] = []
    grid: List[str] = []
    out: Optional[str] = None
    misses: Optional[int] = None
    saved: Optional[str] = None
    it = iter(args)
    for arg in it:
        value: Optional[str] = None
        if arg == "--saved" or arg.startswith("--saved="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value not in SAVED_SWEEPS:
                print(
                    f"--saved requires one of: {', '.join(saved_sweep_names())}",
                    file=sys.stderr,
                )
                return 2
            saved = value
        elif arg == "--scheme" or arg.startswith("--scheme="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--scheme requires a name or spec string", file=sys.stderr)
                return 2
            schemes.append(value)
        elif arg == "--bench" or arg.startswith("--bench="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--bench requires a benchmark name", file=sys.stderr)
                return 2
            benches.append(value)
        elif arg == "--grid" or arg.startswith("--grid="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--grid requires field=v1,v2,...", file=sys.stderr)
                return 2
            grid.append(value)
        elif arg == "--out" or arg.startswith("--out="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not value:
                print("--out requires a file path", file=sys.stderr)
                return 2
            out = value
        elif arg == "--misses" or arg.startswith("--misses="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None or not value.isdigit() or int(value) < 1:
                print("--misses requires a positive integer", file=sys.stderr)
                return 2
            misses = int(value)
        else:
            print(f"unknown sweep option {arg}", file=sys.stderr)
            return 2
    if saved is not None:
        if schemes or grid:
            print(
                "--saved names a complete figure sweep; it cannot be "
                "combined with --scheme or --grid",
                file=sys.stderr,
            )
            return 2
        if out is None:
            out = f"SWEEP_{saved}.json"
    elif not schemes:
        schemes = ["PIC_X32"]
    if out is None:
        out = DEFAULT_SWEEP_OUT
    try:
        if saved is not None:
            sweep = SAVED_SWEEPS[saved](benchmarks=benches if benches else None)
            # fig8 pins [26]'s platform (4 channels, 2.6 GHz, 128 B lines);
            # the other figure sweeps run on the paper's default runner.
            runner = (
                fig8_runner(misses)
                if saved == "fig8"
                else SimulationRunner(misses_per_benchmark=misses)
            )
        else:
            sweep = SweepSpec.from_args(
                schemes, grid, benches if benches else None
            )
            runner = SimulationRunner(misses_per_benchmark=misses)
        report = run_sweep(sweep, runner)
    except ReproError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    print(sweep_table(report))
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    """Dispatch experiment names; returns a process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    split = _find_sweep(raw)
    if split is not None:
        if _parse_flags(raw[:split]) is None:
            return 2
        return _sweep_main(raw[split + 1 :])
    args = _parse_flags(raw)
    if args is None:
        return 2
    if not args or args == ["list"]:
        print("Available experiments (python -m repro [options] <name> [...]):")
        for name in _ORDER:
            doc = EXPERIMENTS[name].__module__.rsplit(".", 1)[-1]
            print(f"  {name:<13} repro.eval.{doc}")
        print("  all           run everything in order")
        print("  bench         replay-throughput microbenchmark (BENCH_replay.json)")
        print("  sweep         parameter-grid sweep over scheme specs (SWEEP.json)")
        print("Options:")
        print("  --workers N         parallel (scheme, benchmark) fan-out")
        print("  --trace-cache DIR   miss-trace cache location")
        print("  --no-trace-cache    disable the on-disk trace cache")
        print("  --result-cache DIR  replay-result cache location")
        print("  --no-result-cache   disable the on-disk result cache")
        print("  --force             recompute (and refresh) every cached cell")
        print("  --storage KIND      tree storage backend: object | array | columnar")
        print("  --replay MODE       replay kernel: batched (default) | scalar")
        print("Sweep options (after 'sweep'):")
        print("  --scheme NAME|SPEC  base scheme (repeatable; spec strings ok)")
        print("  --grid F=V1,V2      grid axis over a spec field, or over the")
        print("                      benchmark parameters 'misses' / 'wss'")
        print("  --saved FIGURE      run a saved figure sweep: fig5 | fig7 | fig8")
        print("  --bench NAME        benchmark subset (repeatable)")
        print("  --misses N          per-benchmark LLC miss budget")
        print(f"  --out FILE          JSON report path (default {DEFAULT_SWEEP_OUT})")
        return 0
    if args == ["all"]:
        args = list(_ORDER)
    unknown = [a for a in args if a not in EXPERIMENTS]
    if unknown:
        return _usage_error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in args:
        print(f"==== {name} " + "=" * max(60 - len(name), 0))
        EXPERIMENTS[name]()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
