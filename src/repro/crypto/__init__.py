"""Cryptographic substrate: AES-128, PRF, MAC, one-time-pad encryption.

The paper's hardware uses an AES-128 core for the PRF and path encryption
and a SHA3-224 core for PMMAC. We provide:

- :class:`~repro.crypto.aes.AES128` — a from-scratch AES-128 block cipher
  (reference fidelity; validated against FIPS-197 vectors in tests).
- :class:`~repro.crypto.prf.Prf` — PRF_K(x) with AES-128 or a fast keyed
  BLAKE2b mode for large simulations.
- :class:`~repro.crypto.mac.Mac` — MAC_K(m) via SHA3-224 (as in the paper)
  or keyed BLAKE2b.
- :class:`~repro.crypto.pad.PadGenerator` — AES-CTR style one-time pads for
  bucket encryption, used to reproduce the §6.4 seed-replay attack and fix.
- :class:`~repro.crypto.suite.CryptoSuite` — bundles the above with key
  management; ``CryptoSuite.reference()`` and ``CryptoSuite.fast()``.
"""

from repro.crypto.aes import AES128
from repro.crypto.mac import Mac
from repro.crypto.pad import PadGenerator
from repro.crypto.prf import Prf
from repro.crypto.suite import CryptoSuite

__all__ = ["AES128", "Mac", "PadGenerator", "Prf", "CryptoSuite"]
