"""Pseudorandom function PRF_K(x), used for on-demand leaf generation.

The compressed PosMap (§5.2.1) and PMMAC (§6.2.1) derive the current leaf
of block ``a`` with count ``c`` as ``PRF_K(a || c) mod 2^L``. The paper
implements PRF_K with AES-128; we offer that plus a fast keyed-BLAKE2b
instantiation for large simulations (identical interface, still a PRF —
just a different primitive).
"""

from __future__ import annotations

import hashlib

from repro.crypto.aes import AES128


class Prf:
    """PRF keyed at construction; maps byte strings / ints to integers."""

    MODE_AES = "aes"
    MODE_FAST = "fast"

    def __init__(self, key: bytes, mode: str = MODE_FAST):
        if mode not in (self.MODE_AES, self.MODE_FAST):
            raise ValueError(f"unknown PRF mode {mode!r}")
        self.mode = mode
        self.key = key
        self.call_count = 0
        if mode == self.MODE_AES:
            if len(key) != 16:
                raise ValueError("AES PRF requires a 16-byte key")
            self._aes = AES128(key)

    def eval_bytes(self, data: bytes) -> bytes:
        """PRF output (16 bytes) for an arbitrary-length input."""
        self.call_count += 1
        if self.mode == self.MODE_FAST:
            return hashlib.blake2b(data, key=self.key, digest_size=16).digest()
        # AES-CBC-MAC style compression for inputs longer than one block:
        # pad to a block multiple with the length, then chain.
        padded = data + b"\x80"
        padded += b"\x00" * ((-len(padded) - 8) % 16)
        padded += len(data).to_bytes(8, "little")
        state = b"\x00" * 16
        for i in range(0, len(padded), 16):
            block = bytes(a ^ b for a, b in zip(state, padded[i : i + 16]))
            state = self._aes.encrypt_block(block)
        return state

    def eval_int(self, data: bytes, modulus_bits: int) -> int:
        """PRF output reduced to ``modulus_bits`` bits (``mod 2^L``)."""
        if modulus_bits <= 0:
            return 0
        digest = self.eval_bytes(data)
        return int.from_bytes(digest, "little") & ((1 << modulus_bits) - 1)

    def leaf_for(self, address: int, count: int, num_levels: int, subblock: int = 0) -> int:
        """Leaf label for (address, count) per §5.2.1 / §6.2.1.

        ``subblock`` carries the sub-block index k of §5.4 when a data block
        is split into PosMap-sized sub-blocks; it is 0 otherwise.
        """
        message = (
            address.to_bytes(8, "little")
            + count.to_bytes(12, "little")
            + subblock.to_bytes(4, "little")
        )
        return self.eval_int(message, num_levels)
