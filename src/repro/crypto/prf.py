"""Pseudorandom function PRF_K(x), used for on-demand leaf generation.

The compressed PosMap (§5.2.1) and PMMAC (§6.2.1) derive the current leaf
of block ``a`` with count ``c`` as ``PRF_K(a || c) mod 2^L``. The paper
implements PRF_K with AES-128; we offer that plus a fast keyed-BLAKE2b
instantiation for large simulations (identical interface, still a PRF —
just a different primitive).

``leaf_for`` is the replay engine's hot path: every counter-mode remap
derives both the old and the new leaf, and the old leaf of count ``c`` is
exactly the new leaf computed when the counter reached ``c`` — so a small
LRU over (address, count, levels, subblock) halves steady-state PRF work,
and group remaps (which re-derive whole sibling groups) hit it harder
still. ``call_count`` keeps counting *logical* PRF evaluations — cache
hits included — so hash-bandwidth accounting is unchanged; the separate
``cache_hits`` counter exposes the cache's effectiveness.

``leaf_for_many`` is the batched spelling: one call derives a whole run
of (address, count) leaves with the packing buffer, pre-keyed hash state
and LRU bookkeeping resolved once per batch instead of once per leaf —
bit-identical (leaves *and* counters) to the equivalent ``leaf_for``
sequence by construction.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Sequence

from repro.crypto.aes import AES128

#: Bound on the leaf-derivation LRU (entries, not bytes). One entry is a
#: small tuple-keyed int; 64k entries comfortably cover replay working sets.
LEAF_CACHE_LIMIT = 1 << 16

#: addr (8) || count (12, split low-8/high-4) || subblock (4), little-endian
#: — byte-identical to the three-way ``to_bytes`` concatenation.
_pack_leaf_message = struct.Struct("<QQII").pack_into
_U64 = (1 << 64) - 1


class Prf:
    """PRF keyed at construction; maps byte strings / ints to integers."""

    MODE_AES = "aes"
    MODE_FAST = "fast"

    def __init__(
        self,
        key: bytes,
        mode: str = MODE_FAST,
        leaf_cache_entries: int = LEAF_CACHE_LIMIT,
    ):
        if mode not in (self.MODE_AES, self.MODE_FAST):
            raise ValueError(f"unknown PRF mode {mode!r}")
        self.mode = mode
        self.key = key
        self.call_count = 0
        self.cache_hits = 0
        if mode == self.MODE_AES:
            if len(key) != 16:
                raise ValueError("AES PRF requires a 16-byte key")
            self._aes = AES128(key)
        else:
            # Pre-keyed hash state: copying it skips the key-block
            # compression that ``blake2b(data, key=...)`` pays per call,
            # with a byte-identical digest.
            self._keyed_state = hashlib.blake2b(key=key, digest_size=16)
        #: Reusable leaf-derivation message buffer (no per-call allocation).
        self._message = bytearray(24)
        self._leaf_cache: dict = {}
        self._leaf_cache_limit = max(int(leaf_cache_entries), 0)

    def eval_bytes(self, data: bytes) -> bytes:
        """PRF output (16 bytes) for an arbitrary-length input."""
        self.call_count += 1
        if self.mode == self.MODE_FAST:
            state = self._keyed_state.copy()
            state.update(data)
            return state.digest()
        # AES-CBC-MAC style compression for inputs longer than one block:
        # pad to a block multiple with the length, then chain.
        padded = data + b"\x80"
        padded += b"\x00" * ((-len(padded) - 8) % 16)
        padded += len(data).to_bytes(8, "little")
        state = b"\x00" * 16
        for i in range(0, len(padded), 16):
            block = bytes(a ^ b for a, b in zip(state, padded[i : i + 16]))
            state = self._aes.encrypt_block(block)
        return state

    def eval_int(self, data: bytes, modulus_bits: int) -> int:
        """PRF output reduced to ``modulus_bits`` bits (``mod 2^L``)."""
        if modulus_bits <= 0:
            return 0
        digest = self.eval_bytes(data)
        return int.from_bytes(digest, "little") & ((1 << modulus_bits) - 1)

    def leaf_for(
        self, address: int, count: int, num_levels: int, subblock: int = 0
    ) -> int:
        """Leaf label for (address, count) per §5.2.1 / §6.2.1.

        ``subblock`` carries the sub-block index k of §5.4 when a data block
        is split into PosMap-sized sub-blocks; it is 0 otherwise.
        """
        if num_levels <= 0:
            # Degenerate single-bucket tree: no PRF evaluation happens
            # (mirrors ``eval_int``'s early return, which skips the call
            # counter), so the cache is bypassed entirely.
            return 0
        key = (address, count, num_levels, subblock)
        cache = self._leaf_cache
        leaf = cache.get(key)
        if leaf is not None:
            # Logical PRF evaluation served from the cache: the bandwidth
            # model still counts it, the primitive is simply not re-run.
            self.call_count += 1
            self.cache_hits += 1
            cache[key] = cache.pop(key)  # LRU: refresh to the young end
            return leaf
        if self.mode == self.MODE_FAST:
            message = self._message
            _pack_leaf_message(
                message, 0, address, count & _U64, count >> 64, subblock
            )
            self.call_count += 1
            state = self._keyed_state.copy()
            state.update(message)
            leaf = int.from_bytes(state.digest(), "little") & (
                (1 << num_levels) - 1
            )
        else:
            leaf = self.eval_int(
                address.to_bytes(8, "little")
                + count.to_bytes(12, "little")
                + subblock.to_bytes(4, "little"),
                num_levels,
            )
        limit = self._leaf_cache_limit
        if limit:
            if len(cache) >= limit:
                del cache[next(iter(cache))]  # evict the oldest entry
            cache[key] = leaf
        return leaf

    def leaf_for_many(
        self,
        addresses: "Sequence[int]",
        counts: "Sequence[int]",
        num_levels: int,
        subblock: int = 0,
    ) -> "List[int]":
        """Batched :meth:`leaf_for`: one leaf per (address, count) pair.

        Semantically exactly the scalar call sequence
        ``[leaf_for(a, c, num_levels, subblock) for a, c in zip(...)]`` —
        same leaves, same ``call_count``/``cache_hits`` accounting, same
        LRU state evolution — but the buffer packing, pre-keyed BLAKE2b
        state lookup and cache bookkeeping are amortised over the batch
        (every per-item attribute resolution is hoisted out of the loop),
        and the LRU is fed in one pass.
        """
        if len(addresses) != len(counts):
            raise ValueError("leaf_for_many needs equal-length address/count batches")
        if num_levels <= 0:
            # Degenerate single-bucket tree: mirrors leaf_for (no PRF
            # evaluation, no counter movement, cache bypassed).
            return [0] * len(addresses)
        if self.mode != self.MODE_FAST:
            return [
                self.leaf_for(addr, count, num_levels, subblock)
                for addr, count in zip(addresses, counts)
            ]
        cache = self._leaf_cache
        cache_get = cache.get
        cache_pop = cache.pop
        limit = self._leaf_cache_limit
        message = self._message
        pack = _pack_leaf_message
        keyed_state = self._keyed_state
        mask = (1 << num_levels) - 1
        from_bytes = int.from_bytes
        calls = 0
        hits = 0
        out: List[int] = []
        append = out.append
        for address, count in zip(addresses, counts):
            key = (address, count, num_levels, subblock)
            leaf = cache_get(key)
            calls += 1
            if leaf is not None:
                hits += 1
                cache[key] = cache_pop(key)  # LRU: refresh to the young end
                append(leaf)
                continue
            pack(message, 0, address, count & _U64, count >> 64, subblock)
            state = keyed_state.copy()
            state.update(message)
            leaf = from_bytes(state.digest(), "little") & mask
            if limit:
                if len(cache) >= limit:
                    del cache[next(iter(cache))]  # evict the oldest entry
                cache[key] = leaf
            append(leaf)
        self.call_count += calls
        self.cache_hits += hits
        return out
