"""Key management and crypto-suite bundling.

A :class:`CryptoSuite` owns the session keys and exposes the three
primitives the ORAM controller needs: the leaf PRF, the PMMAC MAC, and the
pad generator for bucket encryption. The ``reference`` suite uses the
paper's primitives (AES-128, SHA3-224); the ``fast`` suite swaps in keyed
BLAKE2b so multi-million-access simulations stay tractable. Both satisfy
the same PRF/MAC contracts, so all functional and security tests pass under
either.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.mac import Mac
from repro.crypto.pad import PadGenerator
from repro.crypto.prf import Prf


def derive_key(master: bytes, label: str) -> bytes:
    """Derive a 16-byte subkey from a master secret and a domain label."""
    return hashlib.blake2b(label.encode(), key=master, digest_size=16).digest()


@dataclass
class CryptoSuite:
    """Bundle of session-keyed primitives used by one ORAM controller."""

    prf: Prf
    mac: Mac
    pad: PadGenerator
    master_key: bytes = field(default=b"", repr=False)

    @classmethod
    def fast(cls, master_key: bytes = b"freecursive-session-key") -> "CryptoSuite":
        """Suite for simulations: keyed BLAKE2b everywhere."""
        return cls(
            prf=Prf(derive_key(master_key, "prf"), mode=Prf.MODE_FAST),
            mac=Mac(derive_key(master_key, "mac"), mode=Mac.MODE_FAST),
            pad=PadGenerator(derive_key(master_key, "pad"), mode=PadGenerator.MODE_FAST),
            master_key=master_key,
        )

    @classmethod
    def reference(cls, master_key: bytes = b"freecursive-session-key") -> "CryptoSuite":
        """Paper-faithful suite: AES-128 PRF/pads, SHA3-224 MAC."""
        return cls(
            prf=Prf(derive_key(master_key, "prf"), mode=Prf.MODE_AES),
            mac=Mac(derive_key(master_key, "mac"), mode=Mac.MODE_SHA3),
            pad=PadGenerator(derive_key(master_key, "pad"), mode=PadGenerator.MODE_AES),
            master_key=master_key,
        )
