"""Message authentication codes for PMMAC.

The paper instantiates MAC_K() with SHA3-224 (§6.1) and stores an 80-128
bit truncation alongside each block. ``Mac`` mirrors that: keyed SHA3-224
(reference) or keyed BLAKE2b (fast), truncated to ``tag_bytes``.
"""

from __future__ import annotations

import hashlib


class Mac:
    """Keyed MAC with truncated tags and an invocation/byte counter.

    ``bytes_hashed`` and ``call_count`` feed the §6.3 hash-bandwidth
    comparison against the Merkle baseline.
    """

    MODE_SHA3 = "sha3-224"
    MODE_FAST = "fast"

    def __init__(self, key: bytes, mode: str = MODE_SHA3, tag_bytes: int = 14):
        if mode not in (self.MODE_SHA3, self.MODE_FAST):
            raise ValueError(f"unknown MAC mode {mode!r}")
        if not 1 <= tag_bytes <= 28:
            raise ValueError("tag must be 1..28 bytes")
        self.mode = mode
        self.key = key
        self.tag_bytes = tag_bytes
        self.call_count = 0
        self.bytes_hashed = 0
        if mode == self.MODE_FAST:
            # Pre-keyed hash state (see Prf): copy() skips the per-call
            # key-block compression; digests are byte-identical.
            self._keyed_state = hashlib.blake2b(key=key, digest_size=tag_bytes)

    def tag(self, message: bytes) -> bytes:
        """Compute the truncated MAC tag of ``message``."""
        self.call_count += 1
        self.bytes_hashed += len(message)
        if self.mode == self.MODE_FAST:
            state = self._keyed_state.copy()
            state.update(message)
            return state.digest()
        # Keyed SHA3: SHA3-224(K || m). SHA3 is not length-extendable, so the
        # simple prefix construction is a secure MAC.
        digest = hashlib.sha3_224(self.key + message).digest()
        return digest[: self.tag_bytes]

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-content comparison of a tag (timing not modelled)."""
        return self.tag(message) == tag

    def block_tag(self, count: int, address: int, data: bytes) -> bytes:
        """PMMAC tag h = MAC_K(c || a || d) (§6.2.1)."""
        header = count.to_bytes(12, "little") + address.to_bytes(8, "little")
        return self.tag(header + data)

    def reset_counters(self) -> None:
        """Zero the hash-bandwidth counters."""
        self.call_count = 0
        self.bytes_hashed = 0
