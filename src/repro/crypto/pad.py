"""One-time-pad generation for bucket encryption (AES counter mode).

Two schemes from the paper are implemented:

- **Bucket-seed** (§6.4, the scheme of [26] that breaks under active
  adversaries): pad chunk i of a bucket is AES_K(BucketID || BucketSeed || i),
  with the per-bucket seed stored in plaintext next to the bucket. An active
  adversary who rolls the stored seed back forces pad reuse.
- **Global-seed** (the fix): pad chunk i is AES_K(GlobalSeed || i) where
  GlobalSeed is a single monotonic counter in the ORAM controller, so a pad
  is never reused regardless of tampering.

Both are exercised by the §6.4 attack tests.
"""

from __future__ import annotations

import hashlib

from repro.crypto.aes import AES128

CHUNK = 16  # pad generation granularity, one AES block


class PadGenerator:
    """Deterministic pad stream generator keyed at construction."""

    MODE_AES = "aes"
    MODE_FAST = "fast"

    def __init__(self, key: bytes, mode: str = MODE_FAST):
        if mode not in (self.MODE_AES, self.MODE_FAST):
            raise ValueError(f"unknown pad mode {mode!r}")
        self.mode = mode
        self.key = key
        self.blocks_generated = 0
        if mode == self.MODE_AES:
            if len(key) != 16:
                raise ValueError("AES pad requires a 16-byte key")
            self._aes = AES128(key)

    def _pad_block(self, tweak: bytes) -> bytes:
        self.blocks_generated += 1
        if self.mode == self.MODE_FAST:
            return hashlib.blake2b(tweak, key=self.key, digest_size=CHUNK).digest()
        return self._aes.encrypt_block(tweak.ljust(CHUNK, b"\x00")[:CHUNK])

    def pad(self, seed_parts: bytes, nbytes: int) -> bytes:
        """Generate ``nbytes`` of pad for the given seed material."""
        out = bytearray()
        i = 0
        while len(out) < nbytes:
            tweak = seed_parts + i.to_bytes(4, "little")
            out.extend(self._pad_block(tweak[:CHUNK] if self.mode == self.MODE_AES else tweak))
            i += 1
        return bytes(out[:nbytes])

    def bucket_seed_pad(self, bucket_id: int, bucket_seed: int, nbytes: int) -> bytes:
        """Pad per the bucket-seed scheme of [26] (vulnerable to replay)."""
        seed = bucket_id.to_bytes(6, "little") + bucket_seed.to_bytes(6, "little")
        return self.pad(seed, nbytes)

    def global_seed_pad(self, global_seed: int, nbytes: int) -> bytes:
        """Pad per the global-seed scheme of §6.4 (replay safe)."""
        seed = b"GSEED" + global_seed.to_bytes(8, "little")
        return self.pad(seed, nbytes)

    @staticmethod
    def xor(data: bytes, pad: bytes) -> bytes:
        """XOR data with a pad of the same length."""
        if len(data) != len(pad):
            raise ValueError("pad length mismatch")
        return bytes(a ^ b for a, b in zip(data, pad))
