"""Set-associative write-back LRU cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.utils.bitops import is_power_of_two, log2_exact


@dataclass
class CacheStats:
    """Hit/miss/writeback counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 when unused)."""
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "last_use")

    def __init__(self, tag: int, clock: int):
        self.tag = tag
        self.dirty = False
        self.last_use = clock


class Cache:
    """One cache level; addresses are line-granular (byte_addr // line)."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64):
        lines = size_bytes // line_bytes
        if lines % ways:
            raise ValueError("capacity must divide evenly into ways")
        self.num_sets = lines // ways
        if not is_power_of_two(self.num_sets):
            raise ValueError("set count must be a power of two")
        self.ways = ways
        self.line_bytes = line_bytes
        self._set_shift = log2_exact(self.num_sets)
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def _locate(self, line_addr: int) -> Tuple[Dict[int, _Line], int]:
        return self._sets[line_addr & (self.num_sets - 1)], line_addr >> self._set_shift

    def access(self, line_addr: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Look up a line; allocate on miss.

        Returns (hit, writeback_line_addr): the second element is the
        address of a dirty victim that must be written to the next level,
        or None.
        """
        self._clock += 1
        cache_set, tag = self._locate(line_addr)
        line = cache_set.get(tag)
        if line is not None:
            self.stats.hits += 1
            line.last_use = self._clock
            if is_write:
                line.dirty = True
            return True, None

        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                self.stats.writebacks += 1
                set_index = line_addr & (self.num_sets - 1)
                writeback = (victim_tag << self._set_shift) | set_index
        new_line = _Line(tag, self._clock)
        new_line.dirty = is_write
        cache_set[tag] = new_line
        return False, writeback

    def install(self, line_addr: int, dirty: bool) -> Optional[int]:
        """Insert a line without counting a demand access (fill path).

        Returns a dirty victim's line address, if one was displaced.
        """
        self._clock += 1
        cache_set, tag = self._locate(line_addr)
        line = cache_set.get(tag)
        if line is not None:
            line.last_use = self._clock
            line.dirty = line.dirty or dirty
            return None
        writeback = None
        if len(cache_set) >= self.ways:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                self.stats.writebacks += 1
                set_index = line_addr & (self.num_sets - 1)
                writeback = (victim_tag << self._set_shift) | set_index
        new_line = _Line(tag, self._clock)
        new_line.dirty = dirty
        cache_set[tag] = new_line
        return writeback

    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(s) for s in self._sets)
