"""Processor-side models: caches and the trace-driven core (Table 1).

The paper evaluates with Graphite: an in-order, single-issue 1.3 GHz core
with 32 KB L1 and 1 MB L2 caches. We reproduce that with a set-associative
LRU cache hierarchy driven by synthetic SPEC stand-in traces; the LLC
miss/eviction stream it produces is what the ORAM controller sees.
"""

from repro.proc.cache import Cache, CacheStats
from repro.proc.hierarchy import CacheHierarchy, MissEvent, MissTrace

__all__ = ["Cache", "CacheStats", "CacheHierarchy", "MissEvent", "MissTrace"]
