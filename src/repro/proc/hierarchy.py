"""Two-level cache hierarchy producing the LLC miss/eviction stream.

The ORAM controller intercepts last-level cache misses and dirty
evictions (§1, §2); :class:`CacheHierarchy` simulates L1 + L2 over a
memory-reference trace and records exactly that stream as a
:class:`MissTrace`, which the system simulator then replays against any
Frontend. Decoupling trace generation from Frontend replay lets one
cache simulation serve every scheme and PLB size (they see the same
miss addresses by construction).
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.config import ProcessorConfig
from repro.proc.cache import Cache

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: On-disk trace container: magic, format version, flags, name length,
#: four scalar counters, event count, payload CRC32.
TRACE_MAGIC = b"RTRC"
TRACE_VERSION = 1
_TRACE_HEADER = struct.Struct("<4sHHIqqqqqI")
_FLAG_COMPRESSED = 1


@dataclass(frozen=True)
class MissEvent:
    """One ORAM-visible event: an LLC miss (read) or dirty eviction (write)."""

    line_addr: int
    is_write: bool


@dataclass
class MissTrace:
    """LLC-filtered view of a program's execution."""

    name: str
    instructions: int = 0
    mem_refs: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    events: List[MissEvent] = field(default_factory=list)
    #: Lazily-built columnar view: (events list reference, length,
    #: line_addr column, is_write column). The list *reference* (not its
    #: id — CPython's free list recycles addresses, so an id could alias
    #: a new list after a rebind) plus the length key the cache. Cache
    #: bookkeeping, not data — excluded from equality and repr.
    _columns: Optional[Tuple[List[MissEvent], int, object, object]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def llc_misses(self) -> int:
        """Demand misses (excludes eviction writebacks)."""
        return sum(1 for e in self.events if not e.is_write)

    # -- columnar view --------------------------------------------------------

    def columns(self) -> Tuple[object, object]:
        """Struct-of-arrays view of the event list: (line_addrs, is_write).

        With numpy available the columns are an ``int64`` array and a bool
        array (the batched replay kernel's native operands); without it
        they fall back to ``array('q')`` / ``array('b')`` with identical
        element values. The view is lazily materialised from ``events``
        and cached; rebinding ``events`` or changing its length
        invalidates the cache (in-place same-length element mutation does
        not — mutate via append/rebind, as every producer in this repo
        does).
        """
        events = self.events
        n = len(events)
        cached = self._columns
        if cached is not None and cached[0] is events and cached[1] == n:
            return cached[2], cached[3]
        if _np is not None:
            line_addrs = _np.fromiter(
                (e.line_addr for e in events), dtype=_np.int64, count=n
            )
            is_write = _np.fromiter(
                (e.is_write for e in events), dtype=_np.bool_, count=n
            )
        else:
            line_addrs = array("q", (e.line_addr for e in events))
            is_write = array("b", (1 if e.is_write else 0 for e in events))
        self._columns = (events, n, line_addrs, is_write)
        return line_addrs, is_write

    def _seed_columns(self, line_addrs, is_write) -> None:
        """Install a pre-built columnar view (binary-load fast path)."""
        self._columns = (self.events, len(self.events), line_addrs, is_write)

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        return 1000.0 * self.llc_misses / self.instructions if self.instructions else 0.0

    # -- serialisation --------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        """Compact binary image for the on-disk trace cache.

        Each event packs into one little-endian 64-bit word as
        ``line_addr << 1 | is_write``; the event section is zlib-compressed
        by default and guarded by a CRC32 so corruption is detected on load.
        """
        name_bytes = self.name.encode("utf-8")
        if _np is not None:
            # Columnar fast path: pack every event word in one vectorised
            # sweep (and leave the columns cached for the replay kernel).
            # Byte-identical to the scalar array('Q') path below.
            line_addrs, is_write = self.columns()
            words = (line_addrs.astype(_np.uint64) << _np.uint64(1)) | is_write
            payload = words.astype("<u8").tobytes()
        else:
            packed = array(
                "Q", ((e.line_addr << 1) | e.is_write for e in self.events)
            )
            if sys.byteorder == "big":  # pragma: no cover - LE-canonical format
                packed.byteswap()
            payload = packed.tobytes()
        flags = 0
        if compress:
            payload = zlib.compress(payload, 6)
            flags |= _FLAG_COMPRESSED
        header = _TRACE_HEADER.pack(
            TRACE_MAGIC,
            TRACE_VERSION,
            flags,
            len(name_bytes),
            self.instructions,
            self.mem_refs,
            self.l1_hits,
            self.l2_hits,
            len(self.events),
            zlib.crc32(payload),
        )
        return header + name_bytes + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "MissTrace":
        """Inverse of :meth:`to_bytes`; raises ``ValueError`` on corruption."""
        if len(data) < _TRACE_HEADER.size:
            raise ValueError("trace image truncated before header")
        (
            magic,
            version,
            flags,
            name_len,
            instructions,
            mem_refs,
            l1_hits,
            l2_hits,
            num_events,
            crc,
        ) = _TRACE_HEADER.unpack_from(data)
        if magic != TRACE_MAGIC:
            raise ValueError("bad trace magic")
        if version != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {version}")
        body = data[_TRACE_HEADER.size :]
        if len(body) < name_len:
            raise ValueError("trace image truncated inside name")
        name = body[:name_len].decode("utf-8")
        payload = bytes(body[name_len:])
        if zlib.crc32(payload) != crc:
            raise ValueError("trace payload CRC mismatch")
        if flags & _FLAG_COMPRESSED:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise ValueError(f"trace payload decompression failed: {exc}") from exc
        if len(payload) != 8 * num_events:
            raise ValueError("trace event section has wrong length")
        line_col = is_write_col = None
        if _np is not None:
            # Vectorised unpack; the decoded columns are seeded straight
            # into the columnar-view cache so a cache-loaded trace reaches
            # the batched replay kernel without a second pass.
            words = _np.frombuffer(payload, dtype="<u8")
            line_col = (words >> _np.uint64(1)).astype(_np.int64)
            is_write_col = (words & _np.uint64(1)) != 0
            events = [
                MissEvent(addr, w)
                for addr, w in zip(line_col.tolist(), is_write_col.tolist())
            ]
        else:
            packed = array("Q")
            packed.frombytes(payload)
            if sys.byteorder == "big":  # pragma: no cover - LE-canonical format
                packed.byteswap()
            events = [MissEvent(word >> 1, bool(word & 1)) for word in packed]
        trace = cls(
            name=name,
            instructions=instructions,
            mem_refs=mem_refs,
            l1_hits=l1_hits,
            l2_hits=l2_hits,
            events=events,
        )
        if line_col is not None:
            trace._seed_columns(line_col, is_write_col)
        return trace


class CacheHierarchy:
    """L1 + L2 write-back hierarchy with Table 1 geometry by default."""

    def __init__(self, config: ProcessorConfig = ProcessorConfig()):
        self.config = config
        self.l1 = Cache(config.l1_bytes, config.l1_ways, config.line_bytes)
        self.l2 = Cache(config.l2_bytes, config.l2_ways, config.line_bytes)

    def run(
        self,
        refs: Iterable[Tuple[int, bool, int]],
        name: str = "trace",
        max_llc_misses: int = 0,
        warmup_refs: int = 0,
    ) -> MissTrace:
        """Drive the hierarchy with (gap_instructions, is_write, byte_addr).

        The first ``warmup_refs`` references warm the caches without being
        recorded (the paper warms over 1B instructions before measuring,
        §7.1.1); measurement then stops after ``max_llc_misses`` demand
        misses when positive.
        """
        trace = MissTrace(name=name)
        line_shift = self.config.line_bytes.bit_length() - 1
        misses = 0
        warm_remaining = warmup_refs
        for gap, is_write, byte_addr in refs:
            recording = warm_remaining <= 0
            if not recording:
                warm_remaining -= 1
            if recording:
                trace.instructions += gap + 1
                trace.mem_refs += 1
            line = byte_addr >> line_shift
            hit, wb = self.l1.access(line, is_write)
            if hit:
                if recording:
                    trace.l1_hits += 1
                continue
            if wb is not None:
                l2_wb = self.l2.install(wb, dirty=True)
                if l2_wb is not None and recording:
                    trace.events.append(MissEvent(l2_wb, True))
            l2_hit, l2_wb = self.l2.access(line, False)
            if l2_hit:
                if recording:
                    trace.l2_hits += 1
                continue
            if not recording:
                continue
            if l2_wb is not None:
                trace.events.append(MissEvent(l2_wb, True))
            trace.events.append(MissEvent(line, False))
            misses += 1
            if max_llc_misses and misses >= max_llc_misses:
                break
        return trace
