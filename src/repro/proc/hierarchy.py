"""Two-level cache hierarchy producing the LLC miss/eviction stream.

The ORAM controller intercepts last-level cache misses and dirty
evictions (§1, §2); :class:`CacheHierarchy` simulates L1 + L2 over a
memory-reference trace and records exactly that stream as a
:class:`MissTrace`, which the system simulator then replays against any
Frontend. Decoupling trace generation from Frontend replay lets one
cache simulation serve every scheme and PLB size (they see the same
miss addresses by construction).
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.config import ProcessorConfig
from repro.proc.cache import Cache

#: On-disk trace container: magic, format version, flags, name length,
#: four scalar counters, event count, payload CRC32.
TRACE_MAGIC = b"RTRC"
TRACE_VERSION = 1
_TRACE_HEADER = struct.Struct("<4sHHIqqqqqI")
_FLAG_COMPRESSED = 1


@dataclass(frozen=True)
class MissEvent:
    """One ORAM-visible event: an LLC miss (read) or dirty eviction (write)."""

    line_addr: int
    is_write: bool


@dataclass
class MissTrace:
    """LLC-filtered view of a program's execution."""

    name: str
    instructions: int = 0
    mem_refs: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    events: List[MissEvent] = field(default_factory=list)

    @property
    def llc_misses(self) -> int:
        """Demand misses (excludes eviction writebacks)."""
        return sum(1 for e in self.events if not e.is_write)

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        return 1000.0 * self.llc_misses / self.instructions if self.instructions else 0.0

    # -- serialisation --------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        """Compact binary image for the on-disk trace cache.

        Each event packs into one little-endian 64-bit word as
        ``line_addr << 1 | is_write``; the event section is zlib-compressed
        by default and guarded by a CRC32 so corruption is detected on load.
        """
        name_bytes = self.name.encode("utf-8")
        packed = array("Q", ((e.line_addr << 1) | e.is_write for e in self.events))
        if sys.byteorder == "big":  # pragma: no cover - LE-canonical format
            packed.byteswap()
        payload = packed.tobytes()
        flags = 0
        if compress:
            payload = zlib.compress(payload, 6)
            flags |= _FLAG_COMPRESSED
        header = _TRACE_HEADER.pack(
            TRACE_MAGIC,
            TRACE_VERSION,
            flags,
            len(name_bytes),
            self.instructions,
            self.mem_refs,
            self.l1_hits,
            self.l2_hits,
            len(self.events),
            zlib.crc32(payload),
        )
        return header + name_bytes + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "MissTrace":
        """Inverse of :meth:`to_bytes`; raises ``ValueError`` on corruption."""
        if len(data) < _TRACE_HEADER.size:
            raise ValueError("trace image truncated before header")
        (
            magic,
            version,
            flags,
            name_len,
            instructions,
            mem_refs,
            l1_hits,
            l2_hits,
            num_events,
            crc,
        ) = _TRACE_HEADER.unpack_from(data)
        if magic != TRACE_MAGIC:
            raise ValueError("bad trace magic")
        if version != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {version}")
        body = data[_TRACE_HEADER.size :]
        if len(body) < name_len:
            raise ValueError("trace image truncated inside name")
        name = body[:name_len].decode("utf-8")
        payload = bytes(body[name_len:])
        if zlib.crc32(payload) != crc:
            raise ValueError("trace payload CRC mismatch")
        if flags & _FLAG_COMPRESSED:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise ValueError(f"trace payload decompression failed: {exc}") from exc
        if len(payload) != 8 * num_events:
            raise ValueError("trace event section has wrong length")
        packed = array("Q")
        packed.frombytes(payload)
        if sys.byteorder == "big":  # pragma: no cover - LE-canonical format
            packed.byteswap()
        events = [MissEvent(word >> 1, bool(word & 1)) for word in packed]
        return cls(
            name=name,
            instructions=instructions,
            mem_refs=mem_refs,
            l1_hits=l1_hits,
            l2_hits=l2_hits,
            events=events,
        )


class CacheHierarchy:
    """L1 + L2 write-back hierarchy with Table 1 geometry by default."""

    def __init__(self, config: ProcessorConfig = ProcessorConfig()):
        self.config = config
        self.l1 = Cache(config.l1_bytes, config.l1_ways, config.line_bytes)
        self.l2 = Cache(config.l2_bytes, config.l2_ways, config.line_bytes)

    def run(
        self,
        refs: Iterable[Tuple[int, bool, int]],
        name: str = "trace",
        max_llc_misses: int = 0,
        warmup_refs: int = 0,
    ) -> MissTrace:
        """Drive the hierarchy with (gap_instructions, is_write, byte_addr).

        The first ``warmup_refs`` references warm the caches without being
        recorded (the paper warms over 1B instructions before measuring,
        §7.1.1); measurement then stops after ``max_llc_misses`` demand
        misses when positive.
        """
        trace = MissTrace(name=name)
        line_shift = self.config.line_bytes.bit_length() - 1
        misses = 0
        warm_remaining = warmup_refs
        for gap, is_write, byte_addr in refs:
            recording = warm_remaining <= 0
            if not recording:
                warm_remaining -= 1
            if recording:
                trace.instructions += gap + 1
                trace.mem_refs += 1
            line = byte_addr >> line_shift
            hit, wb = self.l1.access(line, is_write)
            if hit:
                if recording:
                    trace.l1_hits += 1
                continue
            if wb is not None:
                l2_wb = self.l2.install(wb, dirty=True)
                if l2_wb is not None and recording:
                    trace.events.append(MissEvent(l2_wb, True))
            l2_hit, l2_wb = self.l2.access(line, False)
            if l2_hit:
                if recording:
                    trace.l2_hits += 1
                continue
            if not recording:
                continue
            if l2_wb is not None:
                trace.events.append(MissEvent(l2_wb, True))
            trace.events.append(MissEvent(line, False))
            misses += 1
            if max_llc_misses and misses >= max_llc_misses:
                break
        return trace
