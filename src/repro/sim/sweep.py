"""Parameter-grid sweeps over declarative scheme specs.

A :class:`SweepSpec` names base schemes (registry names, spec strings, or
:class:`~repro.spec.SchemeSpec` values), a grid of spec-field axes, and a
benchmark list; :func:`run_sweep` expands the cartesian product into
sized ``SchemeSpec`` points and drives them through
:meth:`~repro.sim.runner.SimulationRunner.run_suite` — so sweeps inherit
the whole experiment engine for free: on-disk trace/result caching
(warm-cache sweeps replay nothing), worker-pool fan-out bitwise identical
to serial, and per-cell progress streaming.

The report is plain data (JSON-safe), deterministic in content *and*
order regardless of worker count or cache temperature::

    from repro.sim.sweep import SweepSpec, run_sweep

    sweep = SweepSpec.from_args(
        schemes=["PC_X32", "PIC_X32"],
        grid={"plb_capacity_bytes": ["4KiB", "8KiB", "16KiB"]},
        benchmarks=["gob", "mcf"],
    )
    report = run_sweep(sweep, workers=8)

CLI: ``python -m repro sweep --scheme PC_X32 --grid plb=4KiB,8KiB ...``
prints the slowdown table and writes the JSON report.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SpecError
from repro.sim.metrics import SimResult
from repro.sim.runner import ProgressCallback, SchemeLike, SimulationRunner
from repro.spec import (
    SchemeSpec,
    decompose_spec,
    get_spec,
    parse_field_value,
    parse_scheme_string,
    render_scheme_string,
    resolve_field,
    resolve_spec,
)
from repro.utils.stats import geometric_mean
from repro.workloads.spec import SPEC_BENCHMARKS, benchmark_names


def parse_grid_axis(text: str) -> Tuple[str, Tuple[object, ...]]:
    """Parse one ``--grid`` argument: ``"plb=4KiB,8KiB"`` -> axis tuple.

    The key accepts full spec field names or the mini-language aliases;
    values parse by the field's type (sizes, bools, ``none``).
    """
    if "=" not in text:
        raise SpecError(
            f"grid axis {text!r} is not of the form field=value[,value...]"
        )
    key, _, rest = text.partition("=")
    field_name = resolve_field(key)
    values = tuple(
        parse_field_value(field_name, item)
        for item in rest.split(",")
        if item.strip()
    )
    if not values:
        raise SpecError(f"grid axis {text!r} lists no values")
    if len(set(values)) != len(values):
        raise SpecError(f"grid axis {text!r} repeats a value")
    return field_name, values


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: base schemes x a grid of spec-field axes."""

    schemes: Tuple[SchemeLike, ...]
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    benchmarks: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.schemes:
            raise SpecError("a sweep needs at least one base scheme")
        seen = set()
        for field_name, values in self.grid:
            field_name_resolved = resolve_field(field_name)
            if field_name_resolved != field_name:
                raise SpecError(
                    f"grid axes use full field names; got {field_name!r} "
                    f"(did you mean {field_name_resolved!r}?)"
                )
            if field_name in seen:
                raise SpecError(f"grid axis {field_name!r} appears twice")
            seen.add(field_name)
            if not values:
                raise SpecError(f"grid axis {field_name!r} lists no values")
        # Fail fast on unknown schemes/benchmarks at construction time.
        for scheme in self.schemes:
            resolve_spec(scheme)
        for name in self.benchmarks:
            if name not in SPEC_BENCHMARKS:
                raise SpecError(
                    f"unknown benchmark {name!r}; "
                    f"available: {sorted(SPEC_BENCHMARKS)}"
                )

    @classmethod
    def from_args(
        cls,
        schemes: Sequence[SchemeLike],
        grid: Union[Mapping[str, Iterable[object]], Iterable[str], None] = None,
        benchmarks: Optional[Iterable[str]] = None,
    ) -> "SweepSpec":
        """Build from CLI-ish inputs.

        ``grid`` is either a mapping ``{field: values}`` (field names or
        aliases; values raw or mini-language strings) or an iterable of
        ``"field=v1,v2"`` axis strings.
        """
        axes: List[Tuple[str, Tuple[object, ...]]] = []
        if grid is None:
            pass
        elif isinstance(grid, Mapping):
            for key, values in grid.items():
                field_name = resolve_field(key)
                parsed = tuple(
                    parse_field_value(field_name, value)
                    if isinstance(value, str)
                    else value
                    for value in values
                )
                axes.append((field_name, parsed))
        else:
            axes = [parse_grid_axis(item) for item in grid]
        return cls(
            schemes=tuple(schemes),
            grid=tuple(axes),
            benchmarks=tuple(benchmarks) if benchmarks is not None else (),
        )

    def points(self) -> List[Tuple[str, SchemeSpec]]:
        """Expanded (label, spec) grid points, first occurrence deduped.

        Point order is deterministic: base schemes in declaration order,
        then the cartesian product with the *last* axis varying fastest —
        so serial and parallel sweeps report cells identically.

        Labels carry every grid delta *explicitly* — a combo value that
        happens to equal the registry default still renders (and, fed back
        through the runner's string path, still pins that field against
        runner sizing), so two axis values never collapse into one row.
        """
        fields = [field_name for field_name, _values in self.grid]
        value_axes = [values for _field_name, values in self.grid]
        out: List[Tuple[str, SchemeSpec]] = []
        seen = set()
        for scheme in self.schemes:
            if isinstance(scheme, str):
                base_name, base_deltas = parse_scheme_string(scheme)
            else:
                base_name, base_deltas = decompose_spec(resolve_spec(scheme))
            for combo in itertools.product(*value_axes):
                deltas = dict(base_deltas)
                deltas.update(zip(fields, combo))
                label = render_scheme_string(base_name, deltas)
                if label in seen:
                    continue
                seen.add(label)
                out.append((label, get_spec(base_name).with_(**deltas)))
        return out

    def bench_names(self) -> List[str]:
        """Benchmarks to sweep (all SPEC stand-ins when unspecified)."""
        return list(self.benchmarks) if self.benchmarks else benchmark_names()


def run_sweep(
    sweep: SweepSpec,
    runner: Optional[SimulationRunner] = None,
    *,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    include_baselines: bool = True,
) -> Dict[str, object]:
    """Execute a sweep; returns a deterministic, JSON-safe report.

    ``report["cells"]`` holds one entry per (grid point, benchmark) with
    the point's full spec, the serialized :class:`SimResult`, and (when
    ``include_baselines``) the slowdown vs the insecure-DRAM baseline.
    Cells are ordered (points, then benchmarks) regardless of worker
    scheduling, and results are bitwise identical serial vs parallel and
    warm-cache vs cold — the experiment engine's core guarantee.
    """
    if runner is None:
        runner = SimulationRunner()
    names = sweep.bench_names()
    points = sweep.points()
    # Feed the runner *labels*, not spec values: the string path preserves
    # every explicit grid delta (even one equal to a registry default)
    # against the runner's per-benchmark sizing.
    results = runner.run_suite(
        [label for label, _spec in points],
        names,
        workers=workers,
        progress=progress,
    )
    baselines: Dict[str, SimResult] = {}
    if include_baselines:
        baselines = runner.baselines(names, workers=workers, progress=progress)
    cells: List[Dict[str, object]] = []
    for label, spec in points:
        for name in names:
            result = results[label][name]
            cell: Dict[str, object] = {
                "scheme": label,
                "benchmark": name,
                "spec": spec.to_dict(),
                "result": dataclasses.asdict(result),
            }
            if include_baselines:
                cell["slowdown"] = result.cycles / baselines[name].cycles
            cells.append(cell)
    import repro

    return {
        "kind": "sweep",
        "version": getattr(repro, "__version__", "0"),
        "schemes": [label for label, _spec in points],
        "grid": {field_name: list(values) for field_name, values in sweep.grid},
        "benchmarks": names,
        "baselines": {
            name: dataclasses.asdict(result) for name, result in baselines.items()
        },
        "cells": cells,
    }


def sweep_table(report: Mapping[str, object]) -> str:
    """Render a sweep report as an aligned text table.

    One row per grid point; cells are slowdowns vs insecure when the
    report carries baselines, raw megacycles otherwise.
    """
    names: List[str] = list(report["benchmarks"])  # type: ignore[arg-type]
    have_baselines = bool(report.get("baselines"))
    table: Dict[str, Dict[str, float]] = {}
    for cell in report["cells"]:  # type: ignore[union-attr]
        label = cell["scheme"]
        value = (
            cell["slowdown"]
            if have_baselines
            else cell["result"]["cycles"] / 1e6
        )
        table.setdefault(label, {})[cell["benchmark"]] = value
    for row in table.values():
        row["geomean"] = geometric_mean(
            [value for key, value in row.items() if key != "geomean"]
        )
    title = (
        "sweep: slowdown vs insecure"
        if have_baselines
        else "sweep: megacycles per benchmark"
    )
    # Rows are keyed by full spec labels, which outgrow format_table's
    # 10-column scheme field; pad the header ourselves.
    width = max((len(label) for label in table), default=10)
    lines = [title]
    header = f"{'scheme':>{width}} " + " ".join(f"{b:>7}" for b in names)
    lines.append(header + f" {'geomean':>8}")
    for label, row in table.items():
        cells = " ".join(f"{row.get(b, float('nan')):7.2f}" for b in names)
        lines.append(f"{label:>{width}} " + cells + f" {row['geomean']:8.2f}")
    return "\n".join(lines)
