"""Parameter-grid sweeps over declarative scheme specs.

A :class:`SweepSpec` names base schemes (registry names, spec strings, or
:class:`~repro.spec.SchemeSpec` values), a grid of spec-field axes, and a
benchmark list; :func:`run_sweep` expands the cartesian product into
sized ``SchemeSpec`` points and drives them through
:meth:`~repro.sim.runner.SimulationRunner.run_suite` — so sweeps inherit
the whole experiment engine for free: on-disk trace/result caching
(warm-cache sweeps replay nothing), worker-pool fan-out bitwise identical
to serial, and per-cell progress streaming.

The report is plain data (JSON-safe), deterministic in content *and*
order regardless of worker count or cache temperature::

    from repro.sim.sweep import SweepSpec, run_sweep

    sweep = SweepSpec.from_args(
        schemes=["PC_X32", "PIC_X32"],
        grid={"plb_capacity_bytes": ["4KiB", "8KiB", "16KiB"]},
        benchmarks=["gob", "mcf"],
    )
    report = run_sweep(sweep, workers=8)

CLI: ``python -m repro sweep --scheme PC_X32 --grid plb=4KiB,8KiB ...``
prints the slowdown table and writes the JSON report.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SpecError, SweepInterrupted
from repro.faults import RetryPolicy, fault_hook
from repro.sim.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.sim.runner import ProgressCallback, SchemeLike, SimulationRunner
from repro.spec import (
    SchemeSpec,
    decompose_spec,
    get_spec,
    parse_field_value,
    parse_scheme_string,
    parse_size,
    render_scheme_string,
    resolve_field,
    resolve_spec,
)
from repro.utils.stats import geometric_mean
from repro.workloads.spec import benchmark, benchmark_names, scaled_benchmark_name

#: Grid axes over *benchmark parameters* rather than spec fields:
#: ``misses`` sweeps the per-benchmark LLC miss budget (a runner knob),
#: ``wss`` sweeps the working-set size (a derived-benchmark override).
BENCH_AXES = ("misses", "wss")

#: Grid axes over *serving-scenario parameters*: ``tenants`` sweeps the
#: simulated client count, ``shards`` the ORAM pool size. Any serve axis
#: turns the sweep into an "N tenants on M shards" scenario sweep run
#: through :mod:`repro.serve` (one cell per combo, the benchmark list
#: becoming the round-robin tenant roster) instead of offline replay.
SERVE_AXES = ("tenants", "shards")


def parse_grid_axis(text: str) -> Tuple[str, Tuple[object, ...]]:
    """Parse one ``--grid`` argument: ``"plb=4KiB,8KiB"`` -> axis tuple.

    The key accepts full spec field names, the mini-language aliases,
    one of the benchmark-parameter axes in :data:`BENCH_AXES`
    (``"misses=2000,8000"``, ``"wss=4MiB,16MiB"``), or one of the
    serving-scenario axes in :data:`SERVE_AXES` (``"tenants=2,4"``,
    ``"shards=1,2"``); values parse by the field's type (sizes, bools,
    ``none`` — bench and serve axes are positive sizes/integers).
    """
    if "=" not in text:
        raise SpecError(
            f"grid axis {text!r} is not of the form field=value[,value...]"
        )
    key, _, rest = text.partition("=")
    items = [item for item in rest.split(",") if item.strip()]
    axis = key.strip().lower()
    if axis in BENCH_AXES or axis in SERVE_AXES:
        values = tuple(_parse_bench_value(axis, item) for item in items)
    else:
        axis = resolve_field(key)
        values = tuple(parse_field_value(axis, item) for item in items)
    if not values:
        raise SpecError(f"grid axis {text!r} lists no values")
    if len(set(values)) != len(values):
        raise SpecError(f"grid axis {text!r} repeats a value")
    return axis, values


def _parse_bench_value(axis: str, value: object) -> int:
    """Parse one benchmark- or serve-parameter axis value (positive int)."""
    parsed = parse_size(value) if isinstance(value, str) else value
    if not isinstance(parsed, int) or isinstance(parsed, bool) or parsed < 1:
        raise SpecError(
            f"axis {axis!r} expects positive integers, got {value!r}"
        )
    return parsed


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: base schemes x spec-field x bench-param axes.

    ``grid`` axes vary :class:`~repro.spec.SchemeSpec` fields;
    ``bench_grid`` axes vary benchmark parameters (:data:`BENCH_AXES`:
    the per-benchmark miss budget and the working-set size), expanding
    the benchmark/runner side of the matrix instead of the scheme side.
    ``serve_grid`` axes (:data:`SERVE_AXES`) vary the multi-tenant
    serving scenario — any serve axis switches :func:`run_sweep` from
    offline replay to :mod:`repro.serve` scenario cells, with the
    benchmark list as the round-robin tenant roster.
    """

    schemes: Tuple[SchemeLike, ...]
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    benchmarks: Tuple[str, ...] = ()
    bench_grid: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    serve_grid: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()

    def __post_init__(self):
        if not self.schemes:
            raise SpecError("a sweep needs at least one base scheme")
        seen = set()
        for field_name, values in self.grid:
            field_name_resolved = resolve_field(field_name)
            if field_name_resolved != field_name:
                raise SpecError(
                    f"grid axes use full field names; got {field_name!r} "
                    f"(did you mean {field_name_resolved!r}?)"
                )
            if field_name in seen:
                raise SpecError(f"grid axis {field_name!r} appears twice")
            seen.add(field_name)
            if not values:
                raise SpecError(f"grid axis {field_name!r} lists no values")
        bench_seen = set()
        normalised: List[Tuple[str, Tuple[int, ...]]] = []
        for axis, values in self.bench_grid:
            if axis not in BENCH_AXES:
                raise SpecError(
                    f"unknown bench axis {axis!r}; choose from {BENCH_AXES}"
                )
            if axis in bench_seen:
                raise SpecError(f"bench axis {axis!r} appears twice")
            bench_seen.add(axis)
            if not values:
                raise SpecError(f"bench axis {axis!r} lists no values")
            # Normalise, don't just validate: direct construction may
            # spell values as size strings ("4MiB"); downstream consumers
            # (names_for, runner.derive) get the parsed integers.
            normalised.append(
                (axis, tuple(_parse_bench_value(axis, v) for v in values))
            )
        object.__setattr__(self, "bench_grid", tuple(normalised))
        serve_seen = set()
        serve_normalised: List[Tuple[str, Tuple[int, ...]]] = []
        for axis, values in self.serve_grid:
            if axis not in SERVE_AXES:
                raise SpecError(
                    f"unknown serve axis {axis!r}; choose from {SERVE_AXES}"
                )
            if axis in serve_seen:
                raise SpecError(f"serve axis {axis!r} appears twice")
            serve_seen.add(axis)
            if not values:
                raise SpecError(f"serve axis {axis!r} lists no values")
            serve_normalised.append(
                (axis, tuple(_parse_bench_value(axis, v) for v in values))
            )
        object.__setattr__(self, "serve_grid", tuple(serve_normalised))
        if self.serve_grid and self.bench_grid:
            raise SpecError(
                "serve axes (tenants/shards) cannot be combined with "
                "bench axes (misses/wss) in one sweep"
            )
        # Fail fast on unknown schemes/benchmarks at construction time.
        for scheme in self.schemes:
            resolve_spec(scheme)
        for name in self.benchmarks:
            try:
                benchmark(name)
            except KeyError as exc:
                raise SpecError(str(exc)) from None

    @classmethod
    def from_args(
        cls,
        schemes: Sequence[SchemeLike],
        grid: Union[Mapping[str, Iterable[object]], Iterable[str], None] = None,
        benchmarks: Optional[Iterable[str]] = None,
    ) -> "SweepSpec":
        """Build from CLI-ish inputs.

        ``grid`` is either a mapping ``{field: values}`` (field names or
        aliases; values raw or mini-language strings) or an iterable of
        ``"field=v1,v2"`` axis strings. Axes named after a benchmark
        parameter (:data:`BENCH_AXES`) are routed to ``bench_grid``,
        serving-scenario axes (:data:`SERVE_AXES`) to ``serve_grid``;
        everything else resolves as a spec field.
        """
        axes: List[Tuple[str, Tuple[object, ...]]] = []
        bench_axes: List[Tuple[str, Tuple[int, ...]]] = []
        serve_axes: List[Tuple[str, Tuple[int, ...]]] = []
        if grid is None:
            pass
        elif isinstance(grid, Mapping):
            for key, values in grid.items():
                axis = str(key).strip().lower()
                if axis in BENCH_AXES or axis in SERVE_AXES:
                    target = bench_axes if axis in BENCH_AXES else serve_axes
                    target.append(
                        (axis, tuple(_parse_bench_value(axis, v) for v in values))
                    )
                    continue
                field_name = resolve_field(key)
                parsed = tuple(
                    parse_field_value(field_name, value)
                    if isinstance(value, str)
                    else value
                    for value in values
                )
                axes.append((field_name, parsed))
        else:
            for item in grid:
                axis, values = parse_grid_axis(item)
                if axis in BENCH_AXES:
                    bench_axes.append((axis, values))  # type: ignore[arg-type]
                elif axis in SERVE_AXES:
                    serve_axes.append((axis, values))  # type: ignore[arg-type]
                else:
                    axes.append((axis, values))
        return cls(
            schemes=tuple(schemes),
            grid=tuple(axes),
            benchmarks=tuple(benchmarks) if benchmarks is not None else (),
            bench_grid=tuple(bench_axes),
            serve_grid=tuple(serve_axes),
        )

    def points(self) -> List[Tuple[str, SchemeSpec]]:
        """Expanded (label, spec) grid points, first occurrence deduped.

        Point order is deterministic: base schemes in declaration order,
        then the cartesian product with the *last* axis varying fastest —
        so serial and parallel sweeps report cells identically.

        Labels carry every grid delta *explicitly* — a combo value that
        happens to equal the registry default still renders (and, fed back
        through the runner's string path, still pins that field against
        runner sizing), so two axis values never collapse into one row.
        """
        fields = [field_name for field_name, _values in self.grid]
        value_axes = [values for _field_name, values in self.grid]
        out: List[Tuple[str, SchemeSpec]] = []
        seen = set()
        for scheme in self.schemes:
            if isinstance(scheme, str):
                base_name, base_deltas = parse_scheme_string(scheme)
            else:
                base_name, base_deltas = decompose_spec(resolve_spec(scheme))
            for combo in itertools.product(*value_axes):
                deltas = dict(base_deltas)
                deltas.update(zip(fields, combo))
                label = render_scheme_string(base_name, deltas)
                if label in seen:
                    continue
                seen.add(label)
                out.append((label, get_spec(base_name).with_(**deltas)))
        return out

    def bench_names(self) -> List[str]:
        """Benchmarks to sweep (all SPEC stand-ins when unspecified)."""
        return list(self.benchmarks) if self.benchmarks else benchmark_names()

    def bench_points(self) -> List[Dict[str, int]]:
        """Expanded benchmark-parameter combos (``[{}]`` when no axes).

        Same ordering convention as :meth:`points`: declaration order,
        last axis varying fastest, so reports are deterministic.
        """
        axes = [axis for axis, _values in self.bench_grid]
        value_axes = [values for _axis, values in self.bench_grid]
        return [
            dict(zip(axes, combo)) for combo in itertools.product(*value_axes)
        ]

    def serve_points(self) -> List[Dict[str, int]]:
        """Expanded serving-scenario combos (``[]`` when no serve axes)."""
        if not self.serve_grid:
            return []
        axes = [axis for axis, _values in self.serve_grid]
        value_axes = [values for _axis, values in self.serve_grid]
        return [
            dict(zip(axes, combo)) for combo in itertools.product(*value_axes)
        ]

    def names_for(self, combo: Mapping[str, int]) -> List[str]:
        """Benchmark names for one bench-grid combo (``wss`` applied).

        A ``wss`` override derives self-describing benchmark names
        (``"mcf@wss=8388608"``) that any process can resolve; without one
        this is just :meth:`bench_names`.
        """
        names = self.bench_names()
        wss = combo.get("wss")
        if wss is None:
            return names
        return [scaled_benchmark_name(name, wss) for name in names]


def sweep_order_digest(sweep: SweepSpec) -> str:
    """Digest of the grid-derived cell ordering a sweep's report will use.

    Report ordering is a function of the *grid alone* — bench combos in
    declaration order, then points, then benchmarks — never of worker
    topology, scheduling, or completion order. This digest captures
    exactly that ordering; it is stamped into the checkpoint journal
    header so ``--resume`` can refuse a journal whose report ordering
    would differ (and, equally, so resuming a local run on a fabric —
    or with a different worker count — is provably allowed: the digest
    is identical by construction).
    """
    ident = {
        "points": [label for label, _spec in sweep.points()],
        "bench_combos": sweep.bench_points(),
        "benchmarks": sweep.bench_names(),
        "serve_combos": sweep.serve_points(),
    }
    blob = json.dumps(ident, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:40]


class LocalExecutor:
    """The default sweep backend: this process's pool-based ``run_suite``.

    :func:`run_sweep` drives every cell through an *executor* so the
    local process pool and the distributed fabric
    (:class:`~repro.fabric.coordinator.FabricExecutor`) are pluggable
    behind one seam. An executor exposes ``run_suite``/``baselines``
    mirroring the runner's methods (minus ``workers``, which is the
    executor's own concern) plus ``stats()`` for the report's
    resilience block (None when there is nothing to report).
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def run_suite(
        self,
        runner: SimulationRunner,
        schemes,
        benchmarks,
        *,
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
    ):
        return runner.run_suite(
            schemes,
            benchmarks,
            workers=self.workers,
            progress=progress,
            retry=retry,
            failures=failures,
        )

    def baselines(
        self,
        runner: SimulationRunner,
        benchmarks,
        *,
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
    ):
        return runner.baselines(
            benchmarks,
            workers=self.workers,
            progress=progress,
            retry=retry,
            failures=failures,
        )

    def stats(self) -> Optional[Dict[str, object]]:
        return None


def run_sweep(
    sweep: SweepSpec,
    runner: Optional[SimulationRunner] = None,
    *,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    include_baselines: bool = True,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Union[SweepCheckpoint, str, Path, None] = None,
    resume: bool = False,
    executor: Optional[object] = None,
) -> Dict[str, object]:
    """Execute a sweep; returns a deterministic, JSON-safe report.

    ``report["cells"]`` holds one entry per (bench-grid combo, grid
    point, benchmark) with the point's full spec, the serialized
    :class:`SimResult`, and (when ``include_baselines``) the slowdown vs
    the insecure-DRAM baseline. A ``misses`` bench axis runs each combo
    on a derived runner (:meth:`SimulationRunner.derive`); a ``wss``
    axis derives the benchmark names themselves, so every cell records
    the miss budget and (possibly derived) benchmark it measured. Cells
    are ordered (bench combos, then points, then benchmarks) regardless
    of worker scheduling, and results are bitwise identical serial vs
    parallel and warm-cache vs cold — the experiment engine's core
    guarantee. A sweep with serve axes (:data:`SERVE_AXES`) runs
    multi-tenant serving scenarios instead — see :func:`_run_serve_sweep`.

    Resilience: cells that keep failing under ``retry`` are quarantined
    into ``report["resilience"]["quarantined"]`` instead of aborting the
    sweep. With a ``checkpoint`` path (or :class:`SweepCheckpoint`),
    every completed cell is journaled the moment it finishes;
    ``resume=True`` replays that journal and recomputes only the missing
    cells — bit-identical to an uninterrupted run, because
    :class:`SimResult` payloads are flat scalars and JSON round-trips
    them exactly. ``KeyboardInterrupt`` raises
    :class:`~repro.errors.SweepInterrupted` carrying the partial report
    (``resilience.interrupted = True``) after flushing the journal, so
    Ctrl-C never loses completed work.

    ``executor`` selects the cell backend: None means the local
    :class:`LocalExecutor` over ``workers`` processes; a
    :class:`~repro.fabric.coordinator.FabricExecutor` distributes cells
    over fabric workers (``workers`` is then ignored). The report is
    bit-identical either way — only ``resilience["fabric"]`` (executor
    scheduling counters) distinguishes the runs. Serve-axis sweeps run
    whole scenarios in-process and refuse a custom executor.
    """
    if runner is None:
        runner = SimulationRunner()
    if resume and checkpoint is None:
        raise SpecError("resume=True needs a checkpoint path")
    if executor is not None and sweep.serve_grid:
        raise SpecError(
            "serve-axis sweeps (tenants/shards) run whole scenarios in one "
            "process and cannot use a fabric/custom executor; drop the "
            "executor or the serve axes"
        )
    ckpt = (
        SweepCheckpoint(checkpoint)
        if isinstance(checkpoint, (str, Path))
        else checkpoint
    )
    points = sweep.points()
    completed: Dict[str, dict] = {}
    if ckpt is not None:
        completed = ckpt.open(
            sweep_fingerprint(sweep, runner),
            resume,
            order=sweep_order_digest(sweep),
        )
    if executor is None:
        executor = LocalExecutor(workers)
    try:
        if sweep.serve_grid:
            return _run_serve_sweep(
                sweep, runner, points, ckpt=ckpt, completed=completed
            )
        return _run_bench_sweep(
            sweep,
            runner,
            points,
            executor=executor,
            progress=progress,
            include_baselines=include_baselines,
            retry=retry,
            ckpt=ckpt,
            completed=completed,
        )
    finally:
        if ckpt is not None:
            ckpt.close()


def _resilience_section(
    counters: Mapping[str, int],
    failures: List[dict],
    interrupted: bool,
    fabric: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The ``report["resilience"]`` block (always present, JSON-safe).

    ``fabric`` carries the distributed executor's scheduling counters
    when one ran the sweep. Resilience is observability, not results —
    bit-identity comparisons between local and fabric runs strip this
    section, and everything outside it is topology-independent.
    """
    section: Dict[str, object] = {
        "executed": counters["executed"],
        "from_cache": counters["from_cache"],
        "resumed": counters["resumed"],
        "quarantined": list(failures),
    }
    if interrupted:
        section["interrupted"] = True
    if fabric is not None:
        section["fabric"] = fabric
    return section


def _run_bench_sweep(
    sweep: SweepSpec,
    runner: SimulationRunner,
    points: List[Tuple[str, SchemeSpec]],
    *,
    executor,
    progress: Optional[ProgressCallback],
    include_baselines: bool,
    retry: Optional[RetryPolicy],
    ckpt: Optional[SweepCheckpoint],
    completed: Dict[str, dict],
) -> Dict[str, object]:
    """The offline-replay branch of :func:`run_sweep` (see its docstring)."""
    labels = [label for label, _spec in points]
    combos = sweep.bench_points()
    multi_miss = any("misses" in combo for combo in combos)
    failures: List[dict] = []
    counters = {"executed": 0, "from_cache": 0, "resumed": 0}
    # One record per bench combo; cells/baselines fill in as they finish
    # (from the journal, the result cache, or a fresh replay), so a
    # partial report can be assembled at any interruption point.
    state: List[Dict[str, object]] = []

    def assemble(interrupted: bool) -> Dict[str, object]:
        cells: List[Dict[str, object]] = []
        baseline_rows: Dict[str, Dict[str, object]] = {}
        for rec in state:
            names = rec["names"]
            misses = rec["misses"]
            if include_baselines:
                for name in names:
                    payload = rec["baselines"].get(name)
                    if payload is not None:
                        key = f"{name}@misses={misses}" if multi_miss else name
                        baseline_rows[key] = payload
            for label, spec in points:
                for name in names:
                    payload = rec["cells"].get((label, name))
                    if payload is None:
                        continue  # quarantined, or not reached before Ctrl-C
                    cell: Dict[str, object] = {
                        "scheme": label,
                        "benchmark": name,
                        "misses": misses,
                        "spec": spec.to_dict(),
                        "result": payload,
                    }
                    base = (
                        rec["baselines"].get(name) if include_baselines else None
                    )
                    if base is not None:
                        cell["slowdown"] = payload["cycles"] / base["cycles"]
                    cells.append(cell)
        import repro

        return {
            "kind": "sweep",
            "version": getattr(repro, "__version__", "0"),
            "schemes": labels,
            "grid": {
                **{field_name: list(values) for field_name, values in sweep.grid},
                **{axis: list(values) for axis, values in sweep.bench_grid},
            },
            "benchmarks": sweep.bench_names(),
            "baselines": baseline_rows,
            "cells": cells,
            "resilience": _resilience_section(
                counters, failures, interrupted, fabric=executor.stats()
            ),
        }

    try:
        for combo in combos:
            names = sweep.names_for(combo)
            cell_runner = (
                runner.derive(misses_per_benchmark=combo["misses"])
                if "misses" in combo
                else runner
            )
            # Journal keys are the runner's canonical result digests —
            # every construction knob, seed and miss budget folded in, and
            # identical across resume boundaries by construction.
            keymap = {
                (label, name): cell_runner._cell_key(
                    cell_runner.sized_spec(label, name)[0], label, name
                )
                for label in labels
                for name in names
            }
            base_keys = {
                name: cell_runner.result_key("insecure", name) for name in names
            }
            rec: Dict[str, object] = {
                "names": names,
                "misses": cell_runner.misses,
                "cells": {},
                "baselines": {},
            }
            state.append(rec)
            for cell_id, key in keymap.items():
                if key in completed:
                    rec["cells"][cell_id] = completed[key]["result"]
                    counters["resumed"] += 1
            if include_baselines:
                for name, key in base_keys.items():
                    if key in completed:
                        rec["baselines"][name] = completed[key]["result"]
                        counters["resumed"] += 1

            def journal(
                label,
                name,
                result,
                cached,
                rec=rec,
                keymap=keymap,
                base_keys=base_keys,
                misses=cell_runner.misses,
            ):
                payload = dataclasses.asdict(result)
                if label == "insecure":
                    key = base_keys[name]
                    rec["baselines"][name] = payload
                else:
                    key = keymap[(label, name)]
                    rec["cells"][(label, name)] = payload
                if ckpt is not None:
                    ckpt.record(
                        key,
                        {
                            "scheme": label,
                            "benchmark": name,
                            "misses": misses,
                            "result": payload,
                        },
                    )
                counters["from_cache" if cached else "executed"] += 1
                # Journal first, then inject: a fault fired here never
                # loses the cell that just completed.
                fault_hook("sweep", f"{label}/{name}")
                if progress is not None:
                    progress(label, name, result, cached)

            owed = {
                label: [n for n in names if (label, n) not in rec["cells"]]
                for label in labels
            }
            # Feed the runner *labels*, not spec values: the string path
            # preserves every explicit grid delta (even one equal to a
            # registry default) against the runner's per-benchmark sizing.
            if all(len(missing) == len(names) for missing in owed.values()):
                # Fresh combo: one full-matrix call keeps cross-scheme
                # executor parallelism (pool or fabric alike).
                executor.run_suite(
                    cell_runner,
                    labels,
                    names,
                    progress=journal,
                    retry=retry,
                    failures=failures,
                )
            else:
                for label, missing in owed.items():
                    if missing:
                        executor.run_suite(
                            cell_runner,
                            [label],
                            missing,
                            progress=journal,
                            retry=retry,
                            failures=failures,
                        )
            if include_baselines:
                missing_base = [n for n in names if n not in rec["baselines"]]
                if missing_base:
                    executor.baselines(
                        cell_runner,
                        missing_base,
                        progress=journal,
                        retry=retry,
                        failures=failures,
                    )
    except KeyboardInterrupt:
        raise SweepInterrupted(
            "sweep interrupted; completed cells are journaled",
            report=assemble(True),
        ) from None
    return assemble(False)


def _run_serve_sweep(
    sweep: SweepSpec,
    runner: SimulationRunner,
    points: List[Tuple[str, SchemeSpec]],
    *,
    ckpt: Optional[SweepCheckpoint] = None,
    completed: Optional[Dict[str, dict]] = None,
) -> Dict[str, object]:
    """The serve branch of :func:`run_sweep`: scenario cells, no baselines.

    One cell per (grid point, tenants x shards combo): the benchmark
    list becomes the round-robin tenant roster of an
    :class:`~repro.serve.OramService` run, and the cell's ``result``
    carries the pool's total busy cycles (so :func:`sweep_table`'s
    megacycles rendering applies unchanged) next to the full per-tenant
    serve report. Insecure baselines are meaningless for a shared pool,
    so serve reports never carry them. Checkpointing journals whole
    scenario cells (a serve cell is one indivisible service run).
    """
    from repro.serve import OramService, ServeConfig, tenants_for

    completed = completed or {}
    names = sweep.bench_names()
    roster = ",".join(names)
    cells: List[Dict[str, object]] = []
    counters = {"executed": 0, "from_cache": 0, "resumed": 0}
    failures: List[dict] = []

    def assemble(interrupted: bool) -> Dict[str, object]:
        import repro

        return {
            "kind": "sweep",
            "version": getattr(repro, "__version__", "0"),
            "schemes": [label for label, _spec in points],
            "grid": {
                **{field_name: list(values) for field_name, values in sweep.grid},
                **{axis: list(values) for axis, values in sweep.serve_grid},
            },
            "benchmarks": [roster],
            "baselines": {},
            "cells": cells,
            "resilience": _resilience_section(counters, failures, interrupted),
        }

    try:
        for combo in sweep.serve_points():
            tenants = combo.get("tenants", 2)
            shards = combo.get("shards", 1)
            for label, spec in points:
                key = f"serve::{label}::tenants={tenants}::shards={shards}"
                if key in completed:
                    cells.append(completed[key]["cell"])
                    counters["resumed"] += 1
                    continue
                service = OramService(
                    tenants_for(names, tenants),
                    runner=runner,
                    config=ServeConfig(scheme=label, shards=shards),
                )
                service.run("serial")
                serve_report = service.report()
                cell = {
                    "scheme": label,
                    "benchmark": roster,
                    "tenants": tenants,
                    "shards": shards,
                    "misses": runner.misses,
                    "spec": spec.to_dict(),
                    "result": {"cycles": serve_report["totals"]["cycles"]},
                    "serve": serve_report,
                }
                cells.append(cell)
                counters["executed"] += 1
                if ckpt is not None:
                    ckpt.record(key, {"cell": cell})
                fault_hook("sweep", f"{label}/serve/{tenants}x{shards}")
    except KeyboardInterrupt:
        raise SweepInterrupted(
            "sweep interrupted; completed scenario cells are journaled",
            report=assemble(True),
        ) from None
    return assemble(False)


def sweep_table(report: Mapping[str, object]) -> str:
    """Render a sweep report as an aligned text table.

    One row per (bench-grid combo, grid point); cells are slowdowns vs
    insecure when the report carries baselines, raw megacycles
    otherwise. Bench-parameter axes fold into the row label (``wss``
    derivations are stripped back off the benchmark column names), so a
    combo never collapses into another combo's row.
    """
    # Columns are base benchmark names (derivations fold into row labels).
    names: List[str] = list(
        dict.fromkeys(
            str(name).partition("@")[0]
            for name in report["benchmarks"]  # type: ignore[union-attr]
        )
    )
    have_baselines = bool(report.get("baselines"))
    grid = report.get("grid", {})
    show_misses = "misses" in grid  # type: ignore[operator]
    table: Dict[str, Dict[str, float]] = {}
    for cell in report["cells"]:  # type: ignore[union-attr]
        bench, _sep, bench_suffix = str(cell["benchmark"]).partition("@")
        suffixes = [bench_suffix] if bench_suffix else []
        if show_misses:
            suffixes.append(f"misses={cell['misses']}")
        for serve_axis in SERVE_AXES:
            if serve_axis in cell:
                suffixes.append(f"{serve_axis}={cell[serve_axis]}")
        label = cell["scheme"] + (
            f" [{','.join(suffixes)}]" if suffixes else ""
        )
        value = (
            cell["slowdown"]
            if have_baselines
            else cell["result"]["cycles"] / 1e6
        )
        table.setdefault(label, {})[bench] = value
    for row in table.values():
        row["geomean"] = geometric_mean(
            [value for key, value in row.items() if key != "geomean"]
        )
    title = (
        "sweep: slowdown vs insecure"
        if have_baselines
        else "sweep: megacycles per benchmark"
    )
    # Rows are keyed by full spec labels, which outgrow format_table's
    # 10-column scheme field; pad the header ourselves.
    width = max((len(label) for label in table), default=10)
    lines = [title]
    header = f"{'scheme':>{width}} " + " ".join(f"{b:>7}" for b in names)
    lines.append(header + f" {'geomean':>8}")
    for label, row in table.items():
        cells = " ".join(f"{row.get(b, float('nan')):7.2f}" for b in names)
        lines.append(f"{label:>{width}} " + cells + f" {row['geomean']:8.2f}")
    return "\n".join(lines)
