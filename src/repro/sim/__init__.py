"""Full-system simulation: replay LLC miss traces against ORAM Frontends.

The flow mirrors the paper's methodology (§7.1.1): a trace-driven in-order
core with L1/L2 caches produces an LLC miss/eviction stream; the ORAM
controller (Frontend + Backend) services each event; DRAM timing comes
from the :mod:`repro.dram` model; per-event latency composes the Table 1
constants (Frontend/Backend latency, AES/SHA3) with the simulated tree
access count.
"""

from repro.sim.metrics import SimResult, slowdown_table
from repro.sim.replay import REPLAY_ENV, REPLAY_MODES, default_replay_mode
from repro.sim.result_cache import ResultCache
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec, run_sweep, sweep_table
from repro.sim.system import insecure_cycles, replay_trace
from repro.sim.timing import OramTimingModel
from repro.sim.trace_cache import TraceCache

__all__ = [
    "SimResult",
    "slowdown_table",
    "SimulationRunner",
    "SweepSpec",
    "run_sweep",
    "sweep_table",
    "insecure_cycles",
    "replay_trace",
    "REPLAY_ENV",
    "REPLAY_MODES",
    "default_replay_mode",
    "OramTimingModel",
    "TraceCache",
    "ResultCache",
]
