"""Journaled sweep checkpoints (``SWEEP_*.ckpt.jsonl``).

One JSON line per completed sweep cell, appended and flushed the moment
the cell finishes, keyed by the runner's canonical result digest (the
same key the on-disk result cache uses — every construction knob, seed,
miss budget and benchmark is folded in). A crash, ``kill -9`` or Ctrl-C
therefore loses at most the cell in flight; ``python -m repro sweep
--resume`` replays the journal and recomputes only the missing cells,
producing a report bit-identical to an uninterrupted run (JSON round-trips
Python floats exactly).

The first line is a header carrying a fingerprint of the sweep + runner
identity. Resuming against a journal written by a *different* sweep is
refused with a clear error instead of silently recomputing everything
(the cell keys would simply never match). A torn final line — the
signature of a mid-append crash — is dropped on load and the journal is
compacted before new appends.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError

#: Bump when the journal line format changes.
CHECKPOINT_VERSION = 1


def sweep_fingerprint(sweep, runner) -> str:
    """Digest of the sweep + runner identity guarding journal reuse.

    Coarser than the per-cell keys (which already encode everything): its
    job is to catch the human error of pointing ``--resume`` at the wrong
    journal, so it folds in the expanded point labels, the benchmark
    matrix, and the runner knobs that change every cell.
    """
    import repro

    ident = {
        "points": [label for label, _spec in sweep.points()],
        "benchmarks": sweep.bench_names(),
        "bench_grid": [[axis, list(values)] for axis, values in sweep.bench_grid],
        "serve_grid": [[axis, list(values)] for axis, values in sweep.serve_grid],
        "seed": runner.seed,
        "misses": runner.misses,
        "proc_ghz": repr(runner.proc_ghz),
        "version": getattr(repro, "__version__", "0"),
    }
    blob = json.dumps(ident, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:40]


def default_checkpoint_path(out_path: Union[str, Path]) -> Path:
    """Journal location derived from a report path (``X.json`` -> ``X.ckpt.jsonl``)."""
    out = Path(out_path)
    stem = out.name[: -len(".json")] if out.name.endswith(".json") else out.name
    return out.with_name(f"{stem}.ckpt.jsonl")


class SweepCheckpoint:
    """Append-only journal of completed sweep cells."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None
        self._seen: set = set()

    # -- lifecycle -------------------------------------------------------------

    def open(
        self, fingerprint: str, resume: bool, order: Optional[str] = None
    ) -> Dict[str, dict]:
        """Start journaling; returns the completed entries when resuming.

        ``resume=False`` truncates any existing journal and writes a fresh
        header. ``resume=True`` loads the journal (tolerating a torn final
        line), refuses a fingerprint mismatch, compacts the file back to
        header + valid entries, and returns ``{key: payload}``.

        ``order`` is the grid-derived cell-ordering digest
        (:func:`~repro.sim.sweep.sweep_order_digest`). It is stamped
        into the header and, on resume, checked against the journal's
        recorded value: a mismatch means the resumed report's cell
        ordering would differ from the original run's, so the resume is
        refused. Because the digest depends only on the grid — never on
        worker counts or fabric topology — resuming a local run on a
        fabric (or vice versa) always passes this check. Journals
        written before the field existed resume without the check.
        """
        entries: Dict[str, dict] = {}
        if resume:
            entries = self._read(fingerprint, order)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "sweep-checkpoint",
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
        }
        if order is not None:
            header["order"] = order
        # Rewrite rather than append: drops any torn tail and lets a
        # non-resume run reclaim a stale journal in place.
        self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        for key, payload in entries.items():
            self._fh.write(
                json.dumps({"key": key, "payload": payload}, sort_keys=True) + "\n"
            )
        self._fh.flush()
        self._seen = set(entries)
        return entries

    def _read(
        self, fingerprint: str, order: Optional[str] = None
    ) -> Dict[str, dict]:
        try:
            text = self.path.read_text("utf-8")
        except OSError:
            return {}
        lines = text.splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError:
            raise ConfigurationError(
                f"{self.path} is not a sweep checkpoint (bad header)"
            ) from None
        if (
            not isinstance(header, dict)
            or header.get("kind") != "sweep-checkpoint"
            or header.get("version") != CHECKPOINT_VERSION
        ):
            raise ConfigurationError(
                f"{self.path} is not a version-{CHECKPOINT_VERSION} sweep checkpoint"
            )
        if header.get("fingerprint") != fingerprint:
            raise ConfigurationError(
                f"{self.path} was written by a different sweep/runner "
                f"configuration; refusing to resume from it (delete the "
                f"file or drop --resume to start fresh)"
            )
        recorded_order = header.get("order")
        if (
            order is not None
            and recorded_order is not None
            and recorded_order != order
        ):
            raise ConfigurationError(
                f"{self.path} matches this sweep's fingerprint but records "
                f"a different cell ordering; resuming would reorder the "
                f"report's cells, so it is refused (delete the file or "
                f"drop --resume to start fresh)"
            )
        entries: Dict[str, dict] = {}
        for line in lines[1:]:
            try:
                record = json.loads(line)
                key = record["key"]
                payload = record["payload"]
            except (ValueError, KeyError, TypeError):
                # Torn tail from a mid-append crash: everything before it
                # is intact, everything after it is unreachable garbage.
                break
            entries[str(key)] = payload
        return entries

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- journaling ------------------------------------------------------------

    def record(self, key: str, payload: dict) -> None:
        """Append one completed cell (idempotent per key; flushed at once)."""
        if self._fh is None or key in self._seen:
            return
        self._seen.add(key)
        self._fh.write(
            json.dumps({"key": key, "payload": payload}, sort_keys=True) + "\n"
        )
        self._fh.flush()

    def __contains__(self, key: str) -> bool:
        return key in self._seen
