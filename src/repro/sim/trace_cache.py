"""Persistent on-disk cache of :class:`~repro.proc.hierarchy.MissTrace`.

Generating a miss trace means driving the two-level cache hierarchy over
hundreds of thousands of synthetic references — by far the most expensive
step of an experiment, and one whose output is fully determined by the
(benchmark, seed, processor config, miss budget, warmup) tuple. This cache
keys the serialized trace on exactly that tuple so repeated invocations —
including every worker of a parallel ``run_suite`` — skip cache simulation
entirely.

Robustness rules:

- entries are written atomically (temp file + ``os.replace``) so a crashed
  or concurrent writer never leaves a half-written entry visible;
- a corrupted, truncated, or version-skewed entry is treated as a miss
  (and unlinked best-effort), falling back to recomputation;
- an unwritable cache directory silently disables the cache rather than
  failing the experiment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import warnings
from pathlib import Path
from typing import List, Optional, Union

from repro.config import ProcessorConfig
from repro.errors import CacheCorruptionWarning
from repro.faults import fault_hook
from repro.proc.hierarchy import TRACE_VERSION, MissTrace

#: Environment variable controlling the default cache location. Unset means
#: the per-user default; a path overrides it; ``0``/``off``/``none`` disables.
CACHE_ENV = "REPRO_TRACE_CACHE"

_DISABLED_VALUES = {"0", "off", "none", "disable", "disabled"}

#: Per-process sequence for temp-file names (see result_cache._TMP_SEQ):
#: pid + sequence keeps concurrent writers — same-process threads and
#: separate fabric workers — off each other's temp files.
_TMP_SEQ = itertools.count()


def default_cache_dir() -> Optional[Path]:
    """Resolve the cache directory from the environment (None = disabled)."""
    value = os.environ.get(CACHE_ENV)
    if value is None:
        return Path.home() / ".cache" / "repro" / "traces"
    if value.strip().lower() in _DISABLED_VALUES or not value.strip():
        return None
    return Path(value)


def trace_key(
    bench_name: str,
    seed: int,
    proc: ProcessorConfig,
    max_llc_misses: int,
    warmup_refs: int,
) -> str:
    """Stable digest of everything that determines a trace's contents.

    The processor config is canonicalised field-by-field (sorted) so the
    key is independent of dataclass field ordering. The trace format
    version and package version are mixed in so format changes — and
    releases that may alter workload generation — invalidate old entries.
    """
    import repro

    parts = [
        f"format={TRACE_VERSION}",
        f"repro={getattr(repro, '__version__', '0')}",
        f"bench={bench_name}",
        f"seed={seed}",
        f"misses={max_llc_misses}",
        f"warmup={warmup_refs}",
    ]
    for key, value in sorted(dataclasses.asdict(proc).items()):
        parts.append(f"proc.{key}={value!r}")
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:40]


class TraceCache:
    """Directory of serialized miss traces keyed by :func:`trace_key`."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        # Hit/miss/store counters for tests and diagnostics.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0

    def path_for(self, key: str) -> Path:
        """Entry location for a key."""
        return self.root / f"{key}.trace"

    def __contains__(self, key: str) -> bool:
        """Whether an entry exists on disk (no validation, no counters)."""
        return self.path_for(key).exists()

    def keys(self) -> List[str]:
        """Sorted keys of every entry currently on disk."""
        suffix = ".trace"
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n[: -len(suffix)] for n in names if n.endswith(suffix))

    def _evict_corrupt(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.corrupt_evictions += 1
        warnings.warn(
            f"trace cache: evicted corrupt/stale entry {path.name}; recomputing",
            CacheCorruptionWarning,
            stacklevel=3,
        )

    def load(self, key: str) -> Optional[MissTrace]:
        """Return the cached trace, or None on miss/corruption."""
        path = self.path_for(key)
        fault_hook("cache.entry", f"trace/{key}", path)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            trace = MissTrace.from_bytes(data)
        except ValueError:
            # Corrupted or stale-format entry: drop it and recompute.
            self._evict_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def store(self, key: str, trace: MissTrace) -> bool:
        """Atomically persist a trace; returns False if the dir is unusable."""
        fault_hook("cache.write", "trace/begin")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_SEQ)}")
        try:
            tmp.write_bytes(trace.to_bytes())
            fault_hook("cache.write", "trace/tmp", tmp)
            os.replace(tmp, path)
            fault_hook("cache.write", "trace/replace", path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True
