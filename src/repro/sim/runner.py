"""Experiment orchestration: benchmarks x schemes with trace caching.

One cache simulation per benchmark produces a :class:`MissTrace`; the
trace is then replayed against every requested scheme (and the insecure
baseline), so all schemes see byte-identical miss streams — the paper's
methodology, and the property that makes scheme-vs-scheme ratios
meaningful at simulation scale.

Scale is controlled by ``misses_per_benchmark``; set the environment
variable ``REPRO_FULL=1`` (or pass explicit values) for longer runs.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.presets import build_frontend
from repro.proc.hierarchy import CacheHierarchy, MissTrace
from repro.sim.metrics import SimResult
from repro.sim.system import insecure_cycles, replay_trace
from repro.sim.timing import OramTimingModel
from repro.utils.rng import DeterministicRng
from repro.workloads.spec import SPEC_BENCHMARKS, benchmark


def default_miss_budget() -> int:
    """Per-benchmark LLC miss budget (env-tunable)."""
    if os.environ.get("REPRO_FULL"):
        return 50_000
    return 6_000


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


class SimulationRunner:
    """Caches miss traces and replays them against scheme presets."""

    def __init__(
        self,
        proc: ProcessorConfig = ProcessorConfig(),
        dram: Optional[DramConfig] = None,
        proc_ghz: float = 1.3,
        seed: int = 2015,
        misses_per_benchmark: Optional[int] = None,
        plb_capacity_bytes: int = 64 * 1024,
        onchip_entries: int = 2**10,
    ):
        self.proc = proc
        self.dram = dram if dram is not None else DramConfig()
        self.proc_ghz = proc_ghz
        self.seed = seed
        self.misses = (
            misses_per_benchmark
            if misses_per_benchmark is not None
            else default_miss_budget()
        )
        self.plb_capacity_bytes = plb_capacity_bytes
        self.onchip_entries = onchip_entries
        self._traces: Dict[str, MissTrace] = {}

    # -- traces -----------------------------------------------------------------

    def trace(self, bench_name: str) -> MissTrace:
        """Miss trace for a benchmark (cached)."""
        if bench_name not in self._traces:
            spec = benchmark(bench_name)
            hierarchy = CacheHierarchy(self.proc)
            rng = DeterministicRng(self.seed).fork(hash(bench_name) & 0xFFFF)
            # Warm the caches over ~2.5 working-set sweeps (capped) so the
            # measured region excludes compulsory misses, mirroring the
            # paper's 1B-instruction warmup.
            wss_lines = spec.wss_bytes // self.proc.line_bytes
            warmup = min(int(2.5 * wss_lines), 900_000)
            self._traces[bench_name] = hierarchy.run(
                spec.refs(rng),
                name=bench_name,
                max_llc_misses=self.misses,
                warmup_refs=warmup,
            )
        return self._traces[bench_name]

    # -- frontends ----------------------------------------------------------------

    def _blocks_needed(self, bench_name: str, block_bytes: int) -> int:
        wss = benchmark(bench_name).wss_bytes
        return _next_pow2(max(wss // block_bytes, 2))

    def build(self, scheme: str, bench_name: str, **overrides):
        """Instantiate a scheme preset sized for a benchmark's working set."""
        block_bytes = overrides.pop("block_bytes", self.proc.line_bytes)
        num_blocks = overrides.pop(
            "num_blocks", self._blocks_needed(bench_name, block_bytes)
        )
        kwargs = dict(
            num_blocks=num_blocks,
            block_bytes=block_bytes,
            rng=DeterministicRng(self.seed ^ 0xA5A5),
            onchip_entries=overrides.pop("onchip_entries", self.onchip_entries),
        )
        if scheme != "R_X8":
            kwargs["plb_capacity_bytes"] = overrides.pop(
                "plb_capacity_bytes", self.plb_capacity_bytes
            )
        kwargs.update(overrides)
        return build_frontend(scheme, **kwargs)

    def timing_for(self, frontend) -> OramTimingModel:
        """Timing model matched to a frontend's tree geometry."""
        if isinstance(frontend, RecursiveFrontend):
            return OramTimingModel.for_recursive(
                frontend.configs, self.dram, self.proc_ghz
            )
        return OramTimingModel.for_config(
            frontend.config, self.dram, self.proc_ghz, pmmac=frontend.pmmac
            if isinstance(frontend, PlbFrontend)
            else False,
        )

    # -- experiments ------------------------------------------------------------------

    def run_one(self, scheme: str, bench_name: str, **overrides) -> SimResult:
        """Replay one benchmark against one scheme."""
        trace = self.trace(bench_name)
        frontend = self.build(scheme, bench_name, **overrides)
        timing = self.timing_for(frontend)
        return replay_trace(
            frontend, trace, timing, proc=self.proc, scheme=scheme
        )

    def run_insecure(self, bench_name: str) -> SimResult:
        """Insecure-DRAM baseline for one benchmark."""
        return insecure_cycles(self.trace(bench_name), self.proc)

    def run_suite(
        self,
        schemes: Sequence[str],
        benchmarks: Optional[Iterable[str]] = None,
        **overrides,
    ) -> Dict[str, Dict[str, SimResult]]:
        """All (scheme, benchmark) pairs; results[scheme][benchmark]."""
        names = list(benchmarks) if benchmarks is not None else list(SPEC_BENCHMARKS)
        out: Dict[str, Dict[str, SimResult]] = {}
        for scheme in schemes:
            out[scheme] = {}
            for name in names:
                out[scheme][name] = self.run_one(scheme, name, **overrides)
        return out

    def baselines(
        self, benchmarks: Optional[Iterable[str]] = None
    ) -> Dict[str, SimResult]:
        """Insecure baselines keyed by benchmark."""
        names = list(benchmarks) if benchmarks is not None else list(SPEC_BENCHMARKS)
        return {name: self.run_insecure(name) for name in names}
