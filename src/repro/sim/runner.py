"""Experiment orchestration: benchmarks x schemes with trace caching.

One cache simulation per benchmark produces a :class:`MissTrace`; the
trace is then replayed against every requested scheme (and the insecure
baseline), so all schemes see byte-identical miss streams — the paper's
methodology, and the property that makes scheme-vs-scheme ratios
meaningful at simulation scale.

Trace seeding is fully deterministic: the per-benchmark RNG fork salt is
a CRC32 of the benchmark name, never the salted builtin ``hash`` (which
varies with ``PYTHONHASHSEED`` and across processes). That determinism
is what allows the scale-out layers stacked on top:

- traces are persisted to an on-disk :class:`TraceCache` keyed by
  (benchmark, seed, processor config, miss budget, warmup), so repeated
  invocations — and every worker process — skip cache simulation;
- trace *generation* itself is sharded across the worker pool: each cold
  benchmark is simulated by one worker and shipped back packed, instead
  of being generated serially in the parent;
- finished cells are persisted to an on-disk :class:`ResultCache`, so
  ``run_suite`` only replays cells whose configuration it has never seen
  — a repeated invocation performs zero ``replay_trace`` calls;
- ``run_suite`` fans the remaining cold (scheme, benchmark) matrix out
  over a process pool (``workers=`` or ``REPRO_WORKERS``), streaming
  completed cells through an optional ``progress`` callback, with
  results bitwise identical to the serial path.

Scale is controlled by ``misses_per_benchmark``; set the environment
variable ``REPRO_FULL=1`` (or pass explicit values) for longer runs.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.presets import build_frontend
from repro.proc.hierarchy import CacheHierarchy, MissTrace
from repro.sim.metrics import SimResult
from repro.sim.result_cache import ResultCache, default_result_cache_dir, result_key
from repro.sim.system import insecure_cycles, replay_trace
from repro.sim.timing import OramTimingModel
from repro.sim.trace_cache import TraceCache, default_cache_dir, trace_key
from repro.utils.rng import DeterministicRng
from repro.workloads.spec import SPEC_BENCHMARKS, benchmark

#: Environment variable supplying the default ``run_suite`` worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Streamed-cell callback: (scheme, benchmark, result, from_cache).
ProgressCallback = Callable[[str, str, SimResult, bool], None]


def default_miss_budget() -> int:
    """Per-benchmark LLC miss budget (env-tunable)."""
    if os.environ.get("REPRO_FULL"):
        return 50_000
    return 6_000


def default_workers() -> int:
    """Worker-pool size from ``REPRO_WORKERS`` (defaults to serial)."""
    try:
        return max(int(os.environ.get(WORKERS_ENV, "1")), 1)
    except ValueError:
        return 1


def stable_trace_salt(bench_name: str) -> int:
    """Process-independent RNG fork salt for a benchmark name.

    The builtin ``hash`` is salted per process (``PYTHONHASHSEED``), which
    would make traces — and therefore every scheme-vs-scheme ratio — vary
    between runs; CRC32 is stable everywhere.
    """
    return zlib.crc32(bench_name.encode("utf-8")) & 0xFFFF


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


class SimulationRunner:
    """Caches miss traces and replay results (in memory and on disk)."""

    def __init__(
        self,
        proc: ProcessorConfig = ProcessorConfig(),
        dram: Optional[DramConfig] = None,
        proc_ghz: float = 1.3,
        seed: int = 2015,
        misses_per_benchmark: Optional[int] = None,
        plb_capacity_bytes: int = 64 * 1024,
        onchip_entries: int = 2**10,
        cache_dir: Union[str, Path, None] = "auto",
        result_cache_dir: Union[str, Path, None] = "auto",
    ):
        self.proc = proc
        self.dram = dram if dram is not None else DramConfig()
        self.proc_ghz = proc_ghz
        self.seed = seed
        self.misses = (
            misses_per_benchmark
            if misses_per_benchmark is not None
            else default_miss_budget()
        )
        self.plb_capacity_bytes = plb_capacity_bytes
        self.onchip_entries = onchip_entries
        if cache_dir == "auto":
            cache_dir = default_cache_dir()
        self.trace_cache = TraceCache(cache_dir) if cache_dir is not None else None
        if result_cache_dir == "auto":
            result_cache_dir = default_result_cache_dir()
        self.result_cache = (
            ResultCache(result_cache_dir) if result_cache_dir is not None else None
        )
        self._traces: Dict[str, MissTrace] = {}

    # -- traces -----------------------------------------------------------------

    def _warmup_refs(self, bench_name: str) -> int:
        """Warm the caches over ~2.5 working-set sweeps (capped) so the
        measured region excludes compulsory misses, mirroring the paper's
        1B-instruction warmup."""
        wss_lines = benchmark(bench_name).wss_bytes // self.proc.line_bytes
        return min(int(2.5 * wss_lines), 900_000)

    def trace_cache_key(self, bench_name: str) -> str:
        """Disk-cache key for a benchmark under this runner's config."""
        return trace_key(
            bench_name, self.seed, self.proc, self.misses, self._warmup_refs(bench_name)
        )

    def trace(self, bench_name: str) -> MissTrace:
        """Miss trace for a benchmark (cached in memory and on disk)."""
        cached = self._traces.get(bench_name)
        if cached is not None:
            return cached
        loaded = self._trace_from_disk(bench_name)
        if loaded is not None:
            return loaded
        return self._generate_trace(bench_name)

    def _trace_from_disk(self, bench_name: str) -> Optional[MissTrace]:
        """Disk-cache lookup only (no generation); memoises on hit."""
        if self.trace_cache is None:
            return None
        loaded = self.trace_cache.load(self.trace_cache_key(bench_name))
        if loaded is not None and loaded.name == bench_name:
            self._traces[bench_name] = loaded
            return loaded
        return None

    def _generate_trace(self, bench_name: str) -> MissTrace:
        """Simulate the cache hierarchy to produce (and persist) a trace."""
        spec = benchmark(bench_name)
        warmup = self._warmup_refs(bench_name)
        hierarchy = CacheHierarchy(self.proc)
        rng = DeterministicRng(self.seed).fork(stable_trace_salt(bench_name))
        trace = hierarchy.run(
            spec.refs(rng),
            name=bench_name,
            max_llc_misses=self.misses,
            warmup_refs=warmup,
        )
        if self.trace_cache is not None:
            self.trace_cache.store(self.trace_cache_key(bench_name), trace)
        self._traces[bench_name] = trace
        return trace

    def _ensure_traces(self, names: Sequence[str], workers: int) -> None:
        """Materialise every named trace, sharding generation over workers.

        Benchmarks already in memory or on disk are loaded in-process;
        only genuinely cold traces are simulated, each by one worker (the
        worker also persists it to the shared disk cache). Generation is
        seeded per benchmark, never by pool scheduling, so sharded traces
        are bitwise identical to locally generated ones.
        """
        cold = [
            name
            for name in dict.fromkeys(names)
            if name not in self._traces and self._trace_from_disk(name) is None
        ]
        if len(cold) < 2 or workers <= 1:
            for name in cold:
                self._generate_trace(name)
            return
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cold)),
            initializer=_worker_init,
            initargs=(self._spawn_payload(), {}),
        ) as pool:
            futures = [pool.submit(_worker_trace, name) for name in cold]
            for future in as_completed(futures):
                name, packed = future.result()
                self._traces[name] = MissTrace.from_bytes(packed)

    # -- frontends ----------------------------------------------------------------

    def _blocks_needed(self, bench_name: str, block_bytes: int) -> int:
        wss = benchmark(bench_name).wss_bytes
        return _next_pow2(max(wss // block_bytes, 2))

    def build(self, scheme: str, bench_name: str, **overrides):
        """Instantiate a scheme preset sized for a benchmark's working set."""
        block_bytes = overrides.pop("block_bytes", self.proc.line_bytes)
        num_blocks = overrides.pop(
            "num_blocks", self._blocks_needed(bench_name, block_bytes)
        )
        kwargs = dict(
            num_blocks=num_blocks,
            block_bytes=block_bytes,
            rng=DeterministicRng(self.seed ^ 0xA5A5),
            onchip_entries=overrides.pop("onchip_entries", self.onchip_entries),
        )
        # Pop unconditionally: suite-wide overrides may carry the PLB size
        # even when the matrix includes non-PLB schemes (R_X8), whose
        # factories reject the kwarg.
        plb_capacity_bytes = overrides.pop(
            "plb_capacity_bytes", self.plb_capacity_bytes
        )
        if scheme != "R_X8":
            kwargs["plb_capacity_bytes"] = plb_capacity_bytes
        kwargs.update(overrides)
        return build_frontend(scheme, **kwargs)

    def timing_for(self, frontend) -> OramTimingModel:
        """Timing model matched to a frontend's tree geometry."""
        if isinstance(frontend, RecursiveFrontend):
            return OramTimingModel.for_recursive(
                frontend.configs, self.dram, self.proc_ghz
            )
        return OramTimingModel.for_config(
            frontend.config, self.dram, self.proc_ghz, pmmac=frontend.pmmac
            if isinstance(frontend, PlbFrontend)
            else False,
        )

    # -- experiments ------------------------------------------------------------------

    def result_key(self, scheme: str, bench_name: str, **overrides) -> str:
        """Result-cache key for one cell under this runner's config."""
        return result_key(
            scheme,
            bench_name,
            self.seed,
            self.proc,
            self.dram,
            self.proc_ghz,
            self.misses,
            self._warmup_refs(bench_name),
            self.plb_capacity_bytes,
            self.onchip_entries,
            overrides,
        )

    def _cached_result(self, scheme: str, bench_name: str, **overrides):
        """Result-cache lookup for one cell (None on miss or no cache)."""
        if self.result_cache is None:
            return None
        cached = self.result_cache.load(self.result_key(scheme, bench_name, **overrides))
        if cached is not None and (cached.scheme, cached.benchmark) == (
            scheme,
            bench_name,
        ):
            return cached
        return None

    def run_one(self, scheme: str, bench_name: str, **overrides) -> SimResult:
        """Replay one benchmark against one scheme (result-cached)."""
        cached = self._cached_result(scheme, bench_name, **overrides)
        if cached is not None:
            return cached
        trace = self.trace(bench_name)
        frontend = self.build(scheme, bench_name, **overrides)
        timing = self.timing_for(frontend)
        result = replay_trace(
            frontend, trace, timing, proc=self.proc, scheme=scheme
        )
        if self.result_cache is not None:
            self.result_cache.store(
                self.result_key(scheme, bench_name, **overrides), result
            )
        return result

    def run_insecure(self, bench_name: str) -> SimResult:
        """Insecure-DRAM baseline for one benchmark (result-cached)."""
        cached = self._cached_result("insecure", bench_name)
        if cached is not None:
            return cached
        result = insecure_cycles(self.trace(bench_name), self.proc)
        if self.result_cache is not None:
            self.result_cache.store(self.result_key("insecure", bench_name), result)
        return result

    def _spawn_payload(self) -> Dict[str, object]:
        """Constructor kwargs that recreate this runner in a worker process."""
        return dict(
            proc=self.proc,
            dram=self.dram,
            proc_ghz=self.proc_ghz,
            seed=self.seed,
            misses_per_benchmark=self.misses,
            plb_capacity_bytes=self.plb_capacity_bytes,
            onchip_entries=self.onchip_entries,
            cache_dir=self.trace_cache.root if self.trace_cache is not None else None,
            result_cache_dir=(
                self.result_cache.root if self.result_cache is not None else None
            ),
        )

    def run_suite(
        self,
        schemes: Sequence[str],
        benchmarks: Optional[Iterable[str]] = None,
        *,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        **overrides,
    ) -> Dict[str, Dict[str, SimResult]]:
        """All (scheme, benchmark) pairs; results[scheme][benchmark].

        Incremental: cells present in the result cache are served without
        touching traces or frontends; only cold cells are replayed — with
        ``workers > 1``, fanned out over a process pool (trace generation
        included). Every task derives its RNG from the runner seed alone
        (never from pool scheduling), so parallel results are bitwise
        identical to the serial path. ``progress`` is invoked once per
        cell, as it completes, with (scheme, benchmark, result, cached).
        """
        names = list(benchmarks) if benchmarks is not None else list(SPEC_BENCHMARKS)
        if workers is None:
            workers = default_workers()
        out: Dict[str, Dict[str, SimResult]] = {scheme: {} for scheme in schemes}
        cold: List[tuple] = []
        for scheme in schemes:
            for name in names:
                cached = self._cached_result(scheme, name, **overrides)
                if cached is not None:
                    out[scheme][name] = cached
                    if progress is not None:
                        progress(scheme, name, cached, True)
                else:
                    cold.append((scheme, name))
        if cold:
            self._ensure_traces([name for _scheme, name in cold], workers)
        if cold and (workers <= 1 or len(cold) < 2):
            for scheme, name in cold:
                result = self.run_one(scheme, name, **overrides)
                out[scheme][name] = result
                if progress is not None:
                    progress(scheme, name, result, False)
        elif cold:
            # Ship the packed traces to every worker so no process ever
            # re-simulates one; workers persist results to the shared
            # on-disk result cache themselves.
            packed_traces = {
                name: self._traces[name].to_bytes()
                for name in dict.fromkeys(name for _scheme, name in cold)
            }
            with ProcessPoolExecutor(
                max_workers=min(workers, len(cold)),
                initializer=_worker_init,
                initargs=(self._spawn_payload(), packed_traces),
            ) as pool:
                futures = [
                    pool.submit(_worker_run, scheme, name, overrides)
                    for scheme, name in cold
                ]
                for future in as_completed(futures):
                    scheme, name, result = future.result()
                    out[scheme][name] = result
                    if progress is not None:
                        progress(scheme, name, result, False)
        # Restore submission order (dicts preserve insertion order).
        return {
            scheme: {name: out[scheme][name] for name in names} for scheme in schemes
        }

    def baselines(
        self,
        benchmarks: Optional[Iterable[str]] = None,
        *,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> Dict[str, SimResult]:
        """Insecure baselines keyed by benchmark (cached and fanned out).

        The baseline arithmetic itself is trivial; what costs time is
        generating any missing trace, so cold benchmarks shard their
        trace generation across the worker pool exactly like
        :meth:`run_suite` — and finished baselines land in the result
        cache so ``python -m repro all`` has no serial tail work.
        """
        names = list(benchmarks) if benchmarks is not None else list(SPEC_BENCHMARKS)
        if workers is None:
            workers = default_workers()
        out: Dict[str, SimResult] = {}
        cold: List[str] = []
        for name in names:
            cached = self._cached_result("insecure", name)
            if cached is not None:
                out[name] = cached
                if progress is not None:
                    progress("insecure", name, cached, True)
            else:
                cold.append(name)
        if cold:
            self._ensure_traces(cold, workers)
            for name in cold:
                result = self.run_insecure(name)
                out[name] = result
                if progress is not None:
                    progress("insecure", name, result, False)
        return {name: out[name] for name in names}


# -- worker-process plumbing (module level for picklability) -------------------

_WORKER_RUNNER: Optional[SimulationRunner] = None


def _worker_init(
    payload: Dict[str, object], packed_traces: Dict[str, bytes]
) -> None:
    """Build one runner per worker process, pre-seeded with the traces."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = SimulationRunner(**payload)  # type: ignore[arg-type]
    _WORKER_RUNNER._traces = {
        name: MissTrace.from_bytes(data) for name, data in packed_traces.items()
    }


def _worker_run(scheme: str, bench_name: str, overrides: Dict[str, object]):
    """Execute one (scheme, benchmark) cell in the worker's runner."""
    assert _WORKER_RUNNER is not None, "worker pool not initialised"
    return scheme, bench_name, _WORKER_RUNNER.run_one(scheme, bench_name, **overrides)


def _worker_trace(bench_name: str):
    """Generate (or disk-load) one miss trace in a worker; returns it packed."""
    assert _WORKER_RUNNER is not None, "worker pool not initialised"
    return bench_name, _WORKER_RUNNER.trace(bench_name).to_bytes()
