"""Experiment orchestration: benchmarks x schemes with trace caching.

One cache simulation per benchmark produces a :class:`MissTrace`; the
trace is then replayed against every requested scheme (and the insecure
baseline), so all schemes see byte-identical miss streams — the paper's
methodology, and the property that makes scheme-vs-scheme ratios
meaningful at simulation scale.

Schemes are addressed declaratively: every run accepts a registered name
(``"PIC_X32"``), a spec mini-language string
(``"PIC_X32:plb=32KiB,storage=array"``, ``"P_X16:storage=columnar"``), or
a :class:`~repro.spec.SchemeSpec` value. Because the result-cache key is
the sized spec's canonical serialization, every storage backend (object,
array, columnar) keys its own cells automatically. The runner sizes the spec for the
benchmark's working set (``num_blocks``, ``block_bytes``,
``onchip_entries``, ``plb_capacity_bytes``) *underneath* any explicit
deltas, builds the frontend via ``spec.build()``, and keys the result
cache on the sized spec's canonical serialization — there is no
hand-maintained override list anywhere in the cache-key path.

Trace seeding is fully deterministic: the per-benchmark RNG fork salt is
a CRC32 of the benchmark name, never the salted builtin ``hash`` (which
varies with ``PYTHONHASHSEED`` and across processes). That determinism
is what allows the scale-out layers stacked on top:

- traces are persisted to an on-disk :class:`TraceCache` keyed by
  (benchmark, seed, processor config, miss budget, warmup), so repeated
  invocations — and every worker process — skip cache simulation;
- trace *generation* itself is sharded across the worker pool: each cold
  benchmark is simulated by one worker and shipped back packed, instead
  of being generated serially in the parent;
- finished cells are persisted to an on-disk :class:`ResultCache`, so
  ``run_suite`` only replays cells whose configuration it has never seen
  — a repeated invocation performs zero ``replay_trace`` calls;
- ``run_suite`` fans the remaining cold (scheme, benchmark) matrix out
  over a process pool (``workers=`` or ``REPRO_WORKERS``), streaming
  completed cells through an optional ``progress`` callback, with
  results bitwise identical to the serial path.

``force=True`` (or ``REPRO_FORCE=1``, or ``python -m repro --force ...``)
bypasses *loads* from both on-disk caches without disabling them: every
cell is recomputed and the fresh trace/result overwrites the cached entry
— a refresh, not an opt-out.

Scale is controlled by ``misses_per_benchmark``; set the environment
variable ``REPRO_FULL=1`` (or pass explicit values) for longer runs.
"""

from __future__ import annotations

import os
import time
import zlib
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.faults import RetryPolicy, fault_hook, install_from_env
from repro.proc.hierarchy import CacheHierarchy, MissTrace
from repro.sim.metrics import SimResult
from repro.sim.result_cache import ResultCache, default_result_cache_dir, result_key
from repro.sim.system import insecure_cycles, replay_trace
from repro.sim.timing import OramTimingModel, timing_for_frontend
from repro.sim.trace_cache import TraceCache, default_cache_dir, trace_key
from repro.spec import (
    SchemeSpec,
    decompose_spec,
    get_spec,
    parse_scheme_string,
    render_scheme_string,
    resolve_spec,
)
from repro.utils.rng import DeterministicRng
from repro.workloads.spec import SPEC_BENCHMARKS, benchmark

#: Environment variable supplying the default ``run_suite`` worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable enabling cache-bypassing (refresh) runs.
FORCE_ENV = "REPRO_FORCE"

#: A scheme argument: registered name, spec string, or SchemeSpec value.
SchemeLike = Union[str, SchemeSpec]

#: Streamed-cell callback: (scheme label, benchmark, result, from_cache).
ProgressCallback = Callable[[str, str, SimResult, bool], None]


def _quarantine_entry(label: str, name: str, attempts: int, error: BaseException):
    """Report record for a cell that failed every re-dispatch."""
    return {
        "scheme": label,
        "benchmark": name,
        "attempts": attempts,
        "error": f"{type(error).__name__}: {error}",
    }


def default_miss_budget() -> int:
    """Per-benchmark LLC miss budget (env-tunable)."""
    if os.environ.get("REPRO_FULL"):
        return 50_000
    return 6_000


def default_workers() -> int:
    """Worker-pool size from ``REPRO_WORKERS`` (defaults to serial)."""
    try:
        return max(int(os.environ.get(WORKERS_ENV, "1")), 1)
    except ValueError:
        return 1


def default_force() -> bool:
    """Cache-refresh default from ``REPRO_FORCE`` (off unless truthy)."""
    return os.environ.get(FORCE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def stable_trace_salt(bench_name: str) -> int:
    """Process-independent RNG fork salt for a benchmark name.

    The builtin ``hash`` is salted per process (``PYTHONHASHSEED``), which
    would make traces — and therefore every scheme-vs-scheme ratio — vary
    between runs; CRC32 is stable everywhere.
    """
    return zlib.crc32(bench_name.encode("utf-8")) & 0xFFFF


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


class SimulationRunner:
    """Caches miss traces and replay results (in memory and on disk)."""

    def __init__(
        self,
        proc: ProcessorConfig = ProcessorConfig(),
        dram: Optional[DramConfig] = None,
        proc_ghz: float = 1.3,
        seed: int = 2015,
        misses_per_benchmark: Optional[int] = None,
        plb_capacity_bytes: int = 64 * 1024,
        onchip_entries: int = 2**10,
        cache_dir: Union[str, Path, None] = "auto",
        result_cache_dir: Union[str, Path, None] = "auto",
        force: Optional[bool] = None,
    ):
        self.proc = proc
        self.dram = dram if dram is not None else DramConfig()
        self.proc_ghz = proc_ghz
        self.seed = seed
        self.misses = (
            misses_per_benchmark
            if misses_per_benchmark is not None
            else default_miss_budget()
        )
        self.plb_capacity_bytes = plb_capacity_bytes
        self.onchip_entries = onchip_entries
        self.force = default_force() if force is None else bool(force)
        if cache_dir == "auto":
            cache_dir = default_cache_dir()
        self.trace_cache = TraceCache(cache_dir) if cache_dir is not None else None
        if result_cache_dir == "auto":
            result_cache_dir = default_result_cache_dir()
        self.result_cache = (
            ResultCache(result_cache_dir) if result_cache_dir is not None else None
        )
        self._traces: Dict[str, MissTrace] = {}

    # -- traces -----------------------------------------------------------------

    def _warmup_refs(self, bench_name: str) -> int:
        """Warm the caches over ~2.5 working-set sweeps (capped) so the
        measured region excludes compulsory misses, mirroring the paper's
        1B-instruction warmup."""
        wss_lines = benchmark(bench_name).wss_bytes // self.proc.line_bytes
        return min(int(2.5 * wss_lines), 900_000)

    def trace_cache_key(self, bench_name: str) -> str:
        """Disk-cache key for a benchmark under this runner's config."""
        return trace_key(
            bench_name, self.seed, self.proc, self.misses, self._warmup_refs(bench_name)
        )

    def trace(self, bench_name: str) -> MissTrace:
        """Miss trace for a benchmark (cached in memory and on disk)."""
        cached = self._traces.get(bench_name)
        if cached is not None:
            return cached
        loaded = self._trace_from_disk(bench_name)
        if loaded is not None:
            return loaded
        return self._generate_trace(bench_name)

    def _trace_from_disk(self, bench_name: str) -> Optional[MissTrace]:
        """Disk-cache lookup only (no generation); memoises on hit.

        ``force`` treats the disk cache as cold so the trace is
        re-simulated (and the entry refreshed by :meth:`_generate_trace`).
        """
        if self.trace_cache is None or self.force:
            return None
        loaded = self.trace_cache.load(self.trace_cache_key(bench_name))
        if loaded is not None and loaded.name == bench_name:
            self._traces[bench_name] = loaded
            return loaded
        return None

    def _generate_trace(self, bench_name: str) -> MissTrace:
        """Simulate the cache hierarchy to produce (and persist) a trace."""
        spec = benchmark(bench_name)
        warmup = self._warmup_refs(bench_name)
        hierarchy = CacheHierarchy(self.proc)
        rng = DeterministicRng(self.seed).fork(stable_trace_salt(bench_name))
        trace = hierarchy.run(
            spec.refs(rng),
            name=bench_name,
            max_llc_misses=self.misses,
            warmup_refs=warmup,
        )
        if self.trace_cache is not None:
            self.trace_cache.store(self.trace_cache_key(bench_name), trace)
        self._traces[bench_name] = trace
        return trace

    def _ensure_traces(self, names: Sequence[str], workers: int) -> None:
        """Materialise every named trace, sharding generation over workers.

        Benchmarks already in memory or on disk are loaded in-process;
        only genuinely cold traces are simulated, each by one worker (the
        worker also persists it to the shared disk cache). Generation is
        seeded per benchmark, never by pool scheduling, so sharded traces
        are bitwise identical to locally generated ones.
        """
        cold = [
            name
            for name in dict.fromkeys(names)
            if name not in self._traces and self._trace_from_disk(name) is None
        ]
        if len(cold) < 2 or workers <= 1:
            for name in cold:
                self._generate_trace(name)
            return
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cold)),
            initializer=_worker_init,
            initargs=(self._spawn_payload(), {}),
        ) as pool:
            futures = [pool.submit(_worker_trace, name) for name in cold]
            for future in as_completed(futures):
                name, packed = future.result()
                self._traces[name] = MissTrace.from_bytes(packed)

    # -- scheme specs -----------------------------------------------------------

    def _blocks_needed(self, bench_name: str, block_bytes: int) -> int:
        wss = benchmark(bench_name).wss_bytes
        return _next_pow2(max(wss // block_bytes, 2))

    def sized_spec(
        self, scheme: SchemeLike, bench_name: str, **overrides
    ) -> Tuple[SchemeSpec, str]:
        """(spec sized for the benchmark, display label) for one cell.

        Runner-level sizing — ``block_bytes`` from the processor line,
        ``num_blocks`` from the benchmark's working set, this runner's
        ``onchip_entries``/``plb_capacity_bytes`` — is applied to the
        scheme's registered base, *underneath* the scheme's own explicit
        deltas (a spec-string suffix or SchemeSpec field changes) and the
        per-call ``overrides``. Unknown override keys raise
        :class:`~repro.errors.SpecError` naming the valid spec fields.

        The label is the spec's normalized mini-language image before
        sizing (``"PC_X32"``, ``"PIC_X32:plb_capacity_bytes=8192"``), so
        result tables stay keyed by the paper's scheme names.

        Spec *strings* keep every delta they wrote, even one equal to the
        registry default (``"PC_X32:onchip=2048"`` pins 2048 though the
        base already says 2048) — the parse is authoritative. A bare
        ``SchemeSpec`` value carries no record of which fields were set
        deliberately, so its deltas are recovered by diffing against the
        nearest base; to pin a field *at* a registry default, spell the
        scheme as a string or pass a per-call override.
        """
        base_name, deltas, label = self._resolve(scheme)
        merged = dict(deltas)
        merged.update(overrides)
        block_bytes = merged.get("block_bytes", self.proc.line_bytes)
        sizing = dict(
            block_bytes=block_bytes,
            num_blocks=self._blocks_needed(bench_name, block_bytes),
            onchip_entries=self.onchip_entries,
            plb_capacity_bytes=self.plb_capacity_bytes,
        )
        sizing.update(merged)
        return get_spec(base_name).with_(**sizing), label

    @staticmethod
    def _resolve(scheme: SchemeLike) -> Tuple[str, Dict[str, object], str]:
        """(base name, explicit deltas, normalized label) for a scheme.

        Strings go through the mini-language parser so their deltas are
        exactly what the user wrote; SchemeSpec values are decomposed
        against the registry (see :meth:`sized_spec`).
        """
        if isinstance(scheme, str):
            name, deltas = parse_scheme_string(scheme)
        else:
            name, deltas = decompose_spec(resolve_spec(scheme))
        return name, deltas, render_scheme_string(name, deltas)

    def build(self, scheme: SchemeLike, bench_name: str, **overrides):
        """Instantiate a scheme sized for a benchmark's working set."""
        spec, _label = self.sized_spec(scheme, bench_name, **overrides)
        return self._build_spec(spec)

    def _build_spec(self, spec: SchemeSpec):
        return spec.build(rng=DeterministicRng(self.seed ^ 0xA5A5))

    def timing_for(self, frontend) -> OramTimingModel:
        """Timing model matched to a frontend's tree geometry."""
        return timing_for_frontend(frontend, self.dram, self.proc_ghz)

    # -- experiments ------------------------------------------------------------------

    def result_key(self, scheme: SchemeLike, bench_name: str, **overrides) -> str:
        """Result-cache key for one cell under this runner's config.

        ``scheme="insecure"`` keys the DRAM baseline (no spec involved);
        anything else is keyed on the display label plus the
        benchmark-sized spec's canonical serialization, so every
        construction knob re-keys automatically — and two spellings of
        one configuration with different labels (``"PC_X32"`` plus an
        override vs ``"PC_X32:plb=8KiB"``) occupy distinct entries
        instead of overwriting each other (``SimResult.scheme`` carries
        the label, so the label is part of the result's identity).
        """
        if scheme == "insecure":
            canonical = "insecure"
        else:
            spec, label = self.sized_spec(scheme, bench_name, **overrides)
            canonical = f"{label}::{spec.canonical()}"
        return result_key(
            canonical,
            bench_name,
            self.seed,
            self.proc,
            self.dram,
            self.proc_ghz,
            self.misses,
            self._warmup_refs(bench_name),
        )

    def _load_cached(self, key: str, label: str, bench_name: str):
        """Result-cache lookup for one cell (None on miss/force/no cache)."""
        if self.result_cache is None or self.force:
            return None
        cached = self.result_cache.load(key)
        if cached is not None and (cached.scheme, cached.benchmark) == (
            label,
            bench_name,
        ):
            return cached
        return None

    def _cell_key(self, spec: SchemeSpec, label: str, bench_name: str) -> str:
        return result_key(
            f"{label}::{spec.canonical()}",
            bench_name,
            self.seed,
            self.proc,
            self.dram,
            self.proc_ghz,
            self.misses,
            self._warmup_refs(bench_name),
        )

    def _run_cell(
        self, spec: SchemeSpec, label: str, bench_name: str, attempt: int = 1
    ) -> SimResult:
        """Replay one benchmark against one sized spec (result-cached)."""
        fault_hook("cell", f"{label}/{bench_name}/{attempt}")
        key = self._cell_key(spec, label, bench_name)
        cached = self._load_cached(key, label, bench_name)
        if cached is not None:
            return cached
        trace = self.trace(bench_name)
        frontend = self._build_spec(spec)
        timing = self.timing_for(frontend)
        result = replay_trace(
            frontend, trace, timing, proc=self.proc, scheme=label
        )
        if self.result_cache is not None:
            self.result_cache.store(key, result)
        return result

    def run_one(
        self, scheme: SchemeLike, bench_name: str, **overrides
    ) -> SimResult:
        """Replay one benchmark against one scheme (result-cached)."""
        spec, label = self.sized_spec(scheme, bench_name, **overrides)
        return self._run_cell(spec, label, bench_name)

    def run_insecure(self, bench_name: str, attempt: int = 1) -> SimResult:
        """Insecure-DRAM baseline for one benchmark (result-cached)."""
        fault_hook("cell", f"insecure/{bench_name}/{attempt}")
        key = self.result_key("insecure", bench_name)
        cached = self._load_cached(key, "insecure", bench_name)
        if cached is not None:
            return cached
        result = insecure_cycles(self.trace(bench_name), self.proc)
        if self.result_cache is not None:
            self.result_cache.store(key, result)
        return result

    def derive(self, **changes) -> "SimulationRunner":
        """A runner with constructor fields replaced, caches shared.

        The derived runner keeps this runner's processor/DRAM config,
        seed and on-disk cache locations (the same payload a worker
        process is built from) with ``changes`` applied on top — e.g.
        ``runner.derive(misses_per_benchmark=2000)`` for a sweep axis
        over the miss budget. In-memory trace state is *not* shared: a
        different budget means different traces by construction.
        """
        payload = self._spawn_payload()
        unknown = sorted(set(changes) - set(payload))
        if unknown:
            raise TypeError(
                f"unknown runner field(s) {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(payload))}"
            )
        payload.update(changes)
        return SimulationRunner(**payload)  # type: ignore[arg-type]

    def _spawn_payload(self) -> Dict[str, object]:
        """Constructor kwargs that recreate this runner in a worker process."""
        return dict(
            proc=self.proc,
            dram=self.dram,
            proc_ghz=self.proc_ghz,
            seed=self.seed,
            misses_per_benchmark=self.misses,
            plb_capacity_bytes=self.plb_capacity_bytes,
            onchip_entries=self.onchip_entries,
            cache_dir=self.trace_cache.root if self.trace_cache is not None else None,
            result_cache_dir=(
                self.result_cache.root if self.result_cache is not None else None
            ),
            force=self.force,
        )

    def _with_retry(
        self,
        run_attempt: Callable[[int], SimResult],
        label: str,
        name: str,
        retry: RetryPolicy,
        failures: Optional[List[dict]],
    ) -> Optional[SimResult]:
        """Run one cell with deterministic backoff; None when quarantined.

        ``KeyboardInterrupt`` always propagates (Ctrl-C must reach the
        sweep's checkpoint handler, never burn retry budget). With
        ``failures=None`` the final error re-raises; otherwise the cell is
        quarantined into ``failures`` and the suite continues.
        """
        last_error: Optional[BaseException] = None
        for attempt in range(1, retry.attempts + 1):
            delay = retry.delay(attempt)
            if delay:
                time.sleep(delay)
            try:
                return run_attempt(attempt)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                last_error = exc
        if failures is None:
            raise last_error
        failures.append(_quarantine_entry(label, name, retry.attempts, last_error))
        return None

    def run_suite(
        self,
        schemes: Sequence[SchemeLike],
        benchmarks: Optional[Iterable[str]] = None,
        *,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
        **overrides,
    ) -> Dict[str, Dict[str, SimResult]]:
        """All (scheme, benchmark) pairs; results[scheme label][benchmark].

        ``schemes`` entries may be registered names, spec strings, or
        SchemeSpec values; the output is keyed by each scheme's normalized
        label (duplicates collapse to one row). Incremental: cells present
        in the result cache are served without touching traces or
        frontends; only cold cells are replayed — with ``workers > 1``,
        fanned out over a process pool (trace generation included). Every
        task derives its RNG from the runner seed alone (never from pool
        scheduling), so parallel results are bitwise identical to the
        serial path. ``progress`` is invoked once per cell, as it
        completes, with (scheme label, benchmark, result, cached).

        Self-healing: a cell that raises is re-dispatched under ``retry``
        (default :meth:`RetryPolicy.from_env`) with exponential backoff —
        a crashed pool worker rebuilds the pool, and (pool mode only)
        ``retry.timeout`` bounds how long the suite waits without any cell
        completing before the stalled pool is abandoned and rebuilt. A
        cell that fails every attempt is quarantined into ``failures``
        (and omitted from the returned mapping) when a list is supplied;
        with ``failures=None`` the last error propagates.
        """
        names = list(benchmarks) if benchmarks is not None else list(SPEC_BENCHMARKS)
        if workers is None:
            workers = default_workers()
        if retry is None:
            retry = RetryPolicy.from_env()
        # One sized spec per (scheme row, benchmark) cell; rows keyed by
        # normalized label, first occurrence wins.
        rows: Dict[str, Dict[str, SchemeSpec]] = {}
        for scheme in schemes:
            _name, _deltas, label = self._resolve(scheme)
            if label in rows:
                continue
            rows[label] = {
                name: self.sized_spec(scheme, name, **overrides)[0]
                for name in names
            }
        out: Dict[str, Dict[str, SimResult]] = {label: {} for label in rows}
        cold: List[Tuple[str, str, SchemeSpec]] = []
        for label, cell_specs in rows.items():
            for name, spec in cell_specs.items():
                cached = self._load_cached(
                    self._cell_key(spec, label, name), label, name
                )
                if cached is not None:
                    out[label][name] = cached
                    if progress is not None:
                        progress(label, name, cached, True)
                else:
                    cold.append((label, name, spec))
        if cold:
            self._ensure_traces([name for _label, name, _spec in cold], workers)
        if cold and (workers <= 1 or len(cold) < 2):
            for label, name, spec in cold:
                result = self._with_retry(
                    lambda attempt, s=spec, l=label, n=name: self._run_cell(
                        s, l, n, attempt=attempt
                    ),
                    label,
                    name,
                    retry,
                    failures,
                )
                if result is None:
                    continue  # quarantined
                out[label][name] = result
                if progress is not None:
                    progress(label, name, result, False)
        elif cold:
            self._run_cold_pool(
                cold, workers, out, progress, retry, failures
            )
        # Restore submission order (dicts preserve insertion order);
        # quarantined cells are simply absent from their row.
        return {
            label: {name: out[label][name] for name in names if name in out[label]}
            for label in rows
        }

    def _run_cold_pool(
        self,
        cold: List[Tuple[str, str, SchemeSpec]],
        workers: int,
        out: Dict[str, Dict[str, SimResult]],
        progress: Optional[ProgressCallback],
        retry: RetryPolicy,
        failures: Optional[List[dict]],
    ) -> None:
        """Fan cold cells over a process pool that survives worker death.

        Each round builds a fresh pool for the cells still owed. A cell
        whose future raises is re-dispatched next round at ``attempt + 1``
        (or quarantined once the budget is spent); a ``BrokenProcessPool``
        or a ``retry.timeout`` window with no completion abandons the
        whole round — never-ran cells keep their attempt number so fault
        plans keyed on attempts stay deterministic. Workers persist
        results to the shared on-disk result cache themselves, so a cell
        completed by a round that later breaks is served from the cache
        when re-dispatched.
        """
        # Ship the packed traces to every worker so no process ever
        # re-simulates one.
        packed_traces = {
            name: self._traces[name].to_bytes()
            for name in dict.fromkeys(name for _label, name, _spec in cold)
        }
        todo: List[Tuple[str, str, SchemeSpec, int]] = [
            (label, name, spec, 1) for label, name, spec in cold
        ]

        def requeue(cell, error: BaseException) -> None:
            label, name, spec, attempt = cell
            if attempt >= retry.attempts:
                if failures is None:
                    raise error
                failures.append(_quarantine_entry(label, name, attempt, error))
            else:
                todo.append((label, name, spec, attempt + 1))

        round_no = 1
        while todo:
            if round_no > 1:
                time.sleep(retry.delay(round_no))
            batch, todo = todo, []
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(batch)),
                initializer=_worker_init,
                initargs=(self._spawn_payload(), packed_traces),
            )
            broken = False
            try:
                fut_map = {
                    pool.submit(_worker_cell, label, name, spec, attempt): (
                        label,
                        name,
                        spec,
                        attempt,
                    )
                    for label, name, spec, attempt in batch
                }
                pending = set(fut_map)
                while pending:
                    done, pending = wait(
                        pending, timeout=retry.timeout, return_when=FIRST_COMPLETED
                    )
                    if not done:
                        # Nothing completed inside the timeout window: the
                        # pool is stalled. Abandon it (a truly hung worker
                        # is left behind; a finite stall drains on its own)
                        # and charge every in-flight cell one attempt.
                        broken = True
                        stall = TimeoutError(
                            f"no cell completed within {retry.timeout}s"
                        )
                        for future in pending:
                            requeue(fut_map[future], stall)
                        break
                    for future in done:
                        cell = fut_map[future]
                        try:
                            label, name, result = future.result()
                        except KeyboardInterrupt:
                            raise
                        except BrokenProcessPool as exc:
                            broken = True
                            requeue(cell, exc)
                        except Exception as exc:
                            requeue(cell, exc)
                        else:
                            out[label][name] = result
                            if progress is not None:
                                progress(label, name, result, False)
                    if broken:
                        # The pool is dead; cells still queued never ran,
                        # so they re-dispatch at their current attempt.
                        for future in pending:
                            todo.append(fut_map[future])
                        break
            finally:
                pool.shutdown(wait=not broken, cancel_futures=True)
            round_no += 1

    def baselines(
        self,
        benchmarks: Optional[Iterable[str]] = None,
        *,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
    ) -> Dict[str, SimResult]:
        """Insecure baselines keyed by benchmark (cached and fanned out).

        The baseline arithmetic itself is trivial; what costs time is
        generating any missing trace, so cold benchmarks shard their
        trace generation across the worker pool exactly like
        :meth:`run_suite` — and finished baselines land in the result
        cache so ``python -m repro all`` has no serial tail work. Retry
        and quarantine semantics match :meth:`run_suite` (quarantined
        benchmarks are absent from the returned mapping).
        """
        names = list(benchmarks) if benchmarks is not None else list(SPEC_BENCHMARKS)
        if workers is None:
            workers = default_workers()
        if retry is None:
            retry = RetryPolicy.from_env()
        out: Dict[str, SimResult] = {}
        cold: List[str] = []
        for name in names:
            cached = self._load_cached(
                self.result_key("insecure", name), "insecure", name
            )
            if cached is not None:
                out[name] = cached
                if progress is not None:
                    progress("insecure", name, cached, True)
            else:
                cold.append(name)
        if cold:
            self._ensure_traces(cold, workers)
            for name in cold:
                result = self._with_retry(
                    lambda attempt, n=name: self.run_insecure(n, attempt=attempt),
                    "insecure",
                    name,
                    retry,
                    failures,
                )
                if result is None:
                    continue  # quarantined
                out[name] = result
                if progress is not None:
                    progress("insecure", name, result, False)
        return {name: out[name] for name in names if name in out}


# -- worker-process plumbing (module level for picklability) -------------------

_WORKER_RUNNER: Optional[SimulationRunner] = None


def _worker_init(
    payload: Dict[str, object], packed_traces: Dict[str, bytes]
) -> None:
    """Build one runner per worker process, pre-seeded with the traces."""
    global _WORKER_RUNNER
    # A freshly spawned (or respawned-after-crash) worker re-installs the
    # fault plan from REPRO_FAULTS; occurrence counters restart with the
    # process, which is why cross-process plans key on the attempt number.
    install_from_env()
    _WORKER_RUNNER = SimulationRunner(**payload)  # type: ignore[arg-type]
    _WORKER_RUNNER._traces = {
        name: MissTrace.from_bytes(data) for name, data in packed_traces.items()
    }


def _worker_cell(label: str, bench_name: str, spec: SchemeSpec, attempt: int = 1):
    """Execute one sized (spec, benchmark) cell in the worker's runner.

    The parent ships the fully-sized spec, so the worker neither re-sizes
    nor consults the scheme registry — custom registered schemes work
    without re-registration in the pool.
    """
    assert _WORKER_RUNNER is not None, "worker pool not initialised"
    fault_hook("worker", f"{label}/{bench_name}/{attempt}")
    return (
        label,
        bench_name,
        _WORKER_RUNNER._run_cell(spec, label, bench_name, attempt=attempt),
    )


def _worker_trace(bench_name: str):
    """Generate (or disk-load) one miss trace in a worker; returns it packed."""
    assert _WORKER_RUNNER is not None, "worker pool not initialised"
    return bench_name, _WORKER_RUNNER.trace(bench_name).to_bytes()
