"""Replay engine: drive a Frontend with an LLC miss trace and total cycles.

Cycle accounting for a trace (in-order, single-issue, Table 1):

    instructions x 1                   base CPI
  + mem_refs x L1_latency              every reference probes L1
  + l2_hits x L2_latency               L1 misses served by L2
  + sum over LLC events of miss latency

For the insecure baseline the event latency is the measured average DRAM
access (58 cycles); for ORAM it comes from :class:`OramTimingModel` with
the Frontend's actual per-event tree-access count.
"""

from __future__ import annotations

from typing import Optional

from repro.backend.ops import Op
from repro.config import ProcessorConfig
from repro.frontend.base import Frontend
from repro.proc.hierarchy import MissTrace
from repro.sim.metrics import SimResult
from repro.sim.timing import OramTimingModel


def base_cycles(trace: MissTrace, proc: ProcessorConfig) -> float:
    """Cycles spent outside the LLC-miss path."""
    return (
        trace.instructions
        + trace.mem_refs * proc.l1_latency
        + trace.l2_hits * proc.l2_latency
    )


def insecure_cycles(
    trace: MissTrace, proc: ProcessorConfig = ProcessorConfig()
) -> SimResult:
    """Baseline: the same trace on a conventional DRAM system."""
    cycles = base_cycles(trace, proc) + len(trace.events) * proc.insecure_dram_latency
    return SimResult(
        benchmark=trace.name,
        scheme="insecure",
        cycles=cycles,
        instructions=trace.instructions,
        llc_misses=trace.llc_misses,
        oram_accesses=len(trace.events),
        tree_accesses=0,
        data_bytes=len(trace.events) * proc.line_bytes,
        mpki=trace.mpki,
    )


def _replay_cycles_scalar(
    frontend: Frontend,
    trace: MissTrace,
    timing: OramTimingModel,
    cycles,
    lines_per_block: int,
    payload: bytes,
):
    """The historical per-event replay loop (``REPRO_REPLAY=scalar``).

    The latency model is a pure function of the per-event tree-access
    count, which takes only a handful of distinct values; memoising it
    keeps the replay loop free of repeated float composition (the same
    float is accumulated in the same order, so cycles are bit-identical).
    """
    access = frontend.access
    latency_for: dict = {}
    for event in trace.events:
        block_addr = event.line_addr // lines_per_block
        if event.is_write:
            result = access(block_addr, Op.WRITE, payload)
        else:
            result = access(block_addr, Op.READ)
        n = result.tree_accesses
        latency = latency_for.get(n)
        if latency is None:
            latency_for[n] = latency = timing.miss_latency(n)
        cycles += latency
    return cycles


def replay_trace(
    frontend: Frontend,
    trace: MissTrace,
    timing: OramTimingModel,
    proc: ProcessorConfig = ProcessorConfig(),
    scheme: str = "oram",
    block_bytes: Optional[int] = None,
    mode: Optional[str] = None,
) -> SimResult:
    """Feed every LLC miss/eviction through the Frontend and sum latency.

    ``mode`` selects the replay kernel: ``"batched"`` (the default — the
    columnar pipeline of :mod:`repro.sim.replay`) or ``"scalar"`` (the
    historical per-event loop). ``None`` defers to ``REPRO_REPLAY``. The
    two kernels are bit-identical in every simulated outcome — SimResult,
    frontend statistics, and final tree contents — a property pinned by
    the lockstep differential suite; the choice is performance-only and
    therefore never part of any result-cache key.
    """
    from repro.sim.replay import replay_cycles_batched, resolve_replay_mode

    mode = resolve_replay_mode(mode)
    if block_bytes is None:
        config = getattr(frontend, "config", None)
        if config is not None:
            block_bytes = config.block_bytes
        else:
            configs = getattr(frontend, "configs", None)
            if not configs:
                raise TypeError(
                    f"{type(frontend).__name__} exposes neither 'config' nor "
                    "'configs'; pass block_bytes explicitly"
                )
            block_bytes = configs[0].block_bytes
    lines_per_block = max(block_bytes // proc.line_bytes, 1)
    payload = bytes(block_bytes)
    cycles = base_cycles(trace, proc)
    data_bytes0 = frontend.data_bytes_moved
    posmap_bytes0 = frontend.posmap_bytes_moved
    # PRF leaf-derivation accounting (PLB/unified frontends own a crypto
    # suite; the recursive and linear baselines derive no PRF leaves).
    # Deltas, because a caller may hand the same suite to several replays.
    crypto = getattr(frontend, "crypto", None)
    prf_calls0 = crypto.prf.call_count if crypto is not None else 0
    prf_hits0 = crypto.prf.cache_hits if crypto is not None else 0

    kernel = (
        replay_cycles_batched if mode == "batched" else _replay_cycles_scalar
    )
    cycles = kernel(frontend, trace, timing, cycles, lines_per_block, payload)

    stats = frontend.stats
    plb_hit_rate = (
        stats.plb_hits / (stats.plb_hits + stats.plb_misses)
        if (stats.plb_hits + stats.plb_misses)
        else 0.0
    )
    return SimResult(
        benchmark=trace.name,
        scheme=scheme,
        cycles=cycles,
        instructions=trace.instructions,
        llc_misses=trace.llc_misses,
        oram_accesses=len(trace.events),
        tree_accesses=stats.tree_accesses,
        data_bytes=frontend.data_bytes_moved - data_bytes0,
        posmap_bytes=frontend.posmap_bytes_moved - posmap_bytes0,
        plb_hit_rate=plb_hit_rate,
        mpki=trace.mpki,
        prf_calls=(crypto.prf.call_count - prf_calls0) if crypto is not None else 0,
        prf_cache_hits=(
            (crypto.prf.cache_hits - prf_hits0) if crypto is not None else 0
        ),
    )
