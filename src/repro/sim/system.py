"""Replay engine: drive a Frontend with an LLC miss trace and total cycles.

Cycle accounting for a trace (in-order, single-issue, Table 1):

    instructions x 1                   base CPI
  + mem_refs x L1_latency              every reference probes L1
  + l2_hits x L2_latency               L1 misses served by L2
  + sum over LLC events of miss latency

For the insecure baseline the event latency is the measured average DRAM
access (58 cycles); for ORAM it comes from :class:`OramTimingModel` with
the Frontend's actual per-event tree-access count.
"""

from __future__ import annotations

from typing import Optional

from repro.config import ProcessorConfig
from repro.frontend.base import Frontend
from repro.proc.hierarchy import MissTrace
from repro.sim.metrics import SimResult
from repro.sim.timing import OramTimingModel


def base_cycles(trace: MissTrace, proc: ProcessorConfig) -> float:
    """Cycles spent outside the LLC-miss path."""
    return (
        trace.instructions
        + trace.mem_refs * proc.l1_latency
        + trace.l2_hits * proc.l2_latency
    )


def insecure_cycles(
    trace: MissTrace, proc: ProcessorConfig = ProcessorConfig()
) -> SimResult:
    """Baseline: the same trace on a conventional DRAM system."""
    cycles = base_cycles(trace, proc) + len(trace.events) * proc.insecure_dram_latency
    return SimResult(
        benchmark=trace.name,
        scheme="insecure",
        cycles=cycles,
        instructions=trace.instructions,
        llc_misses=trace.llc_misses,
        oram_accesses=len(trace.events),
        tree_accesses=0,
        data_bytes=len(trace.events) * proc.line_bytes,
        mpki=trace.mpki,
    )


def replay_trace(
    frontend: Frontend,
    trace: MissTrace,
    timing: OramTimingModel,
    proc: ProcessorConfig = ProcessorConfig(),
    scheme: str = "oram",
    block_bytes: Optional[int] = None,
    mode: Optional[str] = None,
) -> SimResult:
    """Feed every LLC miss/eviction through the Frontend and sum latency.

    ``mode`` selects the replay kernel: ``"batched"`` (the default — the
    columnar pipeline of :mod:`repro.sim.replay`), ``"scalar"`` (the
    historical per-event loop) or ``"compiled"`` (the optional C core of
    :mod:`repro.sim.native`; degrades to batched with a warning when the
    extension is unbuilt). ``None`` defers to ``REPRO_REPLAY``. The
    kernels are bit-identical in every simulated outcome — SimResult,
    frontend statistics, and final tree contents — a property pinned by
    the lockstep differential suite; the choice is performance-only and
    therefore never part of any result-cache key.

    Both kernels run on a :class:`~repro.sim.engine.ReplayEngine` — the
    same access core the :mod:`repro.serve` layer drives with live
    request batches, so serving inherits every bit-identity guarantee the
    differential harnesses prove here.
    """
    from repro.sim.engine import ReplayEngine
    from repro.sim.replay import resolve_replay_mode

    mode = resolve_replay_mode(mode)
    engine = ReplayEngine(frontend, timing, proc=proc, block_bytes=block_bytes)
    engine.cycles = base_cycles(trace, proc)
    if mode == "compiled":
        from repro.sim.native import load_native_core

        engine.enable_native(load_native_core())
        engine.run_trace(trace)
    elif mode == "batched":
        engine.run_trace(trace)
    else:
        engine.run_trace_scalar(trace)
    return engine.result(trace, scheme)
