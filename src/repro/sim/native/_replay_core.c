/* _replay_core: the compiled replay inner loop (REPRO_REPLAY=compiled).
 *
 * A hand-written CPython extension fusing the hot per-access work of the
 * replay pipeline over the columnar data the Python layers already keep
 * unboxed:
 *
 * - translate_block_addrs: line->block translation straight off the
 *   int64 buffer of a numpy trace column (zero-copy via PEP 3118);
 * - run_access_loop: the per-event driver loop (operand selection,
 *   frontend.access call, tree-access-count collection) without
 *   interpreter dispatch between events;
 * - accumulate: the event-ordered left-fold of per-event latencies onto
 *   the running cycle count, in C doubles (bit-identical to CPython
 *   float += which performs the same IEEE-754 additions);
 * - drain_scalar / place_greedy: the columnar Path ORAM read-path
 *   drain, stash merge and greedy deepest-first eviction transcribed
 *   from repro.backend.columnar over the storage's addr/leaf arena
 *   columns, read zero-copy through the buffer protocol.
 *
 * Bit-identity contract: every function is a line-for-line transcription
 * of the Python spelling it replaces — same traversal order, same
 * duplicate/out-of-range validation with byte-identical error messages,
 * same LIFO candidate/pool placement, same float operand order. The
 * lockstep differential harnesses (tests/test_replay_differential.py,
 * tests/test_columnar_differential.py, tests/test_native_replay.py) and
 * the golden digests enforce this.
 *
 * Buffer discipline: drain_scalar acquires the addr/leaf column buffers
 * on entry and releases them before returning on every path (the arena
 * may grow — array('q').extend — between the drain and the eviction, and
 * CPython refuses to resize an array with exported buffers).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ------------------------------------------------------------------ */
/* small helpers                                                       */
/* ------------------------------------------------------------------ */

static PyObject *str_tree_accesses; /* interned "tree_accesses" */

/* bit_length() of a non-negative int64, matching Python's int.bit_length. */
static inline int
bit_length64(long long x)
{
    if (x == 0)
        return 0;
#if defined(__GNUC__) || defined(__clang__)
    return 64 - __builtin_clzll((unsigned long long)x);
#else
    int n = 0;
    unsigned long long u = (unsigned long long)x;
    while (u) {
        u >>= 1;
        n++;
    }
    return n;
#endif
}

/* An acquired int64 column: raw pointer + element count. */
typedef struct {
    Py_buffer view;
    const long long *data;
    Py_ssize_t len;
    int acquired;
} I64Col;

/* Acquire a 1-D contiguous signed 64-bit buffer (array('q') / numpy
 * int64).  Returns 0 on success, -1 with an exception set otherwise. */
static int
i64col_acquire(PyObject *obj, I64Col *col, const char *what)
{
    col->acquired = 0;
    if (PyObject_GetBuffer(obj, &col->view, PyBUF_FORMAT | PyBUF_ND) < 0)
        return -1;
    col->acquired = 1;
    if (col->view.ndim != 1 || col->view.itemsize != 8 ||
        (col->view.format != NULL && col->view.format[0] != 'q' &&
         col->view.format[0] != 'l' && col->view.format[0] != 'n')) {
        PyBuffer_Release(&col->view);
        col->acquired = 0;
        PyErr_Format(PyExc_TypeError,
                     "%s must be a 1-D int64 column (array('q') or numpy "
                     "int64)", what);
        return -1;
    }
    col->data = (const long long *)col->view.buf;
    col->len = col->view.shape ? col->view.shape[0]
                               : col->view.len / col->view.itemsize;
    return 0;
}

static void
i64col_release(I64Col *col)
{
    if (col->acquired) {
        PyBuffer_Release(&col->view);
        col->acquired = 0;
    }
}

/* ------------------------------------------------------------------ */
/* translate_block_addrs                                               */
/* ------------------------------------------------------------------ */

/* Floor division for int64 with a positive divisor (Python // semantics:
 * rounds toward negative infinity, unlike C's truncation). */
static inline long long
floordiv64(long long a, long long b)
{
    long long q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        q -= 1;
    return q;
}

static PyObject *
translate_block_addrs(PyObject *self, PyObject *args)
{
    PyObject *line_addrs;
    long long lpb;
    if (!PyArg_ParseTuple(args, "OL:translate_block_addrs", &line_addrs,
                          &lpb))
        return NULL;
    if (lpb < 1) {
        PyErr_Format(PyExc_ValueError,
                     "lines_per_block must be >= 1, got %lld", lpb);
        return NULL;
    }

    I64Col col;
    if (i64col_acquire(line_addrs, &col, "line_addrs") == 0) {
        PyObject *out = PyList_New(col.len);
        if (out == NULL) {
            i64col_release(&col);
            return NULL;
        }
        int pow2 = (lpb & (lpb - 1)) == 0;
        int shift = bit_length64(lpb) - 1;
        for (Py_ssize_t i = 0; i < col.len; i++) {
            long long v = col.data[i];
            if (lpb != 1)
                /* Arithmetic shift == floor division for a power-of-two
                 * divisor; general case uses Python floor semantics. */
                v = pow2 ? (v >> shift) : floordiv64(v, lpb);
            PyObject *boxed = PyLong_FromLongLong(v);
            if (boxed == NULL) {
                Py_DECREF(out);
                i64col_release(&col);
                return NULL;
            }
            PyList_SET_ITEM(out, i, boxed);
        }
        i64col_release(&col);
        return out;
    }

    /* Not a buffer exporter (plain list/tuple fallback): same results as
     * the pure-Python kernel via the generic protocol. */
    PyErr_Clear();
    if (lpb == 1)
        return PySequence_List(line_addrs);
    PyObject *seq =
        PySequence_Fast(line_addrs, "line_addrs must be a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    PyObject *divisor = PyLong_FromLongLong(lpb);
    if (divisor == NULL) {
        Py_DECREF(seq);
        return NULL;
    }
    PyObject *out = PyList_New(n);
    if (out == NULL) {
        Py_DECREF(divisor);
        Py_DECREF(seq);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *q = PyNumber_FloorDivide(items[i], divisor);
        if (q == NULL) {
            Py_DECREF(out);
            Py_DECREF(divisor);
            Py_DECREF(seq);
            return NULL;
        }
        PyList_SET_ITEM(out, i, q);
    }
    Py_DECREF(divisor);
    Py_DECREF(seq);
    return out;
}

/* ------------------------------------------------------------------ */
/* run_access_loop                                                     */
/* ------------------------------------------------------------------ */

static PyObject *
run_access_loop(PyObject *self, PyObject *args)
{
    PyObject *access, *addrs, *writes, *read_op, *write_op, *payload;
    if (!PyArg_ParseTuple(args, "OOOOOO:run_access_loop", &access, &addrs,
                          &writes, &read_op, &write_op, &payload))
        return NULL;

    PyObject *addr_seq = PySequence_Fast(addrs, "addrs must be a sequence");
    if (addr_seq == NULL)
        return NULL;
    PyObject *write_seq =
        PySequence_Fast(writes, "writes must be a sequence");
    if (write_seq == NULL) {
        Py_DECREF(addr_seq);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(addr_seq);
    Py_ssize_t nw = PySequence_Fast_GET_SIZE(write_seq);
    if (nw < n)
        n = nw; /* zip() semantics: stop at the shorter column */

    PyObject *out = PyList_New(n);
    if (out == NULL)
        goto fail;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *addr = PySequence_Fast_GET_ITEM(addr_seq, i);
        int w = PyObject_IsTrue(PySequence_Fast_GET_ITEM(write_seq, i));
        if (w < 0)
            goto fail;
        PyObject *result;
        if (w)
            result = PyObject_CallFunctionObjArgs(access, addr, write_op,
                                                  payload, NULL);
        else
            result = PyObject_CallFunctionObjArgs(access, addr, read_op,
                                                  NULL);
        if (result == NULL)
            goto fail;
        PyObject *ta = PyObject_GetAttr(result, str_tree_accesses);
        Py_DECREF(result);
        if (ta == NULL)
            goto fail;
        PyList_SET_ITEM(out, i, ta);
    }
    Py_DECREF(addr_seq);
    Py_DECREF(write_seq);
    return out;

fail:
    /* A partially filled PyList_New(n) list holds NULL slots; fill them
     * before the container is released. */
    if (out != NULL) {
        for (Py_ssize_t i = 0; i < n; i++) {
            if (PyList_GET_ITEM(out, i) == NULL) {
                Py_INCREF(Py_None);
                PyList_SET_ITEM(out, i, Py_None);
            }
        }
        Py_DECREF(out);
    }
    Py_DECREF(addr_seq);
    Py_DECREF(write_seq);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* accumulate                                                          */
/* ------------------------------------------------------------------ */

static PyObject *
accumulate(PyObject *self, PyObject *args)
{
    PyObject *start, *latencies;
    if (!PyArg_ParseTuple(args, "OO:accumulate", &start, &latencies))
        return NULL;
    PyObject *seq =
        PySequence_Fast(latencies, "latencies must be a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);

    if (PyFloat_CheckExact(start)) {
        double total = PyFloat_AS_DOUBLE(start);
        Py_ssize_t i = 0;
        for (; i < n; i++) {
            PyObject *item = items[i];
            if (!PyFloat_CheckExact(item))
                break;
            /* One IEEE-754 double addition per event, in event order —
             * exactly CPython's float.__add__ fold. */
            total += PyFloat_AS_DOUBLE(item);
        }
        if (i == n) {
            Py_DECREF(seq);
            return PyFloat_FromDouble(total);
        }
        /* Mixed operand types (the dict-fallback latency path): finish
         * with the generic protocol so operand *types* match the
         * interpreted kernel, not just their values. */
        PyObject *acc = PyFloat_FromDouble(total);
        if (acc == NULL) {
            Py_DECREF(seq);
            return NULL;
        }
        for (; i < n; i++) {
            PyObject *next = PyNumber_Add(acc, items[i]);
            Py_DECREF(acc);
            if (next == NULL) {
                Py_DECREF(seq);
                return NULL;
            }
            acc = next;
        }
        Py_DECREF(seq);
        return acc;
    }

    PyObject *acc = start;
    Py_INCREF(acc);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *next = PyNumber_Add(acc, items[i]);
        Py_DECREF(acc);
        if (next == NULL) {
            Py_DECREF(seq);
            return NULL;
        }
        acc = next;
    }
    Py_DECREF(seq);
    return acc;
}

/* ------------------------------------------------------------------ */
/* drain_scalar                                                        */
/* ------------------------------------------------------------------ */

/* Raise the scalar kernel's duplicate-block ValueError.  Python formats
 * the address with f"{a:#x}" — "0x" + lowercase hex, "0x0" for zero,
 * sign before the prefix — spelled out via snprintf because
 * PyErr_Format has no 64-bit hex conversion. */
static void
raise_duplicate(long long addr)
{
    char buf[32];
    if (addr < 0)
        snprintf(buf, sizeof(buf), "-0x%llx",
                 (unsigned long long)(-(unsigned long long)addr));
    else
        snprintf(buf, sizeof(buf), "0x%llx", (unsigned long long)addr);
    PyErr_Format(PyExc_ValueError, "duplicate block %s in stash", buf);
}

static void
raise_leaf_range(long long leaf_label, int levels)
{
    PyErr_Format(PyExc_ValueError,
                 "leaf label %lld out of range for %d-level tree",
                 leaf_label, levels);
}

/* drain_scalar(path, addr_col, leaf_col, stash_slots, slot, addr, leaf,
 *              levels, by_depth, drained_flat, resident) -> slot | None
 *
 * The columnar backend's fused drain + depth grouping (the scalar, i.e.
 * non-vectorised, spelling) over the arena columns: stash residents are
 * grouped first (insertion order), then every path bucket root->leaf is
 * snapshotted into drained_flat and its slots grouped by legal eviction
 * depth, with the same duplicate-block and leaf-range validation (and
 * byte-identical messages) as repro.backend.columnar.  Returns the slot
 * holding the block of interest, or None when it is absent (the caller
 * allocates, exactly as the interpreted kernel does).
 */
static PyObject *
drain_scalar(PyObject *self, PyObject *args)
{
    PyObject *path, *addr_obj, *leaf_obj, *stash, *slot_in;
    long long addr, leaf;
    int levels;
    PyObject *by_depth, *drained_flat, *resident;
    if (!PyArg_ParseTuple(args, "OOOOOLLiOOO:drain_scalar", &path,
                          &addr_obj, &leaf_obj, &stash, &slot_in, &addr,
                          &leaf, &levels, &by_depth, &drained_flat,
                          &resident))
        return NULL;
    if (!PyList_Check(path) || !PyDict_Check(stash) ||
        !PyList_Check(by_depth) || !PyList_Check(drained_flat) ||
        !PyList_Check(resident)) {
        PyErr_SetString(PyExc_TypeError,
                        "drain_scalar expects list/dict containers");
        return NULL;
    }

    I64Col addr_col = {0}, leaf_col = {0};
    if (i64col_acquire(addr_obj, &addr_col, "addr_col") < 0)
        return NULL;
    if (i64col_acquire(leaf_obj, &leaf_col, "leaf_col") < 0) {
        i64col_release(&addr_col);
        return NULL;
    }

    PyObject *slot = (slot_in == Py_None) ? NULL : slot_in;
    Py_XINCREF(slot);
    long long slot_val = 0;
    if (slot != NULL) {
        slot_val = PyLong_AsLongLong(slot);
        if (slot_val == -1 && PyErr_Occurred())
            goto fail;
    }
    int stash_occupied = PyDict_GET_SIZE(stash) > 0;
    Py_ssize_t nlevels = PyList_GET_SIZE(by_depth);

    /* -- stash residents: group by depth in insertion order ---------- */
    if (stash_occupied) {
        PyObject *key, *value;
        Py_ssize_t pos = 0;
        while (PyDict_Next(stash, &pos, &key, &value)) {
            long long s = PyLong_AsLongLong(value);
            if (s == -1 && PyErr_Occurred())
                goto fail;
            if (slot != NULL && s == slot_val)
                continue; /* the block of interest is grouped last */
            if (s < 0 || s >= leaf_col.len) {
                PyErr_Format(PyExc_IndexError,
                             "stash slot %lld outside the arena", s);
                goto fail;
            }
            int depth = levels - bit_length64(leaf_col.data[s] ^ leaf);
            if (depth < 0) {
                raise_leaf_range(leaf_col.data[s], levels);
                goto fail;
            }
            if (depth >= nlevels) {
                PyErr_Format(PyExc_IndexError,
                             "eviction depth %d outside by_depth", depth);
                goto fail;
            }
            if (PyList_Append(PyList_GET_ITEM(by_depth, depth), value) < 0)
                goto fail;
            if (PyList_Append(resident, value) < 0)
                goto fail;
        }
    }

    /* -- path drain: snapshot + depth grouping, root->leaf ----------- */
    Py_ssize_t path_len = PyList_GET_SIZE(path);
    for (Py_ssize_t li = 0; li < path_len; li++) {
        PyObject *lst = PyList_GET_ITEM(path, li);
        if (!PyList_Check(lst)) {
            PyErr_SetString(PyExc_TypeError,
                            "path buckets must be slot lists");
            goto fail;
        }
        Py_ssize_t blen = PyList_GET_SIZE(lst);
        if (blen == 0)
            continue;
        /* flat merge-ordered snapshot first, exactly like the Python
         * kernel (the error path identifies the drained prefix from it). */
        Py_ssize_t flat_len = PyList_GET_SIZE(drained_flat);
        if (PyList_SetSlice(drained_flat, flat_len, flat_len, lst) < 0)
            goto fail;
        for (Py_ssize_t bi = 0; bi < blen; bi++) {
            PyObject *s_obj = PyList_GET_ITEM(lst, bi);
            long long s = PyLong_AsLongLong(s_obj);
            if (s == -1 && PyErr_Occurred())
                goto fail;
            if (s < 0 || s >= addr_col.len) {
                PyErr_Format(PyExc_IndexError,
                             "bucket slot %lld outside the arena", s);
                goto fail;
            }
            long long a = addr_col.data[s];
            if (a == addr) {
                if (slot != NULL) {
                    raise_duplicate(a);
                    goto fail;
                }
                slot = s_obj;
                Py_INCREF(slot);
                slot_val = s;
                continue;
            }
            if (stash_occupied) {
                PyObject *a_boxed = PyLong_FromLongLong(a);
                if (a_boxed == NULL)
                    goto fail;
                int dup = PyDict_Contains(stash, a_boxed);
                Py_DECREF(a_boxed);
                if (dup < 0)
                    goto fail;
                if (dup) {
                    raise_duplicate(a);
                    goto fail;
                }
            }
            int depth = levels - bit_length64(leaf_col.data[s] ^ leaf);
            if (depth < 0) {
                raise_leaf_range(leaf_col.data[s], levels);
                goto fail;
            }
            if (depth >= nlevels) {
                PyErr_Format(PyExc_IndexError,
                             "eviction depth %d outside by_depth", depth);
                goto fail;
            }
            if (PyList_Append(PyList_GET_ITEM(by_depth, depth), s_obj) < 0)
                goto fail;
        }
    }

    i64col_release(&addr_col);
    i64col_release(&leaf_col);
    if (slot == NULL)
        Py_RETURN_NONE;
    return slot;

fail:
    i64col_release(&addr_col);
    i64col_release(&leaf_col);
    Py_XDECREF(slot);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* place_greedy                                                        */
/* ------------------------------------------------------------------ */

/* place_greedy(path, by_depth, levels, cap) -> pool (list)
 *
 * Greedy placement, deepest level first; candidates LIFO, then the pool
 * of deeper leftovers LIFO — the columnar backend's eviction loop
 * transcribed over the same live bucket lists.  Bucket clearing stays
 * deferred to placement time (each bucket empties just before refill),
 * the by_depth scratch lists are left empty, and the returned pool
 * carries any unplaced slots in the exact order the interpreted kernel
 * would hold them (the caller's slow-path stash rebuild consumes it).
 */
static PyObject *
place_greedy(PyObject *self, PyObject *args)
{
    PyObject *path, *by_depth;
    int levels, cap;
    if (!PyArg_ParseTuple(args, "OOii:place_greedy", &path, &by_depth,
                          &levels, &cap))
        return NULL;
    if (!PyList_Check(path) || !PyList_Check(by_depth) ||
        PyList_GET_SIZE(path) < (Py_ssize_t)levels + 1 ||
        PyList_GET_SIZE(by_depth) < (Py_ssize_t)levels + 1) {
        PyErr_SetString(PyExc_TypeError,
                        "place_greedy expects path/by_depth lists of "
                        "levels + 1 buckets");
        return NULL;
    }
    PyObject *pool = PyList_New(0);
    if (pool == NULL)
        return NULL;

    for (int level = levels; level >= 0; level--) {
        PyObject *candidates = PyList_GET_ITEM(by_depth, level);
        PyObject *slots = PyList_GET_ITEM(path, level);
        if (!PyList_Check(candidates) || !PyList_Check(slots)) {
            PyErr_SetString(PyExc_TypeError,
                            "path/by_depth entries must be lists");
            goto fail;
        }
        if (PyList_GET_SIZE(slots) > 0) {
            /* Deferred drain clear: the bucket was fully drained and
             * empties here just before refill (in place — list identity
             * is part of the storage's path-cache contract). */
            if (PyList_SetSlice(slots, 0, PyList_GET_SIZE(slots), NULL) <
                0)
                goto fail;
        }
        Py_ssize_t ncand = PyList_GET_SIZE(candidates);
        Py_ssize_t npool = PyList_GET_SIZE(pool);
        if (ncand == 0 && npool == 0)
            continue;
        int free_slots = cap;
        while (free_slots > 0 && ncand > 0) {
            PyObject *item = PyList_GET_ITEM(candidates, ncand - 1);
            Py_INCREF(item);
            if (PyList_SetSlice(candidates, ncand - 1, ncand, NULL) < 0) {
                Py_DECREF(item);
                goto fail;
            }
            int rc = PyList_Append(slots, item);
            Py_DECREF(item);
            if (rc < 0)
                goto fail;
            ncand--;
            free_slots--;
        }
        if (ncand > 0) {
            if (PyList_SetSlice(pool, npool, npool, candidates) < 0)
                goto fail;
            if (PyList_SetSlice(candidates, 0, ncand, NULL) < 0)
                goto fail;
            npool = PyList_GET_SIZE(pool);
        }
        while (free_slots > 0 && npool > 0) {
            PyObject *item = PyList_GET_ITEM(pool, npool - 1);
            Py_INCREF(item);
            if (PyList_SetSlice(pool, npool - 1, npool, NULL) < 0) {
                Py_DECREF(item);
                goto fail;
            }
            int rc = PyList_Append(slots, item);
            Py_DECREF(item);
            if (rc < 0)
                goto fail;
            npool--;
            free_slots--;
        }
    }
    return pool;

fail:
    Py_DECREF(pool);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef replay_core_methods[] = {
    {"translate_block_addrs", translate_block_addrs, METH_VARARGS,
     "Line-address column -> plain-int block addresses (zero-copy over "
     "an int64 buffer; sequence fallback matches the Python kernel)."},
    {"run_access_loop", run_access_loop, METH_VARARGS,
     "Drive every (addr, is_write) event through frontend.access; "
     "returns the per-event tree-access counts."},
    {"accumulate", accumulate, METH_VARARGS,
     "Event-ordered left-fold of per-event latencies onto a running "
     "cycle count (bit-identical to Python float accumulation)."},
    {"drain_scalar", drain_scalar, METH_VARARGS,
     "Columnar Path ORAM path drain + stash merge + depth grouping over "
     "the arena columns; returns the slot of the block of interest."},
    {"place_greedy", place_greedy, METH_VARARGS,
     "Greedy deepest-first eviction with LIFO candidate/pool placement; "
     "returns the leftover pool."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef replay_core_module = {
    PyModuleDef_HEAD_INIT,
    "repro.sim.native._replay_core",
    "Compiled replay core: fused access/eviction loop over columnar "
    "arenas (see repro.sim.native).",
    -1,
    replay_core_methods,
};

PyMODINIT_FUNC
PyInit__replay_core(void)
{
    str_tree_accesses = PyUnicode_InternFromString("tree_accesses");
    if (str_tree_accesses == NULL)
        return NULL;
    return PyModule_Create(&replay_core_module);
}
