"""Optional compiled replay core (``REPRO_REPLAY=compiled``).

This package wraps the hand-written C extension ``_replay_core`` — the
fused replay inner loop over the columnar arenas (see ``_replay_core.c``
for the kernel inventory and the bit-identity contract). The extension
is *optional*: nothing in the library imports it unconditionally, and
every consumer goes through :func:`load_native_core`, which returns the
module when it is built and importable, or ``None`` otherwise. The
pure-Python batched kernel remains the default and the reference.

Build it in place with the baked-in toolchain (no new dependencies)::

    python setup.py build_ext --inplace

which drops ``_replay_core.*.so`` next to this file. ``setup.py``
swallows compiler failures, so environments without a C toolchain build
a pure-Python package and every default CI lane stays green.

``REPRO_NATIVE`` tunes the dispatch policy:

- unset / ``1`` / ``on`` — use the extension when built (the default);
- ``0`` / ``off`` / ``no`` / ``false`` / ``disable`` / ``disabled`` —
  ignore the extension even when built (forces the fallback path, used
  by the differential tests to pin fallback behaviour);
- ``require`` — escalate "extension unbuilt" from a fallback warning to
  a hard :class:`~repro.errors.NativeKernelUnavailable` error. The CI
  compiled lane sets this so a silently-unbuilt extension cannot
  masquerade as a compiled run.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable tuning native-kernel dispatch (see module docs).
NATIVE_ENV = "REPRO_NATIVE"

#: ``REPRO_NATIVE`` values that disable the extension even when built.
_OFF_VALUES = frozenset({"0", "off", "no", "false", "disable", "disabled"})

#: Memoised import result: unset, or (module | None).
_CORE_CACHE: list = []


def native_policy() -> str:
    """Current dispatch policy: ``"on"``, ``"off"`` or ``"require"``."""
    value = os.environ.get(NATIVE_ENV, "").strip().lower()
    if value in _OFF_VALUES:
        return "off"
    if value == "require":
        return "require"
    return "on"


def load_native_core() -> Optional[object]:
    """The built ``_replay_core`` module, or ``None``.

    The import itself is memoised (a build cannot appear mid-process),
    but the ``REPRO_NATIVE`` policy is consulted on every call so tests
    can flip the knob per-case.
    """
    if native_policy() == "off":
        return None
    if not _CORE_CACHE:
        try:
            from repro.sim.native import _replay_core
        except ImportError:
            _CORE_CACHE.append(None)
        else:
            _CORE_CACHE.append(_replay_core)
    return _CORE_CACHE[0]


def native_available() -> bool:
    """True when the compiled core is built and not disabled."""
    return load_native_core() is not None


def build_hint() -> str:
    """The one-line build instruction used by warnings and errors."""
    return "build it with: python setup.py build_ext --inplace"
