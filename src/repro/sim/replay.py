"""Batched replay kernel: the trace-to-backend path over columns.

The scalar replay loop in :mod:`repro.sim.system` pays per-event Python
work four times over: ``MissEvent`` attribute access, a per-event integer
division for line->block translation, per-event latency-dict probes, and
cold per-access tag-chain arithmetic inside ``Frontend.access``. This
module is the struct-of-arrays spelling of the same loop:

1. the trace's columnar view (:meth:`MissTrace.columns`) replaces the
   event-object stream — one ``int64`` address column, one bool column;
2. line->block translation happens in one vectorised shift/divide over
   the whole column (scalar fallback when numpy is unavailable);
3. the frontend pre-plans the batch (``plan_batch`` resolves the (chain,
   tags) for every distinct upcoming address in one pass, short-circuiting
   repeat-address runs) before the access loop starts;
4. the access loop itself runs with every constant pre-resolved (bound
   ``access`` method, hoisted ``Op`` values, one shared write payload),
   recording only the per-event tree-access count;
5. latency is resolved by a vectorised gather through a dense
   lookup table indexed by tree-access count, instead of a dict probe per
   event.

Bit-identical by construction: the frontend sees exactly the scalar
sequence of ``access`` calls, and the final cycle count is accumulated
event-by-event in trace order with the same start value and the same
per-event float operands — only the *bookkeeping around* the loop is
batched. ``tests/test_replay_differential.py`` locks this down in
lockstep against the scalar kernel.

Mode selection: ``REPRO_REPLAY=batched`` (default), ``scalar`` — the
escape hatch that re-runs the historical per-event loop — or
``compiled``, which hands the fused inner loop (translation, access
driver, drain/evict, latency accumulation) to the optional C extension
in :mod:`repro.sim.native`, zero-copy over the columnar arenas. When the
extension is unbuilt, ``compiled`` falls back to ``batched`` with a
visible :class:`RuntimeWarning` (or raises under ``REPRO_NATIVE=require``
— the CI compiled lane's setting). Unknown ``REPRO_REPLAY`` values raise
instead of silently selecting a kernel, so a misconfigured benchmark
cannot masquerade as a batched run.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Sequence, Tuple

from repro.proc.hierarchy import MissTrace
from repro.sim.timing import OramTimingModel

try:  # pragma: no cover - exercised indirectly on both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Environment variable selecting the replay kernel.
REPLAY_ENV = "REPRO_REPLAY"

#: Supported replay kernels.
REPLAY_MODES = ("batched", "scalar", "compiled")


def default_replay_mode() -> str:
    """Replay kernel from ``REPRO_REPLAY`` (defaults to ``batched``).

    An unrecognised value raises — the same contract as the
    explicit-argument path of :func:`resolve_replay_mode` — so a typo
    (``REPRO_REPLAY=scaler``) aborts the run instead of silently
    benchmarking the batched kernel under the wrong label.
    """
    value = os.environ.get(REPLAY_ENV, "").strip().lower()
    if not value:
        return "batched"
    if value not in REPLAY_MODES:
        raise ValueError(
            f"unknown replay mode {value!r} in {REPLAY_ENV}; "
            f"choose from {REPLAY_MODES}"
        )
    return value


def resolve_replay_mode(mode=None) -> str:
    """Validate an explicit mode, or fall back to the environment.

    ``compiled`` additionally requires the optional C extension: when it
    is unbuilt (or switched off via ``REPRO_NATIVE``) the resolution
    degrades to ``batched`` with a visible :class:`RuntimeWarning` —
    unless ``REPRO_NATIVE=require``, which turns the fallback into a
    :class:`~repro.errors.NativeKernelUnavailable` error so CI's
    compiled lane cannot silently run the interpreted kernel.
    """
    if mode is None:
        mode = default_replay_mode()
    elif mode not in REPLAY_MODES:
        raise ValueError(
            f"unknown replay mode {mode!r}; choose from {REPLAY_MODES}"
        )
    if mode == "compiled":
        from repro.sim.native import (
            build_hint,
            load_native_core,
            native_policy,
        )

        if load_native_core() is None:
            if native_policy() == "require":
                from repro.errors import NativeKernelUnavailable

                raise NativeKernelUnavailable(
                    "REPRO_REPLAY=compiled requires the native extension "
                    f"(REPRO_NATIVE=require is set); {build_hint()}"
                )
            warnings.warn(
                "REPRO_REPLAY=compiled requested but the native extension "
                f"is not built; falling back to the batched kernel "
                f"({build_hint()})",
                RuntimeWarning,
                stacklevel=2,
            )
            return "batched"
    return mode


def translate_block_addrs(
    line_addrs, lines_per_block: int
) -> List[int]:
    """Line-address column -> plain-int block addresses, vectorised.

    ``line_addr // lines_per_block`` for every event in one sweep; a
    power-of-two divisor (the common geometry) becomes a single shift.
    The result is a plain Python list — the access loop's operand — whose
    elements are exactly the scalar per-event divisions.
    """
    if lines_per_block < 1:
        raise ValueError(
            f"lines_per_block must be >= 1, got {lines_per_block}"
        )
    if _np is not None and isinstance(line_addrs, _np.ndarray):
        if lines_per_block == 1:
            return line_addrs.tolist()
        if lines_per_block & (lines_per_block - 1) == 0:
            return (line_addrs >> (lines_per_block.bit_length() - 1)).tolist()
        return (line_addrs // lines_per_block).tolist()
    if lines_per_block == 1:
        return list(line_addrs)
    return [addr // lines_per_block for addr in line_addrs]


def _latency_gather(
    ns: Sequence[int], timing: OramTimingModel
) -> Sequence[float]:
    """Per-event latencies for a tree-access-count column.

    The latency model is a pure function of the per-event tree-access
    count, which takes only a handful of distinct values; each distinct
    value is composed once and the per-event sequence is recovered by a
    dense vectorised table gather (dict fallback without numpy — and
    whenever a latency is not a float, so accumulation operand *types*
    match the scalar kernel exactly, not just their values).
    """
    distinct: Dict[int, float] = {
        n: timing.miss_latency(n) for n in set(ns)
    }
    if (
        _np is not None
        and distinct
        and all(type(v) is float for v in distinct.values())
    ):
        lut = _np.zeros(max(distinct) + 1, dtype=_np.float64)
        for n, latency in distinct.items():
            lut[n] = latency
        return lut[_np.array(ns, dtype=_np.int64)].tolist()
    return [distinct[n] for n in ns]


def replay_cycles_batched(
    frontend,
    trace: MissTrace,
    timing: OramTimingModel,
    cycles,
    lines_per_block: int,
    payload: bytes,
):
    """Drive every event through the frontend; return total cycles.

    ``cycles`` carries the caller's base-cycle count; the return value is
    bit-identical to the scalar kernel's (same start value, same per-event
    accumulation order and operands). Since PR 6 this is a thin wrapper
    over :class:`repro.sim.engine.ReplayEngine` — the shared access core
    that also powers the :mod:`repro.serve` layer.
    """
    from repro.sim.engine import ReplayEngine

    engine = ReplayEngine(
        frontend,
        timing,
        lines_per_block=lines_per_block,
        payload=payload,
        block_bytes=len(payload),
    )
    engine.cycles = cycles
    engine.run_trace(trace)
    return engine.cycles
