"""Persistent on-disk cache of :class:`~repro.sim.metrics.SimResult`.

Replaying one (scheme, benchmark) cell means driving tens of thousands of
LLC misses through the full frontend/crypto/storage stack — seconds to
minutes at paper scale — yet the outcome is fully determined by the
replay configuration. This cache keys the serialized result on exactly
that configuration so ``run_suite`` (and ``python -m repro all``) only
replays cells it has never seen: a second invocation with identical
parameters performs zero ``replay_trace`` calls.

The key covers everything that can change a result bit: scheme,
benchmark, runner seed, processor and DRAM configuration, miss budget,
warmup, PLB/on-chip sizing, clock, a canonical digest of the per-call
overrides, and two versions — the package release and a result schema
version. The schema version is also embedded in the payload, so entries
written by an older schema are evicted (unlinked) on first contact
instead of being misread.

Robustness mirrors :class:`~repro.sim.trace_cache.TraceCache`: atomic
writes, corrupt/stale entries treated as misses and unlinked best-effort,
unwritable directories silently disabling the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.sim.metrics import SimResult

#: Environment variable controlling the default cache location. Unset means
#: the per-user default; a path overrides it; ``0``/``off``/``none`` disables.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

#: Bump when SimResult serialization (or replay semantics the key cannot
#: see) changes; embedded in every entry and checked on load.
RESULT_SCHEMA_VERSION = 1

_DISABLED_VALUES = {"0", "off", "none", "disable", "disabled"}


def default_result_cache_dir() -> Optional[Path]:
    """Resolve the cache directory from the environment (None = disabled)."""
    value = os.environ.get(RESULT_CACHE_ENV)
    if value is None:
        return Path.home() / ".cache" / "repro" / "results"
    if value.strip().lower() in _DISABLED_VALUES or not value.strip():
        return None
    return Path(value)


def overrides_digest(overrides: Dict[str, object]) -> str:
    """Canonical digest of a ``run_one``/``run_suite`` override mapping.

    Sorted ``key=repr(value)`` pairs: insertion order never matters, and
    any value change (including type changes like 1 vs 1.0) re-keys.
    """
    canonical = "|".join(f"{k}={v!r}" for k, v in sorted(overrides.items()))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def result_key(
    scheme: str,
    bench_name: str,
    seed: int,
    proc: ProcessorConfig,
    dram: DramConfig,
    proc_ghz: float,
    max_llc_misses: int,
    warmup_refs: int,
    plb_capacity_bytes: int,
    onchip_entries: int,
    overrides: Dict[str, object],
) -> str:
    """Stable digest of everything that determines one cell's SimResult."""
    import repro

    parts = [
        f"schema={RESULT_SCHEMA_VERSION}",
        f"repro={getattr(repro, '__version__', '0')}",
        f"scheme={scheme}",
        f"bench={bench_name}",
        f"seed={seed}",
        f"ghz={proc_ghz!r}",
        f"misses={max_llc_misses}",
        f"warmup={warmup_refs}",
        f"plb={plb_capacity_bytes}",
        f"onchip={onchip_entries}",
        f"overrides={overrides_digest(overrides)}",
    ]
    for key, value in sorted(dataclasses.asdict(proc).items()):
        parts.append(f"proc.{key}={value!r}")
    for key, value in sorted(dataclasses.asdict(dram).items()):
        parts.append(f"dram.{key}={value!r}")
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:40]


class ResultCache:
    """Directory of serialized SimResults keyed by :func:`result_key`."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        # Hit/miss/store counters for tests and diagnostics.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        """Entry location for a key."""
        return self.root / f"{key}.result.json"

    def load(self, key: str) -> Optional[SimResult]:
        """Return the cached result, or None on miss/corruption/staleness."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text("utf-8"))
            if payload.get("schema") != RESULT_SCHEMA_VERSION:
                raise ValueError("stale result schema")
            result = SimResult(**payload["result"])
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # Corrupted or stale-schema entry: evict it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimResult) -> bool:
        """Atomically persist a result; returns False if the dir is unusable."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "result": dataclasses.asdict(result),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True), "utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True
