"""Persistent on-disk cache of :class:`~repro.sim.metrics.SimResult`.

Replaying one (scheme, benchmark) cell means driving tens of thousands of
LLC misses through the full frontend/crypto/storage stack — seconds to
minutes at paper scale — yet the outcome is fully determined by the
replay configuration. This cache keys the serialized result on exactly
that configuration so ``run_suite`` (and ``python -m repro all``) only
replays cells it has never seen: a second invocation with identical
parameters performs zero ``replay_trace`` calls.

The key covers everything that can change a result bit: the *canonical
serialized scheme spec* (every construction knob, via
``SchemeSpec.canonical()`` — no hand-maintained argument list), benchmark,
runner seed, processor and DRAM configuration, miss budget, warmup,
clock, and two versions — the package release and a result schema
version. The schema version is also embedded in the payload, so entries
written by an older schema are evicted (unlinked) on first contact
instead of being misread.

Robustness mirrors :class:`~repro.sim.trace_cache.TraceCache`: atomic
writes, corrupt/stale entries treated as misses and unlinked best-effort,
unwritable directories silently disabling the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import warnings
from pathlib import Path
from typing import List, Optional, Union

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.errors import CacheCorruptionWarning
from repro.faults import fault_hook
from repro.sim.metrics import SimResult

#: Environment variable controlling the default cache location. Unset means
#: the per-user default; a path overrides it; ``0``/``off``/``none`` disables.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

#: Bump when SimResult serialization (or replay semantics the key cannot
#: see) changes; embedded in every entry and checked on load.
#: v2: spec-canonical keys + SimResult prf_calls/prf_cache_hits fields.
RESULT_SCHEMA_VERSION = 2

_DISABLED_VALUES = {"0", "off", "none", "disable", "disabled"}

#: Per-process sequence for temp-file names: combined with the pid it
#: makes concurrent writers — threads of one process (fabric coordinator)
#: and separate worker processes alike — never collide on a temp path,
#: so the atomic-rename discipline holds under any write race.
_TMP_SEQ = itertools.count()


def default_result_cache_dir() -> Optional[Path]:
    """Resolve the cache directory from the environment (None = disabled)."""
    value = os.environ.get(RESULT_CACHE_ENV)
    if value is None:
        return Path.home() / ".cache" / "repro" / "results"
    if value.strip().lower() in _DISABLED_VALUES or not value.strip():
        return None
    return Path(value)


def result_key(
    scheme_canonical: str,
    bench_name: str,
    seed: int,
    proc: ProcessorConfig,
    dram: DramConfig,
    proc_ghz: float,
    max_llc_misses: int,
    warmup_refs: int,
) -> str:
    """Stable digest of everything that determines one cell's SimResult.

    ``scheme_canonical`` is the scheme spec's total canonical serialization
    (:meth:`repro.spec.SchemeSpec.canonical`), already sized for the
    benchmark — or the literal ``"insecure"`` for the DRAM baseline. Every
    construction knob therefore re-keys automatically.
    """
    import repro

    parts = [
        f"schema={RESULT_SCHEMA_VERSION}",
        f"repro={getattr(repro, '__version__', '0')}",
        f"spec={scheme_canonical}",
        f"bench={bench_name}",
        f"seed={seed}",
        f"ghz={proc_ghz!r}",
        f"misses={max_llc_misses}",
        f"warmup={warmup_refs}",
    ]
    for key, value in sorted(dataclasses.asdict(proc).items()):
        parts.append(f"proc.{key}={value!r}")
    for key, value in sorted(dataclasses.asdict(dram).items()):
        parts.append(f"dram.{key}={value!r}")
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:40]


class ResultCache:
    """Directory of serialized SimResults keyed by :func:`result_key`."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        # Hit/miss/store counters for tests and diagnostics.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0

    def path_for(self, key: str) -> Path:
        """Entry location for a key."""
        return self.root / f"{key}.result.json"

    def __contains__(self, key: str) -> bool:
        """Whether an entry exists on disk (no validation, no counters)."""
        return self.path_for(key).exists()

    def keys(self) -> List[str]:
        """Sorted keys of every entry currently on disk."""
        suffix = ".result.json"
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n[: -len(suffix)] for n in names if n.endswith(suffix))

    def _evict_corrupt(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.corrupt_evictions += 1
        warnings.warn(
            f"result cache: evicted corrupt/stale entry {path.name}; recomputing",
            CacheCorruptionWarning,
            stacklevel=3,
        )

    def load(self, key: str) -> Optional[SimResult]:
        """Return the cached result, or None on miss/corruption/staleness."""
        path = self.path_for(key)
        fault_hook("cache.entry", f"result/{key}", path)
        try:
            payload = json.loads(path.read_text("utf-8"))
            if payload.get("schema") != RESULT_SCHEMA_VERSION:
                raise ValueError("stale result schema")
            result = SimResult(**payload["result"])
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # Corrupted or stale-schema entry: evict it and recompute.
            self._evict_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimResult) -> bool:
        """Atomically persist a result; returns False if the dir is unusable."""
        fault_hook("cache.write", "result/begin")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "result": dataclasses.asdict(result),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_SEQ)}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True), "utf-8")
            fault_hook("cache.write", "result/tmp", tmp)
            os.replace(tmp, path)
            fault_hook("cache.write", "result/replace", path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True
