"""Result records and aggregation for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.utils.stats import geometric_mean


@dataclass
class SimResult:
    """Outcome of replaying one benchmark against one scheme.

    ``prf_cache_hits`` is a *diagnostic* counter (how often the PRF's
    leaf-derivation LRU absorbed a logical evaluation). It legitimately
    varies with the cache toggle while every simulated outcome stays
    bit-identical, so it is excluded from equality — ``==`` (and the
    golden digests built on it) compare simulated outcomes only.
    """

    benchmark: str
    scheme: str
    cycles: float
    instructions: int
    llc_misses: int
    oram_accesses: int
    tree_accesses: int
    data_bytes: int = 0
    posmap_bytes: int = 0
    plb_hit_rate: float = 0.0
    mpki: float = 0.0
    prf_calls: int = 0
    prf_cache_hits: int = field(default=0, compare=False)

    @property
    def prf_cache_hit_rate(self) -> float:
        """Share of logical PRF evaluations served by the leaf LRU."""
        return self.prf_cache_hits / self.prf_calls if self.prf_calls else 0.0

    @property
    def total_bytes(self) -> int:
        """Data + PosMap bytes moved."""
        return self.data_bytes + self.posmap_bytes

    @property
    def bytes_per_access(self) -> float:
        """Average bytes moved per ORAM access (Fig. 7/8 right axis)."""
        return self.total_bytes / self.oram_accesses if self.oram_accesses else 0.0

    @property
    def posmap_byte_fraction(self) -> float:
        """Share of traffic serving the PosMap (Fig. 3 y-axis)."""
        return self.posmap_bytes / self.total_bytes if self.total_bytes else 0.0

    def slowdown_vs(self, baseline: "SimResult") -> float:
        """Runtime ratio against a baseline replay of the same trace."""
        if baseline.cycles == 0:
            raise ValueError("baseline has zero cycles")
        return self.cycles / baseline.cycles


def slowdown_table(
    results: Dict[str, Dict[str, SimResult]],
    baselines: Dict[str, SimResult],
    schemes: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark slowdown vs insecure, plus the geometric mean row.

    ``results[scheme][benchmark]`` and ``baselines[benchmark]`` follow the
    runner's layout; the returned mapping is ``table[scheme][benchmark]``
    with an extra ``"geomean"`` key per scheme (the paper's Avg bars).
    """
    table: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        row: Dict[str, float] = {}
        for bench, result in results[scheme].items():
            row[bench] = result.slowdown_vs(baselines[bench])
        row["geomean"] = geometric_mean([v for k, v in row.items() if k != "geomean"])
        table[scheme] = row
    return table


def format_table(
    table: Dict[str, Dict[str, float]], benchmarks: Sequence[str], title: str = ""
) -> str:
    """Render a scheme x benchmark table as aligned text."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'scheme':>10} " + " ".join(f"{b:>7}" for b in benchmarks) + f" {'geomean':>8}"
    lines.append(header)
    for scheme, row in table.items():
        cells = " ".join(f"{row.get(b, float('nan')):7.2f}" for b in benchmarks)
        lines.append(f"{scheme:>10} " + cells + f" {row['geomean']:8.2f}")
    return "\n".join(lines)
