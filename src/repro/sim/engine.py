"""The per-access replay core, factored out as a reusable engine object.

Historically the access loop lived inside :func:`repro.sim.system.replay_trace`
(scalar kernel) and :func:`repro.sim.replay.replay_cycles_batched` (batched
kernel), both hard-wired to a complete :class:`MissTrace`. The serving
layer (:mod:`repro.serve`) needs the *same* core — translate, plan,
access, gather latencies, accumulate cycles in event order — driven by
live request batches instead of one offline trace. :class:`ReplayEngine`
is that core:

- ``run_batch(addrs, writes)`` executes one run of block-level requests
  through the frontend exactly the way the batched replay kernel does
  (``plan_batch`` pre-pass, hoisted-constant access loop, vectorised
  latency gather, event-ordered left-fold accumulation) and returns the
  per-event latencies so callers can do per-request accounting;
- ``run_trace(trace)`` / ``run_trace_scalar(trace)`` are the historical
  whole-trace kernels expressed over the same state;
- ``result(trace, scheme)`` assembles the :class:`SimResult` from the
  counters the engine snapshotted at construction.

Because a sequence of ``run_batch`` calls performs the identical
per-event operations in the identical order as one whole-trace call
(float accumulation is a left fold either way, and ``plan_batch`` is
memoisation invisible to every simulated outcome), serving a trace in
admission-queue batches is bit-identical to replaying it offline — the
property ``tests/test_serve_lockstep.py`` pins against ``replay_trace``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backend.ops import Op
from repro.config import ProcessorConfig
from repro.proc.hierarchy import MissTrace
from repro.sim.metrics import SimResult
from repro.sim.replay import _latency_gather, translate_block_addrs
from repro.sim.timing import OramTimingModel


def frontend_block_bytes(frontend) -> int:
    """Block size of a frontend's (first) ORAM configuration."""
    config = getattr(frontend, "config", None)
    if config is not None:
        return config.block_bytes
    configs = getattr(frontend, "configs", None)
    if not configs:
        raise TypeError(
            f"{type(frontend).__name__} exposes neither 'config' nor "
            "'configs'; pass block_bytes explicitly"
        )
    return configs[0].block_bytes


class ReplayEngine:
    """Stateful access core: one frontend, one timing model, running cycles.

    ``cycles`` starts at 0.0; callers that need the full processor model
    seed it (``engine.cycles = base_cycles(trace, proc)``) before the
    first batch, so the accumulation fold is exactly the historical
    kernel's (base value first, then per-event latencies in event order).
    """

    def __init__(
        self,
        frontend,
        timing: OramTimingModel,
        proc: ProcessorConfig = ProcessorConfig(),
        block_bytes: Optional[int] = None,
        lines_per_block: Optional[int] = None,
        payload: Optional[bytes] = None,
    ):
        self.frontend = frontend
        self.timing = timing
        self.proc = proc
        if block_bytes is None:
            block_bytes = frontend_block_bytes(frontend)
        self.block_bytes = block_bytes
        self.lines_per_block = (
            lines_per_block
            if lines_per_block is not None
            else max(block_bytes // proc.line_bytes, 1)
        )
        self.payload = payload if payload is not None else bytes(block_bytes)
        self.cycles: float = 0.0
        self.events = 0
        # Baselines for delta counters: a caller may hand the engine a
        # frontend (or crypto suite) that has already served traffic.
        self._data_bytes0 = frontend.data_bytes_moved
        self._posmap_bytes0 = frontend.posmap_bytes_moved
        crypto = getattr(frontend, "crypto", None)
        self._crypto = crypto
        self._prf_calls0 = crypto.prf.call_count if crypto is not None else 0
        self._prf_hits0 = crypto.prf.cache_hits if crypto is not None else 0
        # Scalar-kernel latency memo (per-event dict probe semantics).
        self._latency_memo: dict = {}
        # Compiled core (repro.sim.native._replay_core) — None until a
        # caller opts in via enable_native(); every simulated outcome is
        # bit-identical either way.
        self._native = None

    # -- compiled-core opt-in --------------------------------------------------

    def enable_native(self, core) -> None:
        """Route the fused inner loop through the compiled core.

        The engine's own stages (translate, access driver, accumulate)
        switch to the C spellings, and every columnar backend reachable
        from the frontend (``backend`` or per-level ``backends``) is
        handed the core for its drain/evict loop. Passing ``None`` is a
        no-op so callers can write ``enable_native(load_native_core())``
        unconditionally.
        """
        if core is None:
            return
        self._native = core
        frontend = self.frontend
        backends = getattr(frontend, "backends", None)
        if backends is None:
            backend = getattr(frontend, "backend", None)
            backends = [] if backend is None else [backend]
        for backend in backends:
            enable = getattr(backend, "enable_native_kernel", None)
            if enable is not None:
                enable(core)

    # -- address translation ---------------------------------------------------

    def translate(self, line_addrs) -> List[int]:
        """Line-address column -> block addresses for this geometry."""
        if self._native is not None:
            return self._native.translate_block_addrs(
                line_addrs, self.lines_per_block
            )
        return translate_block_addrs(line_addrs, self.lines_per_block)

    # -- the batched core ------------------------------------------------------

    def run_batch(
        self, addrs: Sequence[int], writes: Sequence[bool]
    ) -> Sequence[float]:
        """Drive one batch of block-level requests through the frontend.

        The batch is planned (``plan_batch`` when the frontend offers
        it), accessed event by event with hoisted constants, and its
        latencies are resolved by the vectorised gather then accumulated
        onto ``self.cycles`` as an event-ordered left fold — exactly the
        batched replay kernel, so splitting a trace across successive
        ``run_batch`` calls is bit-identical to one whole-trace call.

        Returns the per-event latencies (the serving layer's per-request
        service times).
        """
        plan = getattr(self.frontend, "plan_batch", None)
        if plan is not None:
            plan(addrs)
        access = self.frontend.access
        read_op = Op.READ
        write_op = Op.WRITE
        payload = self.payload
        native = self._native
        if native is not None:
            # The C driver performs the identical per-event calls in the
            # identical order; only interpreter dispatch is removed.
            ns = native.run_access_loop(
                access, addrs, writes, read_op, write_op, payload
            )
        else:
            ns = []
            record = ns.append
            for addr, w in zip(addrs, writes):
                if w:
                    result = access(addr, write_op, payload)
                else:
                    result = access(addr, read_op)
                record(result.tree_accesses)
        latencies = _latency_gather(ns, self.timing)
        if native is not None:
            # Same event-ordered left fold, in C doubles (IEEE-754 adds
            # identical to CPython float +=).
            self.cycles = native.accumulate(self.cycles, latencies)
        else:
            for latency in latencies:
                self.cycles += latency
        self.events += len(ns)
        return latencies

    def run_trace(self, trace: MissTrace) -> None:
        """Whole-trace batched replay (the PR-5 columnar pipeline)."""
        line_addrs, is_write = trace.columns()
        addrs = self.translate(line_addrs)
        writes = (
            is_write.tolist() if hasattr(is_write, "tolist") else list(is_write)
        )
        self.run_batch(addrs, writes)

    # -- the scalar escape hatch ----------------------------------------------

    def run_trace_scalar(self, trace: MissTrace) -> None:
        """The historical per-event replay loop (``REPRO_REPLAY=scalar``).

        The latency model is a pure function of the per-event tree-access
        count, which takes only a handful of distinct values; memoising it
        keeps the replay loop free of repeated float composition (the same
        float is accumulated in the same order, so cycles are
        bit-identical).
        """
        access = self.frontend.access
        payload = self.payload
        lines_per_block = self.lines_per_block
        latency_for = self._latency_memo
        timing = self.timing
        cycles = self.cycles
        for event in trace.events:
            block_addr = event.line_addr // lines_per_block
            if event.is_write:
                result = access(block_addr, Op.WRITE, payload)
            else:
                result = access(block_addr, Op.READ)
            n = result.tree_accesses
            latency = latency_for.get(n)
            if latency is None:
                latency_for[n] = latency = timing.miss_latency(n)
            cycles += latency
        self.cycles = cycles
        self.events += len(trace.events)

    # -- result assembly -------------------------------------------------------

    def result(self, trace: MissTrace, scheme: str = "oram") -> SimResult:
        """Assemble the :class:`SimResult` for a trace this engine served."""
        frontend = self.frontend
        stats = frontend.stats
        plb_hit_rate = (
            stats.plb_hits / (stats.plb_hits + stats.plb_misses)
            if (stats.plb_hits + stats.plb_misses)
            else 0.0
        )
        crypto = self._crypto
        return SimResult(
            benchmark=trace.name,
            scheme=scheme,
            cycles=self.cycles,
            instructions=trace.instructions,
            llc_misses=trace.llc_misses,
            oram_accesses=len(trace.events),
            tree_accesses=stats.tree_accesses,
            data_bytes=frontend.data_bytes_moved - self._data_bytes0,
            posmap_bytes=frontend.posmap_bytes_moved - self._posmap_bytes0,
            plb_hit_rate=plb_hit_rate,
            mpki=trace.mpki,
            prf_calls=(
                crypto.prf.call_count - self._prf_calls0
                if crypto is not None
                else 0
            ),
            prf_cache_hits=(
                crypto.prf.cache_hits - self._prf_hits0
                if crypto is not None
                else 0
            ),
        )
