"""Per-access ORAM latency composition.

One processor request costs (§7.1.1):

    frontend_latency                 (PLB evict/refill pipeline, once)
  + n_tree x (tree_latency + backend_latency)
  + sha3_latency if PMMAC           (verify the block of interest)

where ``n_tree`` is the number of Backend path accesses the Frontend
issued (1 on a full PLB hit; up to H on a complete miss; plus group-remap
relocations) and ``tree_latency`` is the DRAM time to read and write one
path of the Unified (or per-level) tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import FrontendTimings, OramConfig
from repro.dram.config import DramConfig
from repro.dram.model import DramModel


@dataclass
class OramTimingModel:
    """Latency calculator for one ORAM configuration."""

    tree_latency_cycles: float
    timings: FrontendTimings = FrontendTimings()
    pmmac: bool = False

    @classmethod
    def for_config(
        cls,
        oram_config: OramConfig,
        dram_config: Optional[DramConfig] = None,
        proc_ghz: float = 1.3,
        pmmac: bool = False,
        timings: FrontendTimings = FrontendTimings(),
    ) -> "OramTimingModel":
        """Derive the expected tree latency from the DRAM model."""
        model = DramModel(oram_config.levels, oram_config.bucket_bytes, dram_config)
        return cls(
            tree_latency_cycles=model.average_oram_latency_proc_cycles(proc_ghz),
            timings=timings,
            pmmac=pmmac,
        )

    @classmethod
    def for_recursive(
        cls,
        configs: Sequence[OramConfig],
        dram_config: Optional[DramConfig] = None,
        proc_ghz: float = 1.3,
        timings: FrontendTimings = FrontendTimings(),
    ) -> "OramTimingModel":
        """Average per-tree latency for a multi-tree Recursive ORAM.

        Each level has its own (smaller) tree; the replay engine only
        reports a total tree-access count, so we weight levels equally —
        a Recursive access touches every level exactly once.
        """
        total = 0.0
        for cfg in configs:
            model = DramModel(cfg.levels, cfg.bucket_bytes, dram_config)
            total += model.average_oram_latency_proc_cycles(proc_ghz)
        return cls(
            tree_latency_cycles=total / len(configs),
            timings=timings,
            pmmac=False,
        )

    def miss_latency(self, tree_accesses: int) -> float:
        """Processor cycles to service one LLC miss/eviction."""
        t = self.timings
        latency = t.frontend_latency + tree_accesses * (
            self.tree_latency_cycles + t.backend_latency
        )
        if self.pmmac:
            latency += t.sha3_latency
        return latency


def timing_for_frontend(
    frontend,
    dram: Optional[DramConfig] = None,
    proc_ghz: float = 1.3,
) -> OramTimingModel:
    """Timing model matched to a frontend's tree geometry.

    One shared resolver for every frontend kind: multi-tree Recursive
    frontends (``configs``) get the averaged per-level model, everything
    else the single-tree model with PMMAC latency when the frontend
    verifies (``PlbFrontend.pmmac``). Both the experiment runner and the
    serving layer derive their timing here, so a served shard prices an
    access exactly like the replay harness does.
    """
    from repro.frontend.recursive import RecursiveFrontend
    from repro.frontend.unified import PlbFrontend

    if isinstance(frontend, RecursiveFrontend):
        return OramTimingModel.for_recursive(frontend.configs, dram, proc_ghz)
    return OramTimingModel.for_config(
        frontend.config,
        dram,
        proc_ghz,
        pmmac=frontend.pmmac if isinstance(frontend, PlbFrontend) else False,
    )
