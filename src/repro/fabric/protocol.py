"""Length-prefixed JSON message framing for the sweep fabric.

Wire format: a 4-byte big-endian unsigned length, then exactly that many
bytes of UTF-8 JSON. Every message is a JSON object with a ``"type"``
field; everything else is message-specific plain data (spec dicts,
serialized SimResults — all JSON-safe by construction, because the cell
payloads the fabric ships are the same flat scalars the checkpoint
journal already round-trips exactly).

Message types (coordinator <-> worker)::

    worker -> hello      {pid, ident, session}     first frame after connect
    coord  -> config     {index, runner, heartbeat} runner spawn payload
    worker -> need       {}                        ask for a lease
    coord  -> lease      {tasks: [{id, kind, label, bench, spec, misses,
                                   attempt}, ...]}
    coord  -> shutdown   {}                        clean exit
    worker -> result     {id, result}              one finished cell
    worker -> error      {id, error}               one failed cell
    worker -> heartbeat  {n}                       liveness (side thread)

Fault plane: both directions pass through the ``fabric.rpc`` injection
site with keys ``<role>/send/<type>`` and ``<role>/recv/<type>`` — a
``crash`` injected there surfaces as :class:`ProtocolError`, which
callers treat exactly like a dropped connection (that is the point: a
chaos plan can sever any edge of the fabric deterministically). A
``stall`` injected there delays the frame, exercising the heartbeat
timeout path. The ``rpc.timeout`` site (same keys) surfaces as
:class:`RpcTimeout` instead — the injected twin of a real per-call
deadline expiring, which is also what a ``timeout=`` argument raises
when the socket blocks past it. Callers treat a timeout like a severed
connection *plus* count it, so retry/reconnect accounting can be
asserted under injection.

Frames are bounded by :data:`MAX_MESSAGE_BYTES` so a garbled length
prefix (or a non-fabric peer) fails fast instead of allocating gigabytes.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Tuple

from repro.errors import FabricError, InjectedFault, SpecError
from repro.faults import fault_hook

#: Upper bound on one frame (runner payloads are a few KB; leases of
#: dozens of spec dicts stay well under 1 MB).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(FabricError):
    """A fabric connection failed or delivered a malformed frame.

    Both peers treat this as "the other side is gone": the coordinator
    reclaims the worker's leases, a worker reconnects (or exits when the
    coordinator itself is unreachable). An injected ``fabric.rpc.crash``
    fault is converted into this type so chaos plans sever connections
    through the same path a real network failure would take.
    """


class RpcTimeout(ProtocolError):
    """An RPC call blocked past its deadline (real or injected).

    A subclass of :class:`ProtocolError` — every recovery path that
    handles a dropped connection handles a timeout identically — but
    distinct so the coordinator can count timeouts separately in its
    resilience stats.
    """


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` string (the port is mandatory)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise SpecError(f"fabric address must be host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SpecError(f"fabric port must be an integer, got {port_text!r}") from None
    if not 0 <= port <= 65535:
        raise SpecError(f"fabric port out of range: {port}")
    return host, port


def send_message(
    sock: socket.socket,
    message: Dict,
    role: str = "peer",
    timeout: Optional[float] = None,
) -> None:
    """Frame and send one message (raises :class:`ProtocolError` on failure).

    ``timeout`` bounds the whole send; expiry raises :class:`RpcTimeout`.
    The socket's prior timeout is restored afterwards.
    """
    key = f"{role}/send/{message.get('type', '?')}"
    try:
        fault_hook("fabric.rpc", key)
    except InjectedFault as exc:
        raise ProtocolError(f"connection dropped (injected): {exc}") from exc
    try:
        fault_hook("rpc.timeout", key)
    except InjectedFault as exc:
        raise RpcTimeout(f"rpc send timed out (injected): {exc}") from exc
    data = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame too large: {len(data)} bytes")
    previous = sock.gettimeout() if timeout is not None else None
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.sendall(struct.pack(">I", len(data)) + data)
    except socket.timeout as exc:
        raise RpcTimeout(f"send timed out after {timeout}s") from exc
    except OSError as exc:
        raise ProtocolError(f"send failed: {exc}") from exc
    finally:
        if timeout is not None:
            try:
                sock.settimeout(previous)
            except OSError:
                pass


def recv_message(
    sock: socket.socket, role: str = "peer", timeout: Optional[float] = None
) -> Optional[Dict]:
    """Receive one message; None on clean EOF at a frame boundary.

    A connection that dies *inside* a frame — the signature of a killed
    worker — raises :class:`ProtocolError`, as do oversized or
    non-object frames. ``timeout`` bounds each socket read; expiry
    raises :class:`RpcTimeout` (prior socket timeout restored after).
    """
    previous = sock.gettimeout() if timeout is not None else None
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        header = _recv_exact(sock, 4)
        if header is None:
            return None
        (length,) = struct.unpack(">I", header)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds {MAX_MESSAGE_BYTES}"
            )
        data = _recv_exact(sock, length)
        if data is None:
            raise ProtocolError("connection dropped mid-frame")
    finally:
        if timeout is not None:
            try:
                sock.settimeout(previous)
            except OSError:
                pass
    try:
        message = json.loads(data.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not a typed message object")
    key = f"{role}/recv/{message['type']}"
    try:
        fault_hook("fabric.rpc", key)
    except InjectedFault as exc:
        raise ProtocolError(f"connection dropped (injected): {exc}") from exc
    try:
        fault_hook("rpc.timeout", key)
    except InjectedFault as exc:
        raise RpcTimeout(f"rpc recv timed out (injected): {exc}") from exc
    return message


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on EOF before the first byte."""
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise RpcTimeout(f"recv timed out: {exc}") from exc
        except OSError as exc:
            raise ProtocolError(f"recv failed: {exc}") from exc
        if not chunk:
            if chunks:
                raise ProtocolError("connection dropped mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""
