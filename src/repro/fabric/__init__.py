"""Distributed sweep fabric: coordinator + work-stealing workers.

``repro.fabric`` turns :func:`~repro.sim.sweep.run_sweep` into a
multi-process (and multi-node, over TCP) operation without changing a
byte of its output. The pieces:

- :mod:`~repro.fabric.protocol` — length-prefixed JSON framing with
  ``fabric.rpc`` fault-injection on every edge;
- :mod:`~repro.fabric.store` — the content-addressed shared trace/result
  store (the existing canonical-digest caches, shared by construction);
- :mod:`~repro.fabric.worker` — the lease-execute-stream worker loop
  (``python -m repro fabric serve-worker --connect HOST:PORT``);
- :mod:`~repro.fabric.coordinator` — sharding, work-stealing, heartbeat
  liveness, dead-worker reclaim, and the
  :class:`~repro.fabric.coordinator.FabricExecutor` adapter
  ``run_sweep(..., executor=...)`` plugs in
  (``python -m repro sweep --fabric N [--connect HOST:PORT]``).

Determinism contract: a fabric run's report is bit-identical to the
serial local run — cells are content-addressed, results derive only
from the runner seed, and the report is assembled in grid order — and
an interrupted fabric run ``--resume``s through the same
:class:`~repro.sim.checkpoint.SweepCheckpoint` journal as a local one.
"""

from repro.fabric.coordinator import FabricCoordinator, FabricExecutor
from repro.fabric.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)
from repro.fabric.store import SharedStore
from repro.fabric.worker import (
    FabricWorker,
    runner_from_wire,
    runner_to_wire,
    serve_worker,
)

__all__ = [
    "FabricCoordinator",
    "FabricExecutor",
    "FabricWorker",
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "SharedStore",
    "parse_address",
    "recv_message",
    "runner_from_wire",
    "runner_to_wire",
    "send_message",
    "serve_worker",
]
