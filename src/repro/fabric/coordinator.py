"""Fabric coordinator: shards sweep cells across workers with work-stealing.

The coordinator owns a listening socket, a set of worker connections,
and a single-threaded dispatch loop. Per-connection reader threads do
nothing but frame messages and timestamp liveness; every *semantic*
decision — leasing, stealing, retry accounting, quarantine, journaling
via the sweep's progress callback — happens on the one thread inside
:meth:`FabricCoordinator.execute`, so checkpoint writes and report
bookkeeping need no locking and happen in a deterministic, auditable
order. Report *content* order never depends on any of this: the sweep
assembles cells in grid order, so fabric scheduling (like pool
scheduling before it) is invisible in the output bytes.

Scheduling model:

- every cold cell becomes a task ``{id, kind, label, bench, spec,
  misses, attempt}`` whose ``id`` is the runner's canonical result
  digest — the same content-address the shared store uses;
- idle workers pull (``need``) and receive a lease of up to
  ``lease_cap`` tasks, sized down as the queue drains so the tail
  spreads across workers;
- a worker that goes idle while the queue is empty *steals* a task
  already leased to the most-loaded peer: duplicate execution is safe
  (results are deterministic and content-addressed; the first ``result``
  per id wins, the journal ``record`` is idempotent) and stragglers no
  longer serialize the tail;
- a worker that dies (connection drop, or heartbeat silence beyond
  ``heartbeat_timeout``) has its uniquely-leased cells reclaimed with
  one attempt charged each — exactly the process-pool's in-flight
  semantics, so fault plans keyed on attempt numbers behave identically
  — and re-dispatched to the survivors; spawned workers are respawned
  while budget remains;
- :class:`~repro.errors.FabricError` is raised only when progress is
  impossible: nobody ever joined within ``startup_timeout``, or every
  worker is gone with no respawn budget. Completed cells are already
  journaled at that point, so ``--resume`` continues exactly there.

RPC hardening: every coordinator send is bounded by the
:class:`~repro.resilience.RpcPolicy` timeout (``REPRO_RPC_TIMEOUT``);
an expiry is counted in ``rpc_timeouts`` and handled exactly like a
severed connection. Workers that reconnect after a transient failure
rejoin as fresh sessions under a stable identity (counted in
``reconnects``), and a per-identity :class:`~repro.resilience.CircuitBreaker`
quarantines identities that flap repeatedly — their redials are refused
(``quarantined_workers``) until the breaker cooldown elapses, so one
pathological host cannot keep churning leases. Every trip is counted
(``breaker_trips``); a completed cell fully closes the identity's
breaker again.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.protocol import (
    ProtocolError,
    RpcTimeout,
    recv_message,
    send_message,
)
from repro.fabric.store import SharedStore
from repro.fabric.worker import runner_to_wire
from repro.faults import RetryPolicy
from repro.resilience import CircuitBreaker, RpcPolicy
from repro.sim.metrics import SimResult
from repro.sim.runner import ProgressCallback, SimulationRunner


class _WorkerConn:
    """Coordinator-side state for one connected worker."""

    def __init__(self, index: int, sock: socket.socket, ident: str = "?"):
        self.index = index
        self.sock = sock
        self.ident = ident
        self.send_lock = threading.Lock()
        self.alive = True
        self.waiting = False  # blocked on recv, owed a lease when work appears
        self.last_seen = time.monotonic()
        self.leases: Dict[str, dict] = {}


class FabricCoordinator:
    """Accepts workers, leases cells, reclaims the dead, steals from stragglers."""

    def __init__(
        self,
        runner: SimulationRunner,
        *,
        spawn: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: Optional[float] = None,
        startup_timeout: float = 60.0,
        lease_cap: int = 4,
        respawn_budget: Optional[int] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 60.0,
        rpc: Optional[RpcPolicy] = None,
    ):
        self.spawn = spawn
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else max(5.0, 20 * heartbeat_interval)
        )
        self.startup_timeout = startup_timeout
        self.lease_cap = max(1, lease_cap)
        self._respawn_budget = (
            respawn_budget if respawn_budget is not None else spawn * 4
        )
        # Attach the runner to the shared store so the wire image ships
        # the store's directories to every worker.
        self.store = SharedStore.for_runner(runner)
        self.runner = self.store.attach(runner)
        self.address: Optional[Tuple[str, int]] = None
        self.counters: Dict[str, int] = {
            "workers_joined": 0,
            "dispatched": 0,
            "completed": 0,
            "stolen": 0,
            "errors": 0,
            "dead": 0,
            "timeouts": 0,
            "reclaimed": 0,
            "respawned": 0,
            "rpc_timeouts": 0,
            "reconnects": 0,
            "breaker_trips": 0,
            "quarantined_workers": 0,
        }
        self._breaker_threshold = max(1, breaker_threshold)
        self._breaker_cooldown = breaker_cooldown
        self._rpc = rpc if rpc is not None else RpcPolicy.from_env()
        # Per-worker-identity circuit breakers: a worker that keeps
        # flapping (N consecutive failures) is quarantined — its redials
        # are refused until the cooldown elapses. Keyed by the worker's
        # self-assigned ident, which survives reconnects, not by the
        # per-session connection index.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: Dict[int, _WorkerConn] = {}
        self._procs: List[subprocess.Popen] = []
        self._events: "queue.Queue[Tuple[str, int, Optional[dict]]]" = queue.Queue()
        self._lock = threading.Lock()
        self._next_index = 0
        self._closing = False
        self._last_liveness = time.monotonic()
        # execute()-scoped scheduling state.
        self._open: Dict[str, dict] = {}
        self._pending: Deque[str] = deque()
        self._retry: RetryPolicy = RetryPolicy.from_env()
        self._failures: Optional[List[dict]] = None
        self._progress: Optional[ProgressCallback] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, accept, and spawn local workers; returns (host, port)."""
        self._server = socket.create_server((self.host, self.port))
        addr = self._server.getsockname()
        self.address = (addr[0], addr[1])
        self._last_liveness = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="fabric-accept"
        )
        self._accept_thread.start()
        for _ in range(self.spawn):
            self._spawn_worker()
        return self.address

    def close(self) -> None:
        """Shut workers down and release sockets, processes, and the store."""
        self._closing = True
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            if conn.alive:
                try:
                    with conn.send_lock:
                        send_message(
                            conn.sock, {"type": "shutdown"}, "coordinator",
                            timeout=self._rpc.timeout,
                        )
                except ProtocolError:
                    pass
            try:
                conn.sock.close()
            except OSError:
                pass
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2)
                except subprocess.TimeoutExpired:
                    proc.kill()
        self.store.close()

    def __enter__(self) -> "FabricCoordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        """JSON-safe scheduling counters + shared-store inventory."""
        with self._lock:
            live = sum(1 for c in self._conns.values() if c.alive)
        out: Dict[str, object] = dict(self.counters)
        out["workers_live"] = live
        out["store"] = self.store.stats()
        return out

    def _spawn_worker(self) -> None:
        """Launch one local worker process pointed at our address.

        The child inherits our environment (``REPRO_FAULTS`` and cache
        knobs propagate exactly like pool workers) with the package's
        source root prepended to ``PYTHONPATH`` so ``-m repro`` resolves
        regardless of how the coordinator itself was launched.
        """
        import repro

        assert self.address is not None, "start() before _spawn_worker()"
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root if not existing else os.pathsep.join([src_root, existing])
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "fabric",
                "serve-worker",
                "--connect",
                f"{self.address[0]}:{self.address[1]}",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self._procs.append(proc)
        self._last_liveness = time.monotonic()

    # -- connection threads (framing + liveness only; no scheduling) -------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._conn_loop,
                args=(sock,),
                daemon=True,
                name="fabric-conn",
            ).start()

    def _conn_loop(self, sock: socket.socket) -> None:
        try:
            hello = recv_message(sock, "coordinator")
        except ProtocolError:
            hello = None
        if hello is None or hello.get("type") != "hello":
            try:
                sock.close()
            except OSError:
                pass
            return
        ident = str(hello.get("ident") or hello.get("pid") or "?")
        session = int(hello.get("session", 1) or 1)
        with self._lock:
            breaker = self._breakers.get(ident)
            quarantined = breaker is not None and not breaker.allow()
            if quarantined:
                self.counters["quarantined_workers"] += 1
        if quarantined:
            # A flapping identity inside its cooldown: refuse the session
            # so it stops churning leases. The worker sees a non-config
            # frame and exits cleanly; a redial after the cooldown gets a
            # half-open probe.
            try:
                send_message(
                    sock, {"type": "shutdown"}, "coordinator",
                    timeout=self._rpc.timeout,
                )
            except ProtocolError:
                pass
            try:
                sock.close()
            except OSError:
                pass
            return
        with self._lock:
            index = self._next_index
            self._next_index += 1
            conn = _WorkerConn(index, sock, ident)
            self._conns[index] = conn
        try:
            with conn.send_lock:
                send_message(
                    sock,
                    {
                        "type": "config",
                        "index": index,
                        "runner": runner_to_wire(self.runner),
                        "heartbeat": self.heartbeat_interval,
                    },
                    "coordinator",
                    timeout=self._rpc.timeout,
                )
        except RpcTimeout:
            self.counters["rpc_timeouts"] += 1
            self._events.put(("lost", index, None))
            return
        except ProtocolError:
            self._events.put(("lost", index, None))
            return
        self.counters["workers_joined"] += 1
        if session > 1:
            self.counters["reconnects"] += 1
        self._last_liveness = time.monotonic()
        self._events.put(("joined", index, None))
        while True:
            try:
                message = recv_message(sock, "coordinator")
            except ProtocolError:
                break
            if message is None:
                break
            conn.last_seen = time.monotonic()
            if message.get("type") == "heartbeat":
                continue
            self._events.put((message["type"], index, message))
        self._events.put(("lost", index, None))

    # -- the dispatch loop (single-threaded semantics) ---------------------------

    def execute(
        self,
        tasks: List[dict],
        *,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        """Drive every task to completion (or quarantine) across the fabric.

        ``retry``/``failures`` follow :meth:`SimulationRunner.run_suite`
        semantics: a cell error (or a death-reclaim) charges one attempt;
        a cell that exhausts the budget is quarantined into ``failures``
        (or, with ``failures=None``, raises). ``progress`` is invoked on
        this thread, once per completed cell, in completion order.
        """
        self._retry = retry if retry is not None else RetryPolicy.from_env()
        self._failures = failures
        self._progress = progress
        self._open = {}
        self._pending = deque()
        for task in tasks:
            task.setdefault("attempt", 1)
            if task["id"] in self._open:
                continue
            self._open[task["id"]] = task
            self._pending.append(task["id"])
        self._last_liveness = time.monotonic()
        self._kick_waiting()
        while self._open:
            try:
                event, index, message = self._events.get(
                    timeout=self.heartbeat_interval
                )
            except queue.Empty:
                self._check_liveness()
                continue
            self._handle(event, index, message)
            self._check_liveness()

    def _handle(self, event: str, index: int, message: Optional[dict]) -> None:
        conn = self._conns.get(index)
        if conn is None:
            return
        if event == "lost":
            self._on_worker_down(conn, "connection lost")
        elif event == "joined":
            pass  # the worker announces readiness with its first "need"
        elif not conn.alive:
            return  # late frames from a worker we already declared dead
        elif event == "need":
            conn.waiting = True
            self._dispatch(conn)
        elif event == "result":
            with self._lock:
                breaker = self._breakers.get(conn.ident)
            if breaker is not None:
                breaker.record_success()
            task = self._open.pop(message["id"], None)
            self._drop_task(message["id"])
            if task is not None:
                self.counters["completed"] += 1
                if self._progress is not None:
                    result = SimResult(**message["result"])
                    self._progress(task["label"], task["bench"], result, False)
        elif event == "error":
            self.counters["errors"] += 1
            conn.leases.pop(message["id"], None)
            task = self._open.get(message["id"])
            if task is not None and not self._leased_elsewhere(message["id"], None):
                self._charge(task, message["error"])

    def _dispatch(self, conn: _WorkerConn) -> None:
        """Lease pending work — or steal from a straggler — to an idle worker."""
        if not conn.alive or not conn.waiting:
            return
        with self._lock:
            live = max(1, sum(1 for c in self._conns.values() if c.alive))
        tasks: List[dict] = []
        if self._pending:
            chunk = min(
                len(self._pending),
                self.lease_cap,
                max(1, len(self._pending) // (2 * live)),
            )
            for _ in range(chunk):
                task_id = self._pending.popleft()
                task = self._open.get(task_id)
                if task is not None:
                    tasks.append(task)
        else:
            stolen = self._steal_for(conn)
            if stolen is not None:
                tasks.append(stolen)
                self.counters["stolen"] += 1
        if not tasks:
            return  # stays waiting; requeues and new work will kick it
        for task in tasks:
            conn.leases[task["id"]] = task
        conn.waiting = False
        self.counters["dispatched"] += len(tasks)
        try:
            with conn.send_lock:
                send_message(
                    conn.sock, {"type": "lease", "tasks": tasks}, "coordinator",
                    timeout=self._rpc.timeout,
                )
        except RpcTimeout:
            self.counters["rpc_timeouts"] += 1
            self._on_worker_down(conn, "lease send timed out")
        except ProtocolError:
            self._on_worker_down(conn, "lease send failed")

    def _steal_for(self, thief: _WorkerConn) -> Optional[dict]:
        """One stealable task from the most-loaded peer (None if nothing)."""
        with self._lock:
            victims = sorted(
                (
                    c
                    for c in self._conns.values()
                    if c.alive and c is not thief and c.leases
                ),
                key=lambda c: len(c.leases),
                reverse=True,
            )
        for victim in victims:
            for task_id, task in victim.leases.items():
                if task_id in self._open and task_id not in thief.leases:
                    return task
        return None

    def _leased_elsewhere(
        self, task_id: str, excluding: Optional[_WorkerConn]
    ) -> bool:
        with self._lock:
            return any(
                c.alive and c is not excluding and task_id in c.leases
                for c in self._conns.values()
            )

    def _drop_task(self, task_id: str) -> None:
        """Forget a resolved task everywhere it might still be referenced."""
        with self._lock:
            for c in self._conns.values():
                c.leases.pop(task_id, None)
        try:
            self._pending.remove(task_id)
        except ValueError:
            pass

    def _charge(self, task: dict, error: str) -> None:
        """Spend one attempt on a failed/reclaimed task; requeue or quarantine."""
        attempt = int(task["attempt"])
        if attempt >= self._retry.attempts:
            self._open.pop(task["id"], None)
            self._drop_task(task["id"])
            entry = {
                "scheme": task["label"],
                "benchmark": task["bench"],
                "attempts": attempt,
                "error": error,
            }
            if self._failures is None:
                raise FabricError(
                    f"cell {task['label']}/{task['bench']} failed "
                    f"{attempt} attempt(s): {error}"
                )
            self._failures.append(entry)
        else:
            task["attempt"] = attempt + 1
            if task["id"] not in self._pending:
                self._pending.append(task["id"])
            self._kick_waiting()

    def _kick_waiting(self) -> None:
        """Offer refilled work to every worker parked in the waiting state."""
        if not self._pending:
            return
        with self._lock:
            waiting = [
                c for c in self._conns.values() if c.alive and c.waiting
            ]
        for conn in waiting:
            if not self._pending:
                break
            self._dispatch(conn)

    def _on_worker_down(self, conn: _WorkerConn, reason: str) -> None:
        """Mark a worker dead, reclaim its unique leases, maybe respawn."""
        if not conn.alive:
            return
        conn.alive = False
        conn.waiting = False
        try:
            conn.sock.close()
        except OSError:
            pass
        self.counters["dead"] += 1
        if not self._closing:
            with self._lock:
                breaker = self._breakers.setdefault(
                    conn.ident,
                    CircuitBreaker(
                        threshold=self._breaker_threshold,
                        cooldown=self._breaker_cooldown,
                    ),
                )
            if breaker.record_failure():
                self.counters["breaker_trips"] += 1
        reclaim = list(conn.leases.items())
        conn.leases.clear()
        for task_id, task in reclaim:
            if task_id not in self._open:
                continue
            if self._leased_elsewhere(task_id, None) or task_id in self._pending:
                continue  # another copy is running or already queued
            self.counters["reclaimed"] += 1
            self._charge(task, f"FabricError: worker {conn.index} {reason}")
        if self._closing:
            return
        with self._lock:
            live = sum(1 for c in self._conns.values() if c.alive)
        if (
            self.spawn > 0
            and live < self.spawn
            and self._respawn_budget > 0
            and self._open
        ):
            self._respawn_budget -= 1
            self.counters["respawned"] += 1
            self._spawn_worker()

    def _check_liveness(self) -> None:
        """Time out silent workers; fail fast when the fabric is empty."""
        now = time.monotonic()
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            if conn.alive and now - conn.last_seen > self.heartbeat_timeout:
                self.counters["timeouts"] += 1
                self._on_worker_down(
                    conn,
                    f"heartbeat silent for {self.heartbeat_timeout:.1f}s",
                )
        if not self._open:
            return
        with self._lock:
            live = sum(1 for c in self._conns.values() if c.alive)
        if live:
            self._last_liveness = now
        elif now - self._last_liveness > self.startup_timeout:
            raise FabricError(
                f"no live fabric worker for {self.startup_timeout:.1f}s "
                f"({self.counters['workers_joined']} ever joined, respawn "
                f"budget {self._respawn_budget}); completed cells are "
                f"journaled — fix the workers and --resume"
            )


class FabricExecutor:
    """Adapter giving :func:`~repro.sim.sweep.run_sweep` a fabric backend.

    Mirrors the local executor's surface: cached cells are served (and
    streamed through ``progress`` with ``cached=True``) without touching
    the fabric; only cold cells become tasks. Content-addressed ids make
    re-dispatch, stealing, and resume all idempotent.
    """

    def __init__(self, coordinator: FabricCoordinator):
        self.coordinator = coordinator

    def run_suite(
        self,
        runner: SimulationRunner,
        schemes,
        benchmarks,
        *,
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
    ) -> None:
        tasks: List[dict] = []
        seen = set()
        for scheme in schemes:
            for name in benchmarks:
                spec, label = runner.sized_spec(scheme, name)
                key = runner._cell_key(spec, label, name)
                if key in seen:
                    continue
                seen.add(key)
                cached = runner._load_cached(key, label, name)
                if cached is not None:
                    if progress is not None:
                        progress(label, name, cached, True)
                    continue
                tasks.append(
                    {
                        "id": key,
                        "kind": "cell",
                        "label": label,
                        "bench": name,
                        "spec": spec.to_dict(),
                        "misses": runner.misses,
                        "attempt": 1,
                    }
                )
        if tasks:
            self.coordinator.execute(
                tasks, retry=retry, failures=failures, progress=progress
            )

    def baselines(
        self,
        runner: SimulationRunner,
        benchmarks,
        *,
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        failures: Optional[List[dict]] = None,
    ) -> None:
        tasks: List[dict] = []
        for name in benchmarks:
            key = runner.result_key("insecure", name)
            cached = runner._load_cached(key, "insecure", name)
            if cached is not None:
                if progress is not None:
                    progress("insecure", name, cached, True)
                continue
            tasks.append(
                {
                    "id": key,
                    "kind": "insecure",
                    "label": "insecure",
                    "bench": name,
                    "spec": None,
                    "misses": runner.misses,
                    "attempt": 1,
                }
            )
        if tasks:
            self.coordinator.execute(
                tasks, retry=retry, failures=failures, progress=progress
            )

    def stats(self) -> Optional[Dict[str, object]]:
        return self.coordinator.stats()
