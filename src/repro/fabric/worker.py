"""Fabric worker: executes leased sweep cells against a shipped runner.

A worker dials the coordinator (with bounded, seeded-jitter connect
retries — see :class:`~repro.resilience.RpcPolicy`), introduces itself,
receives its runner configuration (the same ``_spawn_payload`` image
process-pool workers are built from, made wire-safe by
:func:`runner_to_wire`), and then loops: ask for a lease (``need``),
execute every task in it, stream one ``result``/``error`` frame per
cell, repeat until a ``shutdown`` frame arrives (a deliberate stop
always carries one; a bare mid-session EOF is severance and triggers a
reconnect, never a silent exit). A side thread
sends ``heartbeat`` frames so the coordinator can distinguish "busy
replaying a long cell" from "dead" — a worker computing for minutes
keeps beating; a killed worker goes silent and its leases are reclaimed.

Transient failures heal in place: a session severed mid-stream (socket
error, RPC timeout, injected ``rpc.flap``) is *reconnected* — the worker
dials again under the same identity and rejoins as a fresh session; the
coordinator counts the reconnect and its per-worker circuit breaker
quarantines identities that flap repeatedly. A coordinator that is
gone for good fails the redial loop, which is a clean exit (its leases
were reclaimed the moment the connection dropped). ``REPRO_CONNECT_RETRIES``
bounds each dial loop; ``REPRO_RPC_TIMEOUT`` bounds worker sends and the
config wait (the idle lease recv is deliberately unbounded — waiting for
work is the normal state, and heartbeats cover liveness).

Determinism: a worker never *decides* anything. Which cell it runs,
with which sized spec and attempt number, is dictated by the lease; the
cell itself derives all randomness from the runner seed. Results land
in the shared content-addressed store via the runner's own caches, so
the coordinator (and any other worker) can reuse them byte-identically.

Fault plane: every executed cell passes ``fault_hook("fabric.worker",
"<label>/<bench>/<attempt>")`` — the fabric analogue of the pool's
``worker`` site — and each heartbeat passes
``fault_hook("fabric.worker", "heartbeat/<index>/<n>")``, so chaos
plans can kill a worker on a specific cell (``fabric.worker.exit@...``)
or silence its heartbeat (``fabric.worker.stall@heartbeat/...``). Each
session additionally passes ``fault_hook("rpc.flap", "<index>/<session>")``
right after configuration: a ``crash`` there severs the session and
drives the reconnect path deterministically.

Cell failures are reported as ``error`` frames only for *expected*
failure kinds (:data:`~repro.errors.CELL_FAILURES`); a programming
error in the cell path propagates and kills the worker, so the bug
surfaces through the coordinator's dead-worker accounting instead of
masquerading as a retryable cell failure.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.errors import CELL_FAILURES, InjectedFault
from repro.fabric.protocol import (
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)
from repro.faults import fault_hook, install_from_env
from repro.resilience import RpcPolicy
from repro.sim.runner import SimulationRunner
from repro.spec import SchemeSpec

#: Distinguishes worker instances sharing one process (thread workers in
#: tests); combined with the pid it forms the worker's fabric identity.
_INSTANCES = itertools.count()


def runner_to_wire(runner: SimulationRunner) -> Dict[str, object]:
    """JSON-safe image of a runner's spawn payload (inverse: :func:`runner_from_wire`)."""
    wire = dict(runner._spawn_payload())
    wire["proc"] = dataclasses.asdict(runner.proc)
    wire["dram"] = dataclasses.asdict(runner.dram)
    for field in ("cache_dir", "result_cache_dir"):
        wire[field] = str(wire[field]) if wire[field] is not None else None
    return wire


def runner_from_wire(wire: Dict[str, object]) -> SimulationRunner:
    """Rebuild a runner from :func:`runner_to_wire`'s image."""
    payload = dict(wire)
    payload["proc"] = ProcessorConfig(**payload["proc"])
    payload["dram"] = DramConfig(**payload["dram"])
    for field in ("cache_dir", "result_cache_dir"):
        value = payload[field]
        payload[field] = Path(value) if value is not None else None
    return SimulationRunner(**payload)  # type: ignore[arg-type]


class FabricWorker:
    """One worker endpoint (runnable in a process *or* a test thread)."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        rpc: Optional[RpcPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.ident = f"{os.getpid()}.{next(_INSTANCES)}"
        self.rpc = rpc if rpc is not None else RpcPolicy.from_env(seed=os.getpid())
        self.index: Optional[int] = None
        self.cells_executed = 0
        self.sessions = 0
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._base: Optional[SimulationRunner] = None
        # Derived runners per non-default miss budget (bench-grid sweeps).
        self._runners: Dict[int, SimulationRunner] = {}

    def run(self) -> int:
        """Serve sessions until shutdown/unreachable; returns an exit code.

        Each session is one connect→hello→config→lease-loop lifetime; a
        transiently severed session rolls into a reconnect, a clean
        shutdown (or a coordinator gone for good after we served) ends
        the loop.
        """
        while True:
            self.sessions += 1
            code = self._session(self.sessions)
            if code is not None:
                return code
            self.reconnects += 1

    def _connect(self) -> None:
        """Dial with bounded, seeded-jitter retries (``REPRO_CONNECT_RETRIES``)."""
        last: Optional[Exception] = None
        for attempt in range(1, self.rpc.connect_attempts + 1):
            delay = self.rpc.delay(attempt)
            if delay:
                time.sleep(delay)
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                self._sock.settimeout(None)
                return
            except OSError as exc:
                last = exc
        raise ProtocolError(
            f"cannot reach coordinator at {self.host}:{self.port} "
            f"after {self.rpc.connect_attempts} attempt(s): {last}"
        )

    def _session(self, session: int) -> Optional[int]:
        """One connection lifetime; an exit code, or None to reconnect."""
        try:
            self._connect()
        except ProtocolError:
            if session == 1:
                raise  # never reached a coordinator: surface the error
            return 0  # coordinator gone after we served: clean exit
        stop = threading.Event()
        sock = self._sock
        try:
            self._send(
                {
                    "type": "hello",
                    "pid": os.getpid(),
                    "ident": self.ident,
                    "session": session,
                }
            )
            config = recv_message(sock, "worker", timeout=self.rpc.timeout)
            if config is None or config.get("type") != "config":
                return 0  # coordinator went away (or quarantined us)
            self.index = config["index"]
            if self._base is None:
                self._base = runner_from_wire(config["runner"])
            heartbeat = float(config.get("heartbeat", 0) or 0)
            if heartbeat > 0:
                threading.Thread(
                    target=self._heartbeat_loop,
                    args=(heartbeat, stop, sock),
                    daemon=True,
                    name=f"fabric-heartbeat-{self.index}",
                ).start()
            try:
                fault_hook("rpc.flap", f"{self.index}/{session}")
            except InjectedFault as exc:
                raise ProtocolError(f"session flapped (injected): {exc}") from exc
            while True:
                self._send({"type": "need"})
                message = recv_message(sock, "worker")
                if message is None:
                    # A deliberate stop always carries a "shutdown" frame
                    # (coordinator close and quarantine both send one), so
                    # a bare EOF mid-session means we were severed — the
                    # same as a reset, which path we take must not depend
                    # on whether unread bytes turned the close into an
                    # RST. Dial again; a coordinator that is gone for
                    # good fails the redial, which exits cleanly.
                    return None
                if message.get("type") == "shutdown":
                    return 0
                if message.get("type") == "lease":
                    for task in message.get("tasks", []):
                        self._execute(task)
        except ProtocolError:
            # Session severed (organically or by injection): the
            # coordinator reclaims our leases; dial again.
            return None
        finally:
            stop.set()
            try:
                sock.close()
            except OSError:
                pass

    def _send(self, message: Dict) -> None:
        with self._send_lock:
            send_message(self._sock, message, "worker", timeout=self.rpc.timeout)

    def _heartbeat_loop(
        self, interval: float, stop: threading.Event, sock: socket.socket
    ) -> None:
        n = 0
        while not stop.wait(interval):
            n += 1
            try:
                fault_hook("fabric.worker", f"heartbeat/{self.index}/{n}")
                with self._send_lock:
                    send_message(
                        sock, {"type": "heartbeat", "n": n}, "worker",
                        timeout=self.rpc.timeout,
                    )
            except (ProtocolError, InjectedFault, OSError):
                return  # silenced or severed: the coordinator's timeout handles us

    def _runner_for(self, misses: int) -> SimulationRunner:
        assert self._base is not None
        if misses == self._base.misses:
            return self._base
        runner = self._runners.get(misses)
        if runner is None:
            runner = self._base.derive(misses_per_benchmark=misses)
            self._runners[misses] = runner
        return runner

    def _execute(self, task: Dict) -> None:
        """Run one leased cell and stream its result (or error) back."""
        label = task["label"]
        bench = task["bench"]
        attempt = int(task.get("attempt", 1))
        try:
            fault_hook("fabric.worker", f"{label}/{bench}/{attempt}")
            runner = self._runner_for(int(task.get("misses", self._base.misses)))
            if task["kind"] == "insecure":
                result = runner.run_insecure(bench, attempt=attempt)
            else:
                spec = SchemeSpec.from_dict(task["spec"])
                result = runner._run_cell(spec, label, bench, attempt=attempt)
        except CELL_FAILURES as exc:
            reply = {
                "type": "error",
                "id": task["id"],
                "error": f"{type(exc).__name__}: {exc}",
            }
        else:
            self.cells_executed += 1
            reply = {
                "type": "result",
                "id": task["id"],
                "result": dataclasses.asdict(result),
            }
        self._send(reply)


def serve_worker(address: str, connect_timeout: float = 10.0) -> int:
    """Process entry point for ``python -m repro fabric serve-worker``.

    Installs the fault plan from ``REPRO_FAULTS`` (spawned workers
    inherit the coordinator's environment, so ``--faults`` reaches them
    exactly like pool workers; counters restart with the process, which
    is why cross-process plans key on the attempt number) and serves
    until the coordinator shuts the connection down.
    """
    install_from_env()
    host, port = parse_address(address)
    return FabricWorker(host, port, connect_timeout=connect_timeout).run()
