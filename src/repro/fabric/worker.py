"""Fabric worker: executes leased sweep cells against a shipped runner.

A worker dials the coordinator, introduces itself, receives its runner
configuration (the same ``_spawn_payload`` image process-pool workers
are built from, made wire-safe by :func:`runner_to_wire`), and then
loops: ask for a lease (``need``), execute every task in it, stream one
``result``/``error`` frame per cell, repeat until ``shutdown`` or the
connection closes. A side thread sends ``heartbeat`` frames so the
coordinator can distinguish "busy replaying a long cell" from "dead" —
a worker computing for minutes keeps beating; a killed worker goes
silent and its leases are reclaimed.

Determinism: a worker never *decides* anything. Which cell it runs,
with which sized spec and attempt number, is dictated by the lease; the
cell itself derives all randomness from the runner seed. Results land
in the shared content-addressed store via the runner's own caches, so
the coordinator (and any other worker) can reuse them byte-identically.

Fault plane: every executed cell passes ``fault_hook("fabric.worker",
"<label>/<bench>/<attempt>")`` — the fabric analogue of the pool's
``worker`` site — and each heartbeat passes
``fault_hook("fabric.worker", "heartbeat/<index>/<n>")``, so chaos
plans can kill a worker on a specific cell (``fabric.worker.exit@...``)
or silence its heartbeat (``fabric.worker.stall@heartbeat/...``).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading
from pathlib import Path
from typing import Dict, Optional

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.errors import InjectedFault
from repro.fabric.protocol import (
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)
from repro.faults import fault_hook, install_from_env
from repro.sim.runner import SimulationRunner
from repro.spec import SchemeSpec


def runner_to_wire(runner: SimulationRunner) -> Dict[str, object]:
    """JSON-safe image of a runner's spawn payload (inverse: :func:`runner_from_wire`)."""
    wire = dict(runner._spawn_payload())
    wire["proc"] = dataclasses.asdict(runner.proc)
    wire["dram"] = dataclasses.asdict(runner.dram)
    for field in ("cache_dir", "result_cache_dir"):
        wire[field] = str(wire[field]) if wire[field] is not None else None
    return wire


def runner_from_wire(wire: Dict[str, object]) -> SimulationRunner:
    """Rebuild a runner from :func:`runner_to_wire`'s image."""
    payload = dict(wire)
    payload["proc"] = ProcessorConfig(**payload["proc"])
    payload["dram"] = DramConfig(**payload["dram"])
    for field in ("cache_dir", "result_cache_dir"):
        value = payload[field]
        payload[field] = Path(value) if value is not None else None
    return SimulationRunner(**payload)  # type: ignore[arg-type]


class FabricWorker:
    """One worker endpoint (runnable in a process *or* a test thread)."""

    def __init__(self, host: str, port: int, connect_timeout: float = 10.0):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.index: Optional[int] = None
        self.cells_executed = 0
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._base: Optional[SimulationRunner] = None
        # Derived runners per non-default miss budget (bench-grid sweeps).
        self._runners: Dict[int, SimulationRunner] = {}

    def run(self) -> int:
        """Serve leases until shutdown/disconnect; returns an exit code."""
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ProtocolError(
                f"cannot reach coordinator at {self.host}:{self.port}: {exc}"
            ) from exc
        self._sock.settimeout(None)
        try:
            self._send({"type": "hello", "pid": os.getpid()})
            config = recv_message(self._sock, "worker")
            if config is None or config.get("type") != "config":
                return 0  # coordinator went away before configuring us
            self.index = config["index"]
            self._base = runner_from_wire(config["runner"])
            heartbeat = float(config.get("heartbeat", 0) or 0)
            if heartbeat > 0:
                threading.Thread(
                    target=self._heartbeat_loop,
                    args=(heartbeat,),
                    daemon=True,
                    name=f"fabric-heartbeat-{self.index}",
                ).start()
            while True:
                self._send({"type": "need"})
                message = recv_message(self._sock, "worker")
                if message is None or message.get("type") == "shutdown":
                    return 0
                if message.get("type") == "lease":
                    for task in message.get("tasks", []):
                        self._execute(task)
        except ProtocolError:
            # Connection severed (organically or by injection): the
            # coordinator reclaims our leases; nothing to clean up here.
            return 0
        finally:
            self._stop.set()
            try:
                self._sock.close()
            except OSError:
                pass

    def _send(self, message: Dict) -> None:
        with self._send_lock:
            send_message(self._sock, message, "worker")

    def _heartbeat_loop(self, interval: float) -> None:
        n = 0
        while not self._stop.wait(interval):
            n += 1
            try:
                fault_hook("fabric.worker", f"heartbeat/{self.index}/{n}")
                self._send({"type": "heartbeat", "n": n})
            except (ProtocolError, InjectedFault, OSError):
                return  # silenced or severed: the coordinator's timeout handles us

    def _runner_for(self, misses: int) -> SimulationRunner:
        assert self._base is not None
        if misses == self._base.misses:
            return self._base
        runner = self._runners.get(misses)
        if runner is None:
            runner = self._base.derive(misses_per_benchmark=misses)
            self._runners[misses] = runner
        return runner

    def _execute(self, task: Dict) -> None:
        """Run one leased cell and stream its result (or error) back."""
        label = task["label"]
        bench = task["bench"]
        attempt = int(task.get("attempt", 1))
        try:
            fault_hook("fabric.worker", f"{label}/{bench}/{attempt}")
            runner = self._runner_for(int(task.get("misses", self._base.misses)))
            if task["kind"] == "insecure":
                result = runner.run_insecure(bench, attempt=attempt)
            else:
                spec = SchemeSpec.from_dict(task["spec"])
                result = runner._run_cell(spec, label, bench, attempt=attempt)
        except Exception as exc:
            reply = {
                "type": "error",
                "id": task["id"],
                "error": f"{type(exc).__name__}: {exc}",
            }
        else:
            self.cells_executed += 1
            reply = {
                "type": "result",
                "id": task["id"],
                "result": dataclasses.asdict(result),
            }
        self._send(reply)


def serve_worker(address: str, connect_timeout: float = 10.0) -> int:
    """Process entry point for ``python -m repro fabric serve-worker``.

    Installs the fault plan from ``REPRO_FAULTS`` (spawned workers
    inherit the coordinator's environment, so ``--faults`` reaches them
    exactly like pool workers; counters restart with the process, which
    is why cross-process plans key on the attempt number) and serves
    until the coordinator shuts the connection down.
    """
    install_from_env()
    host, port = parse_address(address)
    return FabricWorker(host, port, connect_timeout=connect_timeout).run()
