"""Content-addressed shared store backing a fabric run.

The fabric does not invent a new storage format: the experiment engine
already content-addresses every artifact — miss traces under
:func:`~repro.sim.trace_cache.trace_key` and replay results under
:func:`~repro.sim.result_cache.result_key`, both canonical digests of
everything that determines the bytes. :class:`SharedStore` is the thin
adapter that turns those two caches into the fabric's shared substrate:

- every worker is attached to the *same* pair of directories, so a cell
  computed by any worker (including a worker that later dies) is
  instantly reusable by every other worker, by the coordinator's own
  pre-dispatch cache check, and by later local or fabric runs;
- writes stay race-safe under concurrent same-key writers (two workers
  racing one stolen cell) because both caches write via unique temp
  files + atomic ``os.replace`` — last writer wins and both images are
  identical by construction (content-addressing means the key *is* the
  content identity);
- when the runner's caches are disabled, the store provisions an
  ephemeral directory pair for the duration of the run, so cross-worker
  reuse works even for cache-less runs (cleaned up on :meth:`close`).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.sim.result_cache import ResultCache
from repro.sim.trace_cache import TraceCache


class SharedStore:
    """The trace + result cache pair every fabric participant shares."""

    def __init__(
        self,
        trace_root: Union[str, Path, None] = None,
        result_root: Union[str, Path, None] = None,
    ):
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if trace_root is None or result_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fabric-store-")
            base = Path(self._tmp.name)
            trace_root = trace_root if trace_root is not None else base / "traces"
            result_root = (
                result_root if result_root is not None else base / "results"
            )
        self.trace_cache = TraceCache(trace_root)
        self.result_cache = ResultCache(result_root)

    @classmethod
    def for_runner(cls, runner) -> "SharedStore":
        """Store colocated with a runner's caches (ephemeral where disabled)."""
        return cls(
            runner.trace_cache.root if runner.trace_cache is not None else None,
            runner.result_cache.root if runner.result_cache is not None else None,
        )

    def attach(self, runner):
        """A runner whose on-disk caches are this store.

        This is the runner image the coordinator ships to workers: the
        derived payload carries the store's directories, so every worker
        process reads and writes the same content-addressed entries.
        """
        return runner.derive(
            cache_dir=self.trace_cache.root,
            result_cache_dir=self.result_cache.root,
        )

    # -- inventory ---------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        """Whether a *result* entry for the canonical key exists."""
        return key in self.result_cache

    def result_keys(self) -> List[str]:
        return self.result_cache.keys()

    def trace_keys(self) -> List[str]:
        return self.trace_cache.keys()

    def load_result(self, key: str):
        """Validated result for a key (None on miss/corruption)."""
        return self.result_cache.load(key)

    def stats(self) -> Dict[str, object]:
        """JSON-safe inventory snapshot for the report's resilience block."""
        return {
            "trace_root": str(self.trace_cache.root),
            "result_root": str(self.result_cache.root),
            "traces": len(self.trace_keys()),
            "results": len(self.result_keys()),
            "ephemeral": self._tmp is not None,
        }

    def close(self) -> None:
        """Release the ephemeral directories, if this store owns any."""
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
