"""Central ORAM tree parameterisation.

:class:`OramConfig` captures the Path ORAM geometry of §3.1 — block count N,
block size B, bucket arity Z, tree depth L — together with the metadata and
padding rules the paper uses for bandwidth accounting (buckets padded to
512-bit multiples for DDR3, Fig. 3 caption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.bitops import is_power_of_two, log2_exact

#: Default stash capacity in blocks, following [26] (§3.1).
DEFAULT_STASH_LIMIT = 200

#: DDR3 access granularity in bytes; buckets are padded to a multiple.
DRAM_BEAT_BYTES = 64


@dataclass(frozen=True)
class OramConfig:
    """Geometry and sizing of one Path ORAM tree.

    Parameters
    ----------
    num_blocks:
        N — the maximum number of real data blocks. Must be a power of two.
    block_bytes:
        B — payload bytes per block (a cache line; 64 in Table 1).
    blocks_per_bucket:
        Z — block slots per bucket (4 in Table 1, 3 in the [26] comparison).
    levels:
        L — tree depth; leaves are at level L. Defaults to log2(N) - 1,
        giving 2^L = N/2 leaves so the tree has ~2N slots with Z=4,
        i.e. 50% utilisation as in §7.1.1. Pass explicitly to override.
    stash_limit:
        Maximum stash occupancy before the (negligible-probability)
        overflow is flagged; 200 following [26].
    addr_bytes / leaf_bytes:
        Per-block metadata stored alongside each block in the tree.
    mac_bytes:
        Extra per-block bytes for a PMMAC tag (0 when integrity is off).
    """

    num_blocks: int
    block_bytes: int = 64
    blocks_per_bucket: int = 4
    levels: int = -1
    stash_limit: int = DEFAULT_STASH_LIMIT
    addr_bytes: int = 4
    leaf_bytes: int = 4
    mac_bytes: int = 0
    seed_bytes: int = 8

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_blocks):
            raise ValueError("num_blocks must be a power of two")
        if self.block_bytes <= 0 or self.blocks_per_bucket <= 0:
            raise ValueError("block_bytes and blocks_per_bucket must be positive")
        if self.levels < 0:
            object.__setattr__(self, "levels", max(log2_exact(self.num_blocks) - 1, 0))

    # -- derived geometry ----------------------------------------------------

    @property
    def num_leaves(self) -> int:
        """Number of leaves, 2^L."""
        return 1 << self.levels

    @property
    def num_buckets(self) -> int:
        """Total buckets in the tree, 2^(L+1) - 1."""
        return (1 << (self.levels + 1)) - 1

    @property
    def slot_bytes(self) -> int:
        """Stored bytes per block slot: payload + addr + leaf + MAC."""
        return self.block_bytes + self.addr_bytes + self.leaf_bytes + self.mac_bytes

    @property
    def bucket_payload_bytes(self) -> int:
        """Bytes of one bucket before DRAM padding (slots + seed)."""
        return self.blocks_per_bucket * self.slot_bytes + self.seed_bytes

    @property
    def bucket_bytes(self) -> int:
        """Bucket size padded to a 512-bit (64 B) multiple, per Fig. 3."""
        beats = -(-self.bucket_payload_bytes // DRAM_BEAT_BYTES)
        return beats * DRAM_BEAT_BYTES

    @property
    def path_bytes(self) -> int:
        """Bytes moved to read or write one full path: (L+1) buckets."""
        return (self.levels + 1) * self.bucket_bytes

    @property
    def capacity_bytes(self) -> int:
        """Logical data capacity N * B."""
        return self.num_blocks * self.block_bytes

    def with_mac(self, mac_bytes: int) -> "OramConfig":
        """Copy of this config with PMMAC tag bytes added to each slot."""
        return OramConfig(
            num_blocks=self.num_blocks,
            block_bytes=self.block_bytes,
            blocks_per_bucket=self.blocks_per_bucket,
            levels=self.levels,
            stash_limit=self.stash_limit,
            addr_bytes=self.addr_bytes,
            leaf_bytes=self.leaf_bytes,
            mac_bytes=mac_bytes,
            seed_bytes=self.seed_bytes,
        )


@dataclass(frozen=True)
class FrontendTimings:
    """Latency constants from Table 1 (processor cycles)."""

    aes_latency: int = 21
    sha3_latency: int = 18
    frontend_latency: int = 20
    backend_latency: int = 30


@dataclass(frozen=True)
class ProcessorConfig:
    """Core and cache parameters from Table 1."""

    core_ghz: float = 1.3
    l1_bytes: int = 32 * 1024
    l1_ways: int = 4
    l1_latency: int = 2  # data + tag
    l2_bytes: int = 1024 * 1024
    l2_ways: int = 16
    l2_latency: int = 11  # data + tag
    line_bytes: int = 64
    insecure_dram_latency: int = 58  # avg processor cycles without ORAM
