"""ORAM-as-a-service: N simulated tenants over M sharded ORAM instances.

The service multiplexes tenant request streams over a pool of
independently-built ORAM shards, each driven by the *same*
:class:`~repro.sim.engine.ReplayEngine` core the offline replay kernel
uses — serving is not a fork of replay, it is replay fed by an admission
queue. That shared core is what makes the headline property possible:
a single-tenant, single-shard serve of a benchmark trace is
**bit-identical** to :func:`~repro.sim.system.replay_trace` on the same
trace (see :func:`serve_replay_equivalent` and
``tests/test_serve_lockstep.py``).

Scheduling is epoch-based, and every simulated outcome is decided by
three shared, deterministic steps:

1. **Admission** (:meth:`OramService._admit`) — each tenant offers up
   to ``burst`` requests; offers are ordered earliest-deadline-first
   (ties and deadline-free requests fall back to (tenant index, stream
   position) — with no deadlines configured the EDF order *is* the
   historical FIFO order, bit for bit) and routed to shards by an
   address hash. Per-shard epoch queues are bounded by
   ``queue_capacity``; an arrival at a full queue is either **shed**
   (dropped permanently, counted, cursor advances), **deferred** (the
   tenant stops issuing for this epoch and retries the same request
   next epoch), or **throttled** (deferred plus a cooldown of
   ``throttle_epochs`` epochs) per the configured backpressure policy.
   Per-tenant token-bucket quotas and the graceful-degradation ladder
   (see :mod:`repro.resilience`) are enforced here too — admission is
   the single mutation site for every overload decision.
2. **Execution** (:meth:`OramShard.execute`) — each shard drains its
   epoch queue in admission (ticket) order, coalesced into
   ``max_batch``-sized runs through ``ReplayEngine.run_batch`` — which
   is where concurrent misses meet ``plan_batch``/``leaf_for_many``.
   Shards are mutually independent, so they may run in any interleaving.
3. **Accounting** (:meth:`OramService._account`) — after the epoch
   barrier, per-tenant counters/histograms are updated in (shard index,
   queue position) order. Simulated queue wait is the prefix sum of
   service latencies ahead of a request in its shard's epoch queue.

The serial driver (:meth:`OramService.run_serial`) and the asyncio
driver (:meth:`OramService.run_async` — real tenant client tasks, an
admission queue, shard worker tasks yielding between batches, an
epoch-end barrier) call exactly these three steps, so both produce
identical simulated results; only wall-clock observations differ.
"""

from __future__ import annotations

import asyncio
import math
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.faults import active as faults_active
from repro.resilience import DegradationController, TokenBucket
from repro.proc.hierarchy import MissTrace
from repro.sim.engine import ReplayEngine
from repro.sim.metrics import SimResult
from repro.sim.runner import SimulationRunner
from repro.sim.system import base_cycles
from repro.serve.stats import ShardStats, TenantStats
from repro.serve.workload import (
    Request,
    TenantSpec,
    tenant_region_blocks,
    tenant_requests,
)
from repro.utils.rng import DeterministicRng

#: Backpressure policies for a full shard queue. ``throttle`` defers
#: *and* puts the tenant on a ``throttle_epochs`` cooldown, so a tenant
#: that keeps hitting full queues backs off instead of re-offering every
#: epoch.
POLICIES = ("defer", "shed", "throttle")

#: Admission orderings: ``edf`` (earliest-deadline-first; identical to
#: ``fifo`` when no tenant sets a deadline) and ``fifo`` (the historical
#: fixed tenant-index order, kept as the lockstep reference).
ADMISSION_ORDERS = ("edf", "fifo")

#: Fallback sizing benchmark when every tenant uses an explicit event
#: stream (only ``block_bytes``/``onchip``/``plb`` sizing is taken from
#: it; ``num_blocks`` is always overridden with the pool capacity).
_SIZING_FALLBACK = "mcf"


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving scenario (the seed lives on the runner)."""

    scheme: str = "PC_X32"
    shards: int = 1
    burst: int = 4
    max_batch: int = 32
    queue_capacity: int = 64
    policy: str = "defer"
    shard_blocks: Optional[int] = None
    record_accesses: bool = False
    #: Admission ordering — see :data:`ADMISSION_ORDERS`.
    admission: str = "edf"
    #: Cooldown length (epochs) imposed by the ``throttle`` policy.
    throttle_epochs: int = 1
    #: Consecutive overloaded epochs before the degradation ladder
    #: escalates one level. None (the default) disables degradation.
    degrade_after: Optional[int] = None
    #: Consecutive clean epochs before de-escalating (default: mirror
    #: ``degrade_after``).
    recover_after: Optional[int] = None

    def __post_init__(self):
        for field in ("shards", "burst", "max_batch", "queue_capacity",
                      "throttle_epochs"):
            if getattr(self, field) < 1:
                raise ConfigurationError(f"serve config: {field} must be >= 1")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"serve config: unknown policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )
        if self.admission not in ADMISSION_ORDERS:
            raise ConfigurationError(
                f"serve config: unknown admission order {self.admission!r}; "
                f"choose from {ADMISSION_ORDERS}"
            )
        if self.shard_blocks is not None and self.shard_blocks < 2:
            raise ConfigurationError("serve config: shard_blocks must be >= 2")
        for field in ("degrade_after", "recover_after"):
            value = getattr(self, field)
            if value is not None and value < 1:
                raise ConfigurationError(f"serve config: {field} must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "shards": self.shards,
            "burst": self.burst,
            "max_batch": self.max_batch,
            "queue_capacity": self.queue_capacity,
            "policy": self.policy,
            "shard_blocks": self.shard_blocks,
            "admission": self.admission,
            "throttle_epochs": self.throttle_epochs,
            "degrade_after": self.degrade_after,
            "recover_after": self.recover_after,
        }


class _Admitted:
    """One admitted request in a shard's epoch queue.

    ``deadline`` is the request's absolute deadline on the service's
    virtual clock (None when its tenant has no SLO); it rides along so
    post-barrier accounting can judge misses without re-deriving
    admission history.
    """

    __slots__ = (
        "tenant", "local_addr", "is_write", "deadline", "wall_start", "wall_end"
    )

    def __init__(
        self,
        tenant: int,
        local_addr: int,
        is_write: bool,
        deadline: Optional[float] = None,
    ):
        self.tenant = tenant
        self.local_addr = local_addr
        self.is_write = is_write
        self.deadline = deadline
        self.wall_start = time.perf_counter()
        self.wall_end = self.wall_start


class OramShard:
    """One ORAM instance in the pool: frontend + engine + address directory.

    With a single shard the service address space maps onto the ORAM
    identically (no renumbering — the lockstep guarantee depends on it).
    With multiple shards, each shard assigns dense local addresses to
    the global addresses hashed onto it in first-touch order, which is
    deterministic because admission is.
    """

    def __init__(
        self,
        index: int,
        frontend,
        engine: ReplayEngine,
        capacity: int,
        identity: bool,
        max_batch: int,
        record_accesses: bool = False,
    ):
        self.index = index
        self.frontend = frontend
        self.engine = engine
        self.capacity = capacity
        self.identity = identity
        self.max_batch = max_batch
        self.stats = ShardStats(index)
        self.stats.record_accesses = record_accesses
        self._directory: Dict[int, int] = {}
        # Circuit breaker: while ``down_epochs > 0`` the shard executes
        # nothing; admitted requests park in ``backlog`` (in admission
        # order) and drain to the front of the first post-recovery epoch
        # queue. Both fields only change inside the shared deterministic
        # steps, so serial and asyncio drivers see identical failovers.
        self.down_epochs = 0
        self.backlog: List[_Admitted] = []

    @property
    def available(self) -> bool:
        return self.down_epochs == 0

    def trip(self, epochs: int) -> None:
        """Open the circuit breaker for ``epochs`` epochs (this one included)."""
        self.down_epochs = max(self.down_epochs, max(int(epochs), 1))
        self.stats.breaker_trips += 1

    def map_addr(self, global_addr: int) -> int:
        """Global service address -> this shard's local block address."""
        if self.identity:
            return global_addr
        local = self._directory.get(global_addr)
        if local is None:
            local = len(self._directory)
            if local >= self.capacity:
                raise ReproError(
                    f"shard {self.index} directory overflow: "
                    f"{self.capacity} blocks mapped; raise shard_blocks"
                )
            self._directory[global_addr] = local
        return local

    def _run_chunk(
        self, chunk: Sequence[_Admitted]
    ) -> List[Tuple[_Admitted, float]]:
        """One coalesced ``run_batch`` over a slice of the epoch queue."""
        latencies = self.engine.run_batch(
            [r.local_addr for r in chunk], [r.is_write for r in chunk]
        )
        end = time.perf_counter()
        out = []
        for request, latency in zip(chunk, latencies):
            self.stats.record_access(
                request.tenant, request.local_addr, request.is_write
            )
            self.stats.busy_cycles += latency
            request.wall_end = end
            out.append((request, latency))
        self.stats.batches += 1
        return out

    def execute(
        self, requests: Sequence[_Admitted]
    ) -> List[Tuple[_Admitted, float]]:
        """Drain one epoch queue in ticket order (serial driver)."""
        executed: List[Tuple[_Admitted, float]] = []
        for start in range(0, len(requests), self.max_batch):
            executed.extend(self._run_chunk(requests[start : start + self.max_batch]))
        if requests:
            self.stats.epochs_busy += 1
        return executed

    async def execute_async(
        self, requests: Sequence[_Admitted]
    ) -> List[Tuple[_Admitted, float]]:
        """Same drain, yielding to the event loop between batches."""
        executed: List[Tuple[_Admitted, float]] = []
        for start in range(0, len(requests), self.max_batch):
            executed.extend(self._run_chunk(requests[start : start + self.max_batch]))
            await asyncio.sleep(0)
        if requests:
            self.stats.epochs_busy += 1
        return executed


class _TenantState:
    """Mutable serving state of one tenant: stream, cursor, stats, region.

    SLO state: ``deadlines`` maps stream index -> absolute deadline for
    requests already offered but not yet resolved (bounded by ``burst``);
    ``last_deadline`` clamps assignments nondecreasing so EDF never
    reorders one tenant's own stream; ``cooldown`` counts throttle
    epochs still to sit out; ``bucket`` is the quota token bucket.
    """

    __slots__ = (
        "spec", "stream", "cursor", "offset", "region_blocks", "stats",
        "deadlines", "last_deadline", "cooldown", "bucket",
    )

    def __init__(
        self,
        spec: TenantSpec,
        stream: List[Request],
        offset: int,
        region_blocks: int,
    ):
        self.spec = spec
        self.stream = stream
        self.cursor = 0
        self.offset = offset
        self.region_blocks = region_blocks
        self.stats = TenantStats(spec.name, spec.workload_label)
        self.deadlines: Dict[int, float] = {}
        self.last_deadline = 0.0
        self.cooldown = 0
        self.bucket = TokenBucket(spec.quota) if spec.quota is not None else None

    @property
    def remaining(self) -> int:
        return len(self.stream) - self.cursor


class OramService:
    """The multi-tenant serving layer over a pool of ORAM shards."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        runner: Optional[SimulationRunner] = None,
        config: ServeConfig = ServeConfig(),
        observer=None,
    ):
        if not tenants:
            raise ConfigurationError("a serve scenario needs at least one tenant")
        self.runner = runner if runner is not None else SimulationRunner()
        self.config = config
        sizing_bench = next(
            (t.benchmark for t in tenants if t.benchmark is not None),
            _SIZING_FALLBACK,
        )
        probe_spec, self.scheme_label = self.runner.sized_spec(
            config.scheme, sizing_bench
        )
        self.block_bytes = probe_spec.block_bytes
        lines_per_block = max(self.block_bytes // self.runner.proc.line_bytes, 1)
        # Materialise every tenant stream up front (trace-cache backed),
        # laying tenant regions back to back in the service address space.
        self._tenants: List[_TenantState] = []
        offset = 0
        for spec in tenants:
            stream = tenant_requests(spec, self.runner, lines_per_block)
            region = tenant_region_blocks(spec, self.block_bytes, stream)
            self._tenants.append(_TenantState(spec, stream, offset, region))
            offset += region
        total_blocks = _next_pow2(max(offset, 2))
        if config.shard_blocks is not None:
            capacity = _next_pow2(config.shard_blocks)
        elif config.shards == 1:
            capacity = total_blocks
        else:
            capacity = _next_pow2(max(2 * total_blocks // config.shards, 64))
        self.shards: List[OramShard] = []
        for index in range(config.shards):
            spec, _label = self.runner.sized_spec(
                config.scheme, sizing_bench, num_blocks=capacity
            )
            frontend = spec.build(
                rng=DeterministicRng((self.runner.seed + index) ^ 0xA5A5),
                observer=observer,
            )
            engine = ReplayEngine(
                frontend, self.runner.timing_for(frontend), proc=self.runner.proc
            )
            self.shards.append(
                OramShard(
                    index,
                    frontend,
                    engine,
                    capacity=capacity,
                    identity=(config.shards == 1),
                    max_batch=config.max_batch,
                    record_accesses=config.record_accesses,
                )
            )
        self.epochs = 0
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0
        # SLO control-plane state (all mutated only inside the shared
        # deterministic steps, so both drivers agree on every decision).
        # The virtual clock is the cumulative sum of executed service
        # latencies across all shards — the service-wide simulated time
        # deadlines are judged against.
        self._vclock = 0.0
        self._min_priority = min(t.spec.priority for t in self._tenants)
        self.degradation = DegradationController(
            config.degrade_after, config.recover_after
        )
        self._epoch_starved = False
        self._starved_epochs = 0

    # -- setup helpers ---------------------------------------------------------

    def preload(self, tenant_index: int, addr: int, data: bytes) -> None:
        """Write a block before serving starts, outside all accounting.

        The touched shard's engine is re-created afterwards so its
        baseline counters (and cycle fold) exclude the preload traffic.
        """
        if self.epochs or any(t.cursor for t in self._tenants):
            raise ReproError("preload must happen before serving starts")
        shard = self._route(self._tenants[tenant_index].offset + addr)
        from repro.backend.ops import Op

        payload = bytes(data).ljust(self.block_bytes, b"\0")[: self.block_bytes]
        shard.frontend.access(
            shard.map_addr(self._tenants[tenant_index].offset + addr),
            Op.WRITE,
            payload,
        )
        shard.engine = ReplayEngine(
            shard.frontend, shard.engine.timing, proc=self.runner.proc
        )

    def _shard_index(self, global_addr: int) -> int:
        if self.config.shards == 1:
            return 0
        key = global_addr.to_bytes(8, "little", signed=True)
        return zlib.crc32(key) % self.config.shards

    def _route(self, global_addr: int) -> OramShard:
        return self.shards[self._shard_index(global_addr)]

    # -- the three deterministic steps -----------------------------------------

    def _next_candidates(self, tenant_index: int) -> List[Request]:
        """Pure peek: the next ``burst`` requests of one tenant's stream."""
        state = self._tenants[tenant_index]
        return state.stream[state.cursor : state.cursor + self.config.burst]

    def _update_breakers(self) -> None:
        """Consult the fault plan once per shard, in index order.

        This runs at the top of admission — a shared deterministic step —
        so ``serve.shard`` injectors observe exactly one match per shard
        per epoch regardless of driver (``#2`` means "epoch 2"). A
        ``stall`` match trips the shard's breaker for ``epochs=N`` epochs;
        any other action gets the standard fault behaviour.
        """
        plan = faults_active()
        if plan is None:
            return
        for shard in self.shards:
            key = str(shard.index)
            spec = plan.match("serve.shard", key)
            if spec is None:
                continue
            if spec.action == "stall":
                shard.trip(int(spec.params.get("epochs", "1")))
            else:
                plan.perform(spec, "serve.shard", key)

    def _effective_policy(self, state: _TenantState) -> str:
        """The backpressure policy after graceful degradation is applied.

        Level 1 (``shed-low``) turns full-queue events of the *lowest*
        priority class into sheds; level 2 (``best-effort``) sheds for
        everyone. Degradation never drops already-admitted work — it
        only changes how new arrivals meet a full queue.
        """
        level = self.degradation.level
        if level >= 2:
            return "shed"
        if level == 1 and state.spec.priority <= self._min_priority:
            return "shed"
        return self.config.policy

    def _assign_deadlines(
        self, candidate_lists: Sequence[Sequence[Request]]
    ) -> None:
        """Stamp absolute deadlines on newly-offered requests.

        A request's deadline is the virtual clock at its *first* offer
        plus the tenant's ``deadline_cycles`` — a deferred request keeps
        its original deadline, so its slack shrinks and EDF pulls it
        forward. ``serve.deadline`` fault injectors are consulted here,
        once per tenant per epoch in tenant order (key = tenant index);
        a ``stall`` match tightens this epoch's *new* deadlines by
        ``cycles=N`` — pure bookkeeping pressure that never touches
        simulated cycles or access order, which is what keeps chaos runs
        lockstep with their goldens. Assignments are clamped
        nondecreasing per tenant so EDF preserves each tenant's stream
        order (an ORAM client's requests are dependent).
        """
        plan = faults_active()
        for tenant_index, candidates in enumerate(candidate_lists):
            state = self._tenants[tenant_index]
            tighten = 0.0
            if plan is not None:
                key = str(tenant_index)
                spec = plan.match("serve.deadline", key)
                if spec is not None:
                    if spec.action == "stall":
                        tighten = float(spec.params.get("cycles", "0") or 0)
                    else:
                        plan.perform(spec, "serve.deadline", key)
            if state.spec.deadline_cycles is None:
                continue
            for position in range(len(candidates)):
                index = state.cursor + position
                if index in state.deadlines:
                    continue
                deadline = max(
                    self._vclock + state.spec.deadline_cycles - tighten,
                    state.last_deadline,
                )
                state.deadlines[index] = deadline
                state.last_deadline = deadline

    def _admit(
        self, candidate_lists: Sequence[Sequence[Request]]
    ) -> List[List[_Admitted]]:
        """Bounded, deadline-aware admission — the single mutation site
        for cursors, shed/defer/throttle counters, quota buckets,
        degradation level, and breaker state.

        Offers are flattened and processed earliest-deadline-first (see
        :data:`ADMISSION_ORDERS`): the sort key is ``(absolute deadline,
        tenant index, stream position)`` with deadline-free requests at
        +inf, so with no deadlines configured the EDF order degenerates
        to exactly the historical fixed-tenant-order FIFO — the
        bit-identity the lockstep suite pins. Per-tenant deadlines are
        nondecreasing in stream position, so EDF never reorders a single
        tenant's own requests.

        A shard with an open breaker executes nothing this epoch: its
        arrivals *park* in the shard backlog (cursor advances, the local
        address is assigned in admission order, so the directory — and
        therefore the access digest — is unchanged by the failover).
        Parked requests occupy queue capacity, so a long stall applies
        ordinary backpressure. The epoch the breaker closes, the backlog
        drains to the front of the epoch queue — execution order is
        exactly admission order, merely delayed.
        """
        self._update_breakers()
        self._assign_deadlines(candidate_lists)
        queues: List[List[_Admitted]] = [[] for _ in self.shards]
        for shard, queue in zip(self.shards, queues):
            if shard.available and shard.backlog:
                queue.extend(shard.backlog)
                shard.backlog.clear()
        capacity = self.config.queue_capacity
        self._epoch_starved = False
        overloaded = False
        # Refill quota buckets and run down throttle cooldowns, in
        # tenant order; a cooling-down tenant offers nothing this epoch.
        blocked = [False] * len(self._tenants)
        for tenant_index, state in enumerate(self._tenants):
            if state.bucket is not None:
                state.bucket.refill()
            if state.cooldown > 0:
                state.cooldown -= 1
                blocked[tenant_index] = True
                if state.remaining:
                    self._epoch_starved = True
        # Flatten this epoch's offers into EDF order. Stream position is
        # relative to the tenant's epoch-start cursor; because per-tenant
        # keys are nondecreasing, by the time position p is processed the
        # cursor has advanced exactly p slots (or the tenant is blocked).
        entries: List[Tuple[float, int, int, Request]] = []
        for tenant_index, candidates in enumerate(candidate_lists):
            state = self._tenants[tenant_index]
            for position, request in enumerate(candidates):
                deadline = state.deadlines.get(state.cursor + position)
                entries.append(
                    (
                        deadline if deadline is not None else math.inf,
                        tenant_index,
                        position,
                        request,
                    )
                )
        if self.config.admission == "edf":
            entries.sort(key=lambda entry: entry[:3])
        for _deadline, tenant_index, _position, request in entries:
            if blocked[tenant_index]:
                continue
            state = self._tenants[tenant_index]
            local_addr, is_write = request
            global_addr = state.offset + local_addr
            shard_index = self._shard_index(global_addr)
            shard = self.shards[shard_index]
            if state.bucket is not None and not state.bucket.ready:
                # Quota exhausted: a deterministic pause, not a drop.
                state.stats.throttled += 1
                shard.stats.throttled += 1
                blocked[tenant_index] = True
                self._epoch_starved = True
                continue
            if len(queues[shard_index]) + len(shard.backlog) >= capacity:
                overloaded = True
                policy = self._effective_policy(state)
                if policy == "shed":
                    state.deadlines.pop(state.cursor, None)
                    state.cursor += 1
                    state.stats.issued += 1
                    state.stats.shed += 1
                    shard.stats.shed += 1
                    continue
                if policy == "throttle":
                    state.stats.throttled += 1
                    shard.stats.throttled += 1
                    state.cooldown = self.config.throttle_epochs
                    blocked[tenant_index] = True
                    continue
                state.stats.deferred += 1
                shard.stats.deferred += 1
                blocked[tenant_index] = True  # defer: retry next epoch
                continue
            if state.bucket is not None:
                state.bucket.take()
            admitted = _Admitted(
                tenant_index,
                shard.map_addr(global_addr),
                bool(is_write),
                deadline=state.deadlines.pop(state.cursor, None),
            )
            state.cursor += 1
            state.stats.issued += 1
            if shard.available:
                queues[shard_index].append(admitted)
            else:
                shard.backlog.append(admitted)
                shard.stats.parked += 1
        for shard, queue in zip(self.shards, queues):
            shard.stats.record_depth(len(queue))
            if not shard.available:
                shard.down_epochs -= 1
                shard.stats.stall_epochs += 1
        if self._epoch_starved:
            self._starved_epochs += 1
        self.degradation.observe(self.epochs, overloaded)
        return queues

    def _account(
        self,
        executed_by_shard: Sequence[Optional[List[Tuple[_Admitted, float]]]],
    ) -> None:
        """Post-barrier accounting in (shard index, queue position) order.

        Deadline judging: every shard starts the epoch at the service's
        virtual clock, so a request completes at ``vclock + queue wait +
        service latency``; the clock then advances by the epoch's total
        executed cycles. Misses and slack are bookkeeping over already
        simulated quantities — they never feed back into scheduling
        within the epoch, so both drivers judge identically.
        """
        epoch_start = self._vclock
        executed_cycles = 0.0
        for executed in executed_by_shard:
            if not executed:
                continue
            wait = 0.0
            for request, latency in executed:
                stats = self._tenants[request.tenant].stats
                stats.completed += 1
                stats.cycles += latency
                stats.service_cycles.record(latency)
                stats.latency_cycles.record(wait + latency)
                stats.wall_us.record(
                    (request.wall_end - request.wall_start) * 1e6
                )
                if request.deadline is not None:
                    slack = request.deadline - (epoch_start + wait + latency)
                    if slack < 0:
                        stats.missed += 1
                    stats.slack_cycles.record(max(slack, 0.0))
                wait += latency
                executed_cycles += latency
        self._vclock += executed_cycles

    # -- drivers ---------------------------------------------------------------

    def _unfinished(self) -> bool:
        return any(t.remaining for t in self._tenants)

    def _max_epochs(self) -> int:
        # Breaker-open epochs legitimately make no execution progress, so
        # the budget grows with every stall the fault plan injects — and
        # likewise with every epoch a quota bucket or throttle cooldown
        # legitimately paused a tenant that still had work.
        stalls = sum(s.stats.stall_epochs for s in self.shards)
        return (
            2 * sum(len(t.stream) for t in self._tenants)
            + 16
            + 2 * stalls
            + 2 * self._starved_epochs
        )

    def _check_progress(self, admitted: int) -> None:
        failover = any(s.down_epochs or s.backlog for s in self.shards)
        if (
            admitted == 0
            and self._unfinished()
            and not failover
            and not self._epoch_starved
        ):
            raise ReproError(
                "serve made no progress in an epoch; "
                "queue_capacity/policy starve every tenant"
            )
        if self.epochs > self._max_epochs():
            raise ReproError("serve exceeded its epoch budget without draining")

    def run_serial(self) -> "OramService":
        """Drain every tenant stream with the serial epoch loop."""
        started = time.perf_counter()
        while self._unfinished():
            queues = self._admit(
                [self._next_candidates(i) for i in range(len(self._tenants))]
            )
            executed = [shard.execute(queue) for shard, queue in zip(self.shards, queues)]
            self._account(executed)
            self.epochs += 1
            self._check_progress(sum(len(q) for q in queues))
        self._wall_elapsed += time.perf_counter() - started
        return self

    async def _run_async(self) -> None:
        admission: asyncio.Queue = asyncio.Queue()
        completions: asyncio.Queue = asyncio.Queue()
        tenant_cmds = [asyncio.Queue() for _ in self._tenants]
        shard_inboxes = [asyncio.Queue() for _ in self.shards]

        async def tenant_client(index: int) -> None:
            # A closed-loop simulated client: each epoch it offers its
            # next burst to the admission queue and waits for the next
            # epoch signal. The offer is a pure peek — admission itself
            # stays serialized in the coordinator.
            while await tenant_cmds[index].get() is not None:
                await admission.put((index, self._next_candidates(index)))

        async def shard_worker(index: int) -> None:
            shard = self.shards[index]
            while True:
                queue = await shard_inboxes[index].get()
                if queue is None:
                    return
                await completions.put((index, await shard.execute_async(queue)))

        tasks = [
            asyncio.ensure_future(tenant_client(i))
            for i in range(len(self._tenants))
        ] + [
            asyncio.ensure_future(shard_worker(j)) for j in range(len(self.shards))
        ]
        try:
            while self._unfinished():
                for cmds in tenant_cmds:
                    cmds.put_nowait("epoch")
                offers: Dict[int, List[Request]] = {}
                for _ in self._tenants:
                    index, candidates = await admission.get()
                    offers[index] = candidates
                # Offers arrive in event-loop order; admission re-imposes
                # tenant order, so the simulated outcome is identical to
                # the serial driver's.
                queues = self._admit(
                    [offers[i] for i in range(len(self._tenants))]
                )
                busy = [j for j, queue in enumerate(queues) if queue]
                for j in busy:
                    shard_inboxes[j].put_nowait(queues[j])
                executed: List[Optional[List[Tuple[_Admitted, float]]]] = [
                    None
                ] * len(self.shards)
                for _ in busy:  # epoch barrier
                    j, done = await completions.get()
                    executed[j] = done
                self._account(executed)
                self.epochs += 1
                self._check_progress(sum(len(q) for q in queues))
        finally:
            for cmds in tenant_cmds:
                cmds.put_nowait(None)
            for inbox in shard_inboxes:
                inbox.put_nowait(None)
            await asyncio.gather(*tasks)

    def run_async(self) -> "OramService":
        """Drain every tenant stream with the asyncio front door."""
        started = time.perf_counter()
        asyncio.run(self._run_async())
        self._wall_elapsed += time.perf_counter() - started
        return self

    def run(self, mode: str = "serial") -> "OramService":
        if mode == "serial":
            return self.run_serial()
        if mode == "async":
            return self.run_async()
        raise ConfigurationError(
            f"unknown serve mode {mode!r}; choose from ('serial', 'async')"
        )

    # -- reporting -------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """JSON-safe image of the whole run (the ``serve`` CLI artifact).

        The ``resilience`` block mirrors the sweep report's: a summary
        of every overload/recovery mechanism that fired. Like the sweep
        layer's, it is observability — comparisons between a chaos run
        and its golden strip it (and the deadline bookkeeping it
        summarizes) before asserting bit-identity of simulated numbers.
        """
        total_cycles = 0.0
        for shard in self.shards:
            total_cycles += shard.stats.busy_cycles
        return {
            "kind": "serve",
            "scheme": self.scheme_label,
            "seed": self.runner.seed,
            "config": self.config.to_dict(),
            "epochs": self.epochs,
            "wall_seconds": self._wall_elapsed,
            "tenants": [t.stats.to_dict() for t in self._tenants],
            "shards": [s.stats.to_dict() for s in self.shards],
            "totals": {
                "requests": sum(t.stats.completed for t in self._tenants),
                "issued": sum(t.stats.issued for t in self._tenants),
                "shed": sum(t.stats.shed for t in self._tenants),
                "deferred": sum(t.stats.deferred for t in self._tenants),
                "throttled": sum(t.stats.throttled for t in self._tenants),
                "cycles": total_cycles,
            },
            "resilience": {
                "deadline_missed": sum(t.stats.missed for t in self._tenants),
                "throttled": sum(t.stats.throttled for t in self._tenants),
                "shed": sum(t.stats.shed for t in self._tenants),
                "deferred": sum(t.stats.deferred for t in self._tenants),
                "breaker_trips": sum(s.stats.breaker_trips for s in self.shards),
                "parked": sum(s.stats.parked for s in self.shards),
                "stall_epochs": sum(s.stats.stall_epochs for s in self.shards),
                "degradation": {
                    "level": self.degradation.level_name,
                    "transitions": list(self.degradation.transitions),
                },
            },
        }

    @property
    def tenant_stats(self) -> List[TenantStats]:
        return [t.stats for t in self._tenants]

    @property
    def shard_stats(self) -> List[ShardStats]:
        return [s.stats for s in self.shards]


def serve_replay_equivalent(
    trace: MissTrace,
    scheme: str,
    runner: SimulationRunner,
    *,
    mode: str = "serial",
    burst: int = 8,
    max_batch: int = 32,
    queue_capacity: int = 64,
) -> SimResult:
    """Serve one benchmark trace 1-tenant/1-shard and return its SimResult.

    The shard's engine is seeded with ``base_cycles`` *before* serving —
    the same fold order as :func:`~repro.sim.system.replay_trace` — and
    the service address space maps identically onto the single shard, so
    the returned result is bit-identical to offline replay of the same
    trace (cycles, counters, and the post-run tree digest). Backpressure
    is fixed to ``defer`` because shedding would drop requests.
    """
    config = ServeConfig(
        scheme=scheme,
        shards=1,
        burst=burst,
        max_batch=max_batch,
        queue_capacity=queue_capacity,
        policy="defer",
    )
    service = OramService(
        [TenantSpec(name=trace.name, benchmark=trace.name)],
        runner=runner,
        config=config,
    )
    shard = service.shards[0]
    shard.engine.cycles = base_cycles(trace, runner.proc)
    service.run(mode=mode)
    return shard.engine.result(trace, scheme=service.scheme_label)
