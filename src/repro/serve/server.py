"""ORAM-as-a-service: N simulated tenants over M sharded ORAM instances.

The service multiplexes tenant request streams over a pool of
independently-built ORAM shards, each driven by the *same*
:class:`~repro.sim.engine.ReplayEngine` core the offline replay kernel
uses — serving is not a fork of replay, it is replay fed by an admission
queue. That shared core is what makes the headline property possible:
a single-tenant, single-shard serve of a benchmark trace is
**bit-identical** to :func:`~repro.sim.system.replay_trace` on the same
trace (see :func:`serve_replay_equivalent` and
``tests/test_serve_lockstep.py``).

Scheduling is epoch-based, and every simulated outcome is decided by
three shared, deterministic steps:

1. **Admission** (:meth:`OramService._admit`) — tenants are considered
   in fixed index order; each offers up to ``burst`` requests, routed to
   shards by an address hash. Per-shard epoch queues are bounded by
   ``queue_capacity``; an arrival at a full queue is either **shed**
   (dropped permanently, counted, cursor advances) or **deferred** (the
   tenant stops issuing for this epoch and retries the same request
   next epoch) per the configured backpressure policy.
2. **Execution** (:meth:`OramShard.execute`) — each shard drains its
   epoch queue in admission (ticket) order, coalesced into
   ``max_batch``-sized runs through ``ReplayEngine.run_batch`` — which
   is where concurrent misses meet ``plan_batch``/``leaf_for_many``.
   Shards are mutually independent, so they may run in any interleaving.
3. **Accounting** (:meth:`OramService._account`) — after the epoch
   barrier, per-tenant counters/histograms are updated in (shard index,
   queue position) order. Simulated queue wait is the prefix sum of
   service latencies ahead of a request in its shard's epoch queue.

The serial driver (:meth:`OramService.run_serial`) and the asyncio
driver (:meth:`OramService.run_async` — real tenant client tasks, an
admission queue, shard worker tasks yielding between batches, an
epoch-end barrier) call exactly these three steps, so both produce
identical simulated results; only wall-clock observations differ.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.faults import active as faults_active
from repro.proc.hierarchy import MissTrace
from repro.sim.engine import ReplayEngine
from repro.sim.metrics import SimResult
from repro.sim.runner import SimulationRunner
from repro.sim.system import base_cycles
from repro.serve.stats import ShardStats, TenantStats
from repro.serve.workload import (
    Request,
    TenantSpec,
    tenant_region_blocks,
    tenant_requests,
)
from repro.utils.rng import DeterministicRng

#: Backpressure policies for a full shard queue.
POLICIES = ("defer", "shed")

#: Fallback sizing benchmark when every tenant uses an explicit event
#: stream (only ``block_bytes``/``onchip``/``plb`` sizing is taken from
#: it; ``num_blocks`` is always overridden with the pool capacity).
_SIZING_FALLBACK = "mcf"


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving scenario (the seed lives on the runner)."""

    scheme: str = "PC_X32"
    shards: int = 1
    burst: int = 4
    max_batch: int = 32
    queue_capacity: int = 64
    policy: str = "defer"
    shard_blocks: Optional[int] = None
    record_accesses: bool = False

    def __post_init__(self):
        for field in ("shards", "burst", "max_batch", "queue_capacity"):
            if getattr(self, field) < 1:
                raise ConfigurationError(f"serve config: {field} must be >= 1")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"serve config: unknown policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )
        if self.shard_blocks is not None and self.shard_blocks < 2:
            raise ConfigurationError("serve config: shard_blocks must be >= 2")

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "shards": self.shards,
            "burst": self.burst,
            "max_batch": self.max_batch,
            "queue_capacity": self.queue_capacity,
            "policy": self.policy,
            "shard_blocks": self.shard_blocks,
        }


class _Admitted:
    """One admitted request in a shard's epoch queue."""

    __slots__ = ("tenant", "local_addr", "is_write", "wall_start", "wall_end")

    def __init__(self, tenant: int, local_addr: int, is_write: bool):
        self.tenant = tenant
        self.local_addr = local_addr
        self.is_write = is_write
        self.wall_start = time.perf_counter()
        self.wall_end = self.wall_start


class OramShard:
    """One ORAM instance in the pool: frontend + engine + address directory.

    With a single shard the service address space maps onto the ORAM
    identically (no renumbering — the lockstep guarantee depends on it).
    With multiple shards, each shard assigns dense local addresses to
    the global addresses hashed onto it in first-touch order, which is
    deterministic because admission is.
    """

    def __init__(
        self,
        index: int,
        frontend,
        engine: ReplayEngine,
        capacity: int,
        identity: bool,
        max_batch: int,
        record_accesses: bool = False,
    ):
        self.index = index
        self.frontend = frontend
        self.engine = engine
        self.capacity = capacity
        self.identity = identity
        self.max_batch = max_batch
        self.stats = ShardStats(index)
        self.stats.record_accesses = record_accesses
        self._directory: Dict[int, int] = {}
        # Circuit breaker: while ``down_epochs > 0`` the shard executes
        # nothing; admitted requests park in ``backlog`` (in admission
        # order) and drain to the front of the first post-recovery epoch
        # queue. Both fields only change inside the shared deterministic
        # steps, so serial and asyncio drivers see identical failovers.
        self.down_epochs = 0
        self.backlog: List[_Admitted] = []

    @property
    def available(self) -> bool:
        return self.down_epochs == 0

    def trip(self, epochs: int) -> None:
        """Open the circuit breaker for ``epochs`` epochs (this one included)."""
        self.down_epochs = max(self.down_epochs, max(int(epochs), 1))
        self.stats.breaker_trips += 1

    def map_addr(self, global_addr: int) -> int:
        """Global service address -> this shard's local block address."""
        if self.identity:
            return global_addr
        local = self._directory.get(global_addr)
        if local is None:
            local = len(self._directory)
            if local >= self.capacity:
                raise ReproError(
                    f"shard {self.index} directory overflow: "
                    f"{self.capacity} blocks mapped; raise shard_blocks"
                )
            self._directory[global_addr] = local
        return local

    def _run_chunk(
        self, chunk: Sequence[_Admitted]
    ) -> List[Tuple[_Admitted, float]]:
        """One coalesced ``run_batch`` over a slice of the epoch queue."""
        latencies = self.engine.run_batch(
            [r.local_addr for r in chunk], [r.is_write for r in chunk]
        )
        end = time.perf_counter()
        out = []
        for request, latency in zip(chunk, latencies):
            self.stats.record_access(
                request.tenant, request.local_addr, request.is_write
            )
            self.stats.busy_cycles += latency
            request.wall_end = end
            out.append((request, latency))
        self.stats.batches += 1
        return out

    def execute(
        self, requests: Sequence[_Admitted]
    ) -> List[Tuple[_Admitted, float]]:
        """Drain one epoch queue in ticket order (serial driver)."""
        executed: List[Tuple[_Admitted, float]] = []
        for start in range(0, len(requests), self.max_batch):
            executed.extend(self._run_chunk(requests[start : start + self.max_batch]))
        if requests:
            self.stats.epochs_busy += 1
        return executed

    async def execute_async(
        self, requests: Sequence[_Admitted]
    ) -> List[Tuple[_Admitted, float]]:
        """Same drain, yielding to the event loop between batches."""
        executed: List[Tuple[_Admitted, float]] = []
        for start in range(0, len(requests), self.max_batch):
            executed.extend(self._run_chunk(requests[start : start + self.max_batch]))
            await asyncio.sleep(0)
        if requests:
            self.stats.epochs_busy += 1
        return executed


class _TenantState:
    """Mutable serving state of one tenant: stream, cursor, stats, region."""

    __slots__ = ("spec", "stream", "cursor", "offset", "region_blocks", "stats")

    def __init__(
        self,
        spec: TenantSpec,
        stream: List[Request],
        offset: int,
        region_blocks: int,
    ):
        self.spec = spec
        self.stream = stream
        self.cursor = 0
        self.offset = offset
        self.region_blocks = region_blocks
        self.stats = TenantStats(spec.name, spec.workload_label)

    @property
    def remaining(self) -> int:
        return len(self.stream) - self.cursor


class OramService:
    """The multi-tenant serving layer over a pool of ORAM shards."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        runner: Optional[SimulationRunner] = None,
        config: ServeConfig = ServeConfig(),
        observer=None,
    ):
        if not tenants:
            raise ConfigurationError("a serve scenario needs at least one tenant")
        self.runner = runner if runner is not None else SimulationRunner()
        self.config = config
        sizing_bench = next(
            (t.benchmark for t in tenants if t.benchmark is not None),
            _SIZING_FALLBACK,
        )
        probe_spec, self.scheme_label = self.runner.sized_spec(
            config.scheme, sizing_bench
        )
        self.block_bytes = probe_spec.block_bytes
        lines_per_block = max(self.block_bytes // self.runner.proc.line_bytes, 1)
        # Materialise every tenant stream up front (trace-cache backed),
        # laying tenant regions back to back in the service address space.
        self._tenants: List[_TenantState] = []
        offset = 0
        for spec in tenants:
            stream = tenant_requests(spec, self.runner, lines_per_block)
            region = tenant_region_blocks(spec, self.block_bytes, stream)
            self._tenants.append(_TenantState(spec, stream, offset, region))
            offset += region
        total_blocks = _next_pow2(max(offset, 2))
        if config.shard_blocks is not None:
            capacity = _next_pow2(config.shard_blocks)
        elif config.shards == 1:
            capacity = total_blocks
        else:
            capacity = _next_pow2(max(2 * total_blocks // config.shards, 64))
        self.shards: List[OramShard] = []
        for index in range(config.shards):
            spec, _label = self.runner.sized_spec(
                config.scheme, sizing_bench, num_blocks=capacity
            )
            frontend = spec.build(
                rng=DeterministicRng((self.runner.seed + index) ^ 0xA5A5),
                observer=observer,
            )
            engine = ReplayEngine(
                frontend, self.runner.timing_for(frontend), proc=self.runner.proc
            )
            self.shards.append(
                OramShard(
                    index,
                    frontend,
                    engine,
                    capacity=capacity,
                    identity=(config.shards == 1),
                    max_batch=config.max_batch,
                    record_accesses=config.record_accesses,
                )
            )
        self.epochs = 0
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0

    # -- setup helpers ---------------------------------------------------------

    def preload(self, tenant_index: int, addr: int, data: bytes) -> None:
        """Write a block before serving starts, outside all accounting.

        The touched shard's engine is re-created afterwards so its
        baseline counters (and cycle fold) exclude the preload traffic.
        """
        if self.epochs or any(t.cursor for t in self._tenants):
            raise ReproError("preload must happen before serving starts")
        shard = self._route(self._tenants[tenant_index].offset + addr)
        from repro.backend.ops import Op

        payload = bytes(data).ljust(self.block_bytes, b"\0")[: self.block_bytes]
        shard.frontend.access(
            shard.map_addr(self._tenants[tenant_index].offset + addr),
            Op.WRITE,
            payload,
        )
        shard.engine = ReplayEngine(
            shard.frontend, shard.engine.timing, proc=self.runner.proc
        )

    def _shard_index(self, global_addr: int) -> int:
        if self.config.shards == 1:
            return 0
        key = global_addr.to_bytes(8, "little", signed=True)
        return zlib.crc32(key) % self.config.shards

    def _route(self, global_addr: int) -> OramShard:
        return self.shards[self._shard_index(global_addr)]

    # -- the three deterministic steps -----------------------------------------

    def _next_candidates(self, tenant_index: int) -> List[Request]:
        """Pure peek: the next ``burst`` requests of one tenant's stream."""
        state = self._tenants[tenant_index]
        return state.stream[state.cursor : state.cursor + self.config.burst]

    def _update_breakers(self) -> None:
        """Consult the fault plan once per shard, in index order.

        This runs at the top of admission — a shared deterministic step —
        so ``serve.shard`` injectors observe exactly one match per shard
        per epoch regardless of driver (``#2`` means "epoch 2"). A
        ``stall`` match trips the shard's breaker for ``epochs=N`` epochs;
        any other action gets the standard fault behaviour.
        """
        plan = faults_active()
        if plan is None:
            return
        for shard in self.shards:
            key = str(shard.index)
            spec = plan.match("serve.shard", key)
            if spec is None:
                continue
            if spec.action == "stall":
                shard.trip(int(spec.params.get("epochs", "1")))
            else:
                plan.perform(spec, "serve.shard", key)

    def _admit(
        self, candidate_lists: Sequence[Sequence[Request]]
    ) -> List[List[_Admitted]]:
        """Bounded admission in fixed tenant order — the single mutation
        site for cursors, shed/defer counters, and breaker state.

        A shard with an open breaker executes nothing this epoch: its
        arrivals *park* in the shard backlog (cursor advances, the local
        address is assigned in admission order, so the directory — and
        therefore the access digest — is unchanged by the failover).
        Parked requests occupy queue capacity, so a long stall applies
        ordinary backpressure. The epoch the breaker closes, the backlog
        drains to the front of the epoch queue — execution order is
        exactly admission order, merely delayed.
        """
        self._update_breakers()
        queues: List[List[_Admitted]] = [[] for _ in self.shards]
        for shard, queue in zip(self.shards, queues):
            if shard.available and shard.backlog:
                queue.extend(shard.backlog)
                shard.backlog.clear()
        capacity = self.config.queue_capacity
        shed = self.config.policy == "shed"
        for tenant_index, candidates in enumerate(candidate_lists):
            state = self._tenants[tenant_index]
            for local_addr, is_write in candidates:
                global_addr = state.offset + local_addr
                shard_index = self._shard_index(global_addr)
                shard = self.shards[shard_index]
                if len(queues[shard_index]) + len(shard.backlog) >= capacity:
                    if shed:
                        state.cursor += 1
                        state.stats.issued += 1
                        state.stats.shed += 1
                        shard.stats.shed += 1
                        continue
                    state.stats.deferred += 1
                    shard.stats.deferred += 1
                    break  # defer: stop issuing this epoch, retry next
                state.cursor += 1
                state.stats.issued += 1
                admitted = _Admitted(
                    tenant_index,
                    shard.map_addr(global_addr),
                    bool(is_write),
                )
                if shard.available:
                    queues[shard_index].append(admitted)
                else:
                    shard.backlog.append(admitted)
                    shard.stats.parked += 1
        for shard, queue in zip(self.shards, queues):
            shard.stats.record_depth(len(queue))
            if not shard.available:
                shard.down_epochs -= 1
                shard.stats.stall_epochs += 1
        return queues

    def _account(
        self,
        executed_by_shard: Sequence[Optional[List[Tuple[_Admitted, float]]]],
    ) -> None:
        """Post-barrier accounting in (shard index, queue position) order."""
        for executed in executed_by_shard:
            if not executed:
                continue
            wait = 0.0
            for request, latency in executed:
                stats = self._tenants[request.tenant].stats
                stats.completed += 1
                stats.cycles += latency
                stats.service_cycles.record(latency)
                stats.latency_cycles.record(wait + latency)
                stats.wall_us.record(
                    (request.wall_end - request.wall_start) * 1e6
                )
                wait += latency

    # -- drivers ---------------------------------------------------------------

    def _unfinished(self) -> bool:
        return any(t.remaining for t in self._tenants)

    def _max_epochs(self) -> int:
        # Breaker-open epochs legitimately make no execution progress, so
        # the budget grows with every stall the fault plan injects.
        stalls = sum(s.stats.stall_epochs for s in self.shards)
        return 2 * sum(len(t.stream) for t in self._tenants) + 16 + 2 * stalls

    def _check_progress(self, admitted: int) -> None:
        failover = any(s.down_epochs or s.backlog for s in self.shards)
        if admitted == 0 and self._unfinished() and not failover:
            raise ReproError(
                "serve made no progress in an epoch; "
                "queue_capacity/policy starve every tenant"
            )
        if self.epochs > self._max_epochs():
            raise ReproError("serve exceeded its epoch budget without draining")

    def run_serial(self) -> "OramService":
        """Drain every tenant stream with the serial epoch loop."""
        started = time.perf_counter()
        while self._unfinished():
            queues = self._admit(
                [self._next_candidates(i) for i in range(len(self._tenants))]
            )
            executed = [shard.execute(queue) for shard, queue in zip(self.shards, queues)]
            self._account(executed)
            self.epochs += 1
            self._check_progress(sum(len(q) for q in queues))
        self._wall_elapsed += time.perf_counter() - started
        return self

    async def _run_async(self) -> None:
        admission: asyncio.Queue = asyncio.Queue()
        completions: asyncio.Queue = asyncio.Queue()
        tenant_cmds = [asyncio.Queue() for _ in self._tenants]
        shard_inboxes = [asyncio.Queue() for _ in self.shards]

        async def tenant_client(index: int) -> None:
            # A closed-loop simulated client: each epoch it offers its
            # next burst to the admission queue and waits for the next
            # epoch signal. The offer is a pure peek — admission itself
            # stays serialized in the coordinator.
            while await tenant_cmds[index].get() is not None:
                await admission.put((index, self._next_candidates(index)))

        async def shard_worker(index: int) -> None:
            shard = self.shards[index]
            while True:
                queue = await shard_inboxes[index].get()
                if queue is None:
                    return
                await completions.put((index, await shard.execute_async(queue)))

        tasks = [
            asyncio.ensure_future(tenant_client(i))
            for i in range(len(self._tenants))
        ] + [
            asyncio.ensure_future(shard_worker(j)) for j in range(len(self.shards))
        ]
        try:
            while self._unfinished():
                for cmds in tenant_cmds:
                    cmds.put_nowait("epoch")
                offers: Dict[int, List[Request]] = {}
                for _ in self._tenants:
                    index, candidates = await admission.get()
                    offers[index] = candidates
                # Offers arrive in event-loop order; admission re-imposes
                # tenant order, so the simulated outcome is identical to
                # the serial driver's.
                queues = self._admit(
                    [offers[i] for i in range(len(self._tenants))]
                )
                busy = [j for j, queue in enumerate(queues) if queue]
                for j in busy:
                    shard_inboxes[j].put_nowait(queues[j])
                executed: List[Optional[List[Tuple[_Admitted, float]]]] = [
                    None
                ] * len(self.shards)
                for _ in busy:  # epoch barrier
                    j, done = await completions.get()
                    executed[j] = done
                self._account(executed)
                self.epochs += 1
                self._check_progress(sum(len(q) for q in queues))
        finally:
            for cmds in tenant_cmds:
                cmds.put_nowait(None)
            for inbox in shard_inboxes:
                inbox.put_nowait(None)
            await asyncio.gather(*tasks)

    def run_async(self) -> "OramService":
        """Drain every tenant stream with the asyncio front door."""
        started = time.perf_counter()
        asyncio.run(self._run_async())
        self._wall_elapsed += time.perf_counter() - started
        return self

    def run(self, mode: str = "serial") -> "OramService":
        if mode == "serial":
            return self.run_serial()
        if mode == "async":
            return self.run_async()
        raise ConfigurationError(
            f"unknown serve mode {mode!r}; choose from ('serial', 'async')"
        )

    # -- reporting -------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """JSON-safe image of the whole run (the ``serve`` CLI artifact)."""
        total_cycles = 0.0
        for shard in self.shards:
            total_cycles += shard.stats.busy_cycles
        return {
            "kind": "serve",
            "scheme": self.scheme_label,
            "seed": self.runner.seed,
            "config": self.config.to_dict(),
            "epochs": self.epochs,
            "wall_seconds": self._wall_elapsed,
            "tenants": [t.stats.to_dict() for t in self._tenants],
            "shards": [s.stats.to_dict() for s in self.shards],
            "totals": {
                "requests": sum(t.stats.completed for t in self._tenants),
                "issued": sum(t.stats.issued for t in self._tenants),
                "shed": sum(t.stats.shed for t in self._tenants),
                "deferred": sum(t.stats.deferred for t in self._tenants),
                "cycles": total_cycles,
            },
        }

    @property
    def tenant_stats(self) -> List[TenantStats]:
        return [t.stats for t in self._tenants]

    @property
    def shard_stats(self) -> List[ShardStats]:
        return [s.stats for s in self.shards]


def serve_replay_equivalent(
    trace: MissTrace,
    scheme: str,
    runner: SimulationRunner,
    *,
    mode: str = "serial",
    burst: int = 8,
    max_batch: int = 32,
    queue_capacity: int = 64,
) -> SimResult:
    """Serve one benchmark trace 1-tenant/1-shard and return its SimResult.

    The shard's engine is seeded with ``base_cycles`` *before* serving —
    the same fold order as :func:`~repro.sim.system.replay_trace` — and
    the service address space maps identically onto the single shard, so
    the returned result is bit-identical to offline replay of the same
    trace (cycles, counters, and the post-run tree digest). Backpressure
    is fixed to ``defer`` because shedding would drop requests.
    """
    config = ServeConfig(
        scheme=scheme,
        shards=1,
        burst=burst,
        max_batch=max_batch,
        queue_capacity=queue_capacity,
        policy="defer",
    )
    service = OramService(
        [TenantSpec(name=trace.name, benchmark=trace.name)],
        runner=runner,
        config=config,
    )
    shard = service.shards[0]
    shard.engine.cycles = base_cycles(trace, runner.proc)
    service.run(mode=mode)
    return shard.engine.result(trace, scheme=service.scheme_label)
