"""Deterministic tenant workload driver for the serving layer.

A tenant is a closed-loop simulated client replaying a deterministic
request stream. Streams come from the same machinery the experiment
engine uses — :class:`~repro.sim.runner.SimulationRunner` miss traces
over :mod:`repro.workloads.spec` benchmarks (including the multi-tenant
interleaved ``"a+b"`` mixes) — so serve runs are reproducible, and the
expensive cache-hierarchy simulation behind each stream is served from
the on-disk trace cache exactly like replay experiments.

Each tenant gets a private block-address region inside the service's
shared ORAM pool (regions laid back to back, like processes in one
physical memory), so two tenants replaying the same benchmark never
alias each other's blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.proc.hierarchy import MissTrace
from repro.sim.replay import translate_block_addrs
from repro.workloads.spec import benchmark


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


#: One tenant request: (block address within the tenant's region, is_write).
Request = Tuple[int, bool]


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one simulated tenant client.

    Exactly one of ``benchmark`` (a :mod:`repro.workloads.spec` name,
    derived names and ``"a+b"`` mixes included) or ``events`` (an
    explicit ``(block_addr, is_write)`` stream — the path custom drivers
    like ``examples/secure_cloud_database.py`` use) must be given.
    ``requests`` caps the stream length; ``None`` serves the whole trace.
    ``region_blocks`` overrides the tenant's private-region capacity
    (benchmark tenants size it from the working set, event tenants from
    their highest address — too small when blocks are preloaded beyond
    the stream's reach).

    SLO knobs (all optional, all in *simulated* units so they never
    perturb bit-reproducibility): ``deadline_cycles`` is the per-request
    SLO — each request's deadline is the service's virtual clock at its
    first admission offer plus this budget, and earliest-deadline-first
    admission orders by it; ``quota`` is a token-bucket rate in requests
    per epoch (an empty bucket pauses the tenant for the epoch);
    ``priority`` ranks tenants for graceful degradation — under
    sustained overload the *lowest* priority values shed first.
    """

    name: str
    benchmark: Optional[str] = None
    requests: Optional[int] = None
    events: Optional[Tuple[Request, ...]] = None
    region_blocks: Optional[int] = None
    deadline_cycles: Optional[float] = None
    quota: Optional[float] = None
    priority: int = 0

    def __post_init__(self):
        if (self.benchmark is None) == (self.events is None):
            raise ConfigurationError(
                f"tenant {self.name!r} needs exactly one of benchmark= or events="
            )
        if self.benchmark is not None:
            benchmark(self.benchmark)  # fail fast on unknown names
        if self.requests is not None and self.requests < 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: requests must be >= 0"
            )
        if self.region_blocks is not None and self.region_blocks < 2:
            raise ConfigurationError(
                f"tenant {self.name!r}: region_blocks must be >= 2"
            )
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: deadline_cycles must be > 0"
            )
        if self.quota is not None and self.quota <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: quota must be > 0 requests/epoch"
            )

    @property
    def workload_label(self) -> str:
        """Benchmark name, or a literal marker for explicit streams."""
        return self.benchmark if self.benchmark is not None else "<events>"


def tenants_for(
    benchmarks: Sequence[str],
    count: int,
    requests: Optional[int] = None,
    *,
    deadline_cycles: Optional[float] = None,
    quota: Optional[float] = None,
    priorities: Optional[Sequence[int]] = None,
) -> List[TenantSpec]:
    """``count`` tenants assigned round-robin over ``benchmarks``.

    The canonical "N tenants on M shards" roster builder: tenant *i*
    replays ``benchmarks[i % len(benchmarks)]`` under the name
    ``"t<i>:<benchmark>"``. ``deadline_cycles``/``quota`` apply the same
    SLO to every tenant; ``priorities`` is round-robined by index like
    the benchmark roster.
    """
    if count < 1:
        raise ConfigurationError("a serve scenario needs at least one tenant")
    if not benchmarks:
        raise ConfigurationError("tenants_for needs at least one benchmark")
    return [
        TenantSpec(
            name=f"t{i}:{benchmarks[i % len(benchmarks)]}",
            benchmark=benchmarks[i % len(benchmarks)],
            requests=requests,
            deadline_cycles=deadline_cycles,
            quota=quota,
            priority=priorities[i % len(priorities)] if priorities else 0,
        )
        for i in range(count)
    ]


def tenant_requests(
    spec: TenantSpec, runner, lines_per_block: int
) -> List[Request]:
    """Materialise a tenant's request stream (region-relative addresses).

    Benchmark tenants replay the runner's miss trace for their benchmark
    (disk-cached, deterministic per the runner's seed) translated to
    block addresses with the serving scheme's geometry — the identical
    translation :func:`~repro.sim.system.replay_trace` performs, which
    is what makes single-tenant serving lockstep-comparable to replay.
    """
    if spec.events is not None:
        events = list(spec.events)
        return events[: spec.requests] if spec.requests is not None else events
    trace: MissTrace = runner.trace(spec.benchmark)
    line_addrs, is_write = trace.columns()
    addrs = translate_block_addrs(line_addrs, lines_per_block)
    writes = is_write.tolist() if hasattr(is_write, "tolist") else list(is_write)
    events = list(zip(addrs, map(bool, writes)))
    return events[: spec.requests] if spec.requests is not None else events


def tenant_region_blocks(
    spec: TenantSpec, block_bytes: int, requests: List[Request]
) -> int:
    """Power-of-two block capacity of one tenant's private region."""
    if spec.region_blocks is not None:
        return _next_pow2(spec.region_blocks)
    if spec.benchmark is not None:
        wss = benchmark(spec.benchmark).wss_bytes
        return _next_pow2(max(wss // block_bytes, 2))
    top = max((addr for addr, _w in requests), default=1)
    return _next_pow2(max(top + 1, 2))
