"""Per-tenant and per-shard accounting for the serving layer.

Everything here is observational: recording a latency or a queue depth
never feeds back into scheduling or simulated state, so wall-clock
histograms can coexist with bit-reproducible simulated outcomes. All
``to_dict`` images are JSON-safe.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional


class LatencyHistogram:
    """Power-of-two-bucketed latency histogram with exact moments.

    Buckets are ``[2^(k-1), 2^k)`` by integer magnitude (bucket 0 holds
    values < 1), which spans simulated-cycle and wall-microsecond scales
    without configuration. ``quantile_bound(q)`` reports the upper edge
    of the bucket containing the q-quantile — a guaranteed upper bound,
    which is the useful direction for SLO reporting.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile_bound(self, q: float) -> float:
        """Upper edge of the bucket holding the q-quantile (0 when empty)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                return float(1 << bucket)
        return float(1 << max(self._buckets))

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50_bound": self.quantile_bound(0.50),
            "p95_bound": self.quantile_bound(0.95),
            "p99_bound": self.quantile_bound(0.99),
            # Keyed by bucket upper edge so the JSON artifact is
            # self-describing without knowing the bucketing rule.
            "buckets": {
                str(1 << bucket): self._buckets[bucket]
                for bucket in sorted(self._buckets)
            },
        }


class TenantStats:
    """One tenant's serving record.

    ``cycles`` is the left-fold sum of the tenant's own service
    latencies in stream order — the quantity the determinism tests pin
    serial-vs-concurrent. ``service_cycles`` histograms the pure engine
    service time; ``latency_cycles`` adds the simulated queue wait ahead
    of the request in its shard's epoch queue; ``wall_us`` is the
    observational wall-clock time from admission to completion.

    SLO accounting (all in simulated cycles, all deterministic):
    ``throttled`` counts epochs the tenant was paused by quota or the
    ``throttle`` policy; ``missed`` counts completed requests that
    finished past their deadline; ``slack_cycles`` histograms remaining
    deadline budget at completion, floored at zero (so a miss records a
    zero-slack sample — the miss *count* carries the violation).
    """

    def __init__(self, name: str, benchmark: str) -> None:
        self.name = name
        self.benchmark = benchmark
        self.issued = 0
        self.completed = 0
        self.shed = 0
        self.deferred = 0
        self.throttled = 0
        self.missed = 0
        self.cycles = 0.0
        self.service_cycles = LatencyHistogram()
        self.latency_cycles = LatencyHistogram()
        self.slack_cycles = LatencyHistogram()
        self.wall_us = LatencyHistogram()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "benchmark": self.benchmark,
            "issued": self.issued,
            "completed": self.completed,
            "shed": self.shed,
            "deferred": self.deferred,
            "throttled": self.throttled,
            "deadline_missed": self.missed,
            "cycles": self.cycles,
            "service_cycles": self.service_cycles.to_dict(),
            "latency_cycles": self.latency_cycles.to_dict(),
            "slack_cycles": self.slack_cycles.to_dict(),
            "wall_us": self.wall_us.to_dict(),
        }


class ShardStats:
    """One shard's serving record, including the access-sequence digest.

    The digest is a running SHA-256 over ``(tenant index, local address,
    is_write)`` triples in execution order — a compact witness of the
    shard's exact access sequence, which the determinism suite compares
    across serial and concurrent runs (and which a full recorded
    sequence would reproduce).
    """

    _PACK = struct.Struct("<qqB")

    def __init__(self, index: int) -> None:
        self.index = index
        self.requests = 0
        self.batches = 0
        self.epochs_busy = 0
        self.shed = 0
        self.deferred = 0
        self.throttled = 0
        self.parked = 0
        self.breaker_trips = 0
        self.stall_epochs = 0
        self.busy_cycles = 0.0
        self.depth_samples = 0
        self.depth_total = 0
        self.depth_max = 0
        self._digest = hashlib.sha256()
        self.accesses: List[tuple] = []
        self.record_accesses = False

    def record_depth(self, depth: int) -> None:
        self.depth_samples += 1
        self.depth_total += depth
        if depth > self.depth_max:
            self.depth_max = depth

    def record_access(self, tenant_index: int, local_addr: int, is_write: bool) -> None:
        self.requests += 1
        self._digest.update(
            self._PACK.pack(tenant_index, local_addr, 1 if is_write else 0)
        )
        if self.record_accesses:
            self.accesses.append((tenant_index, local_addr, is_write))

    @property
    def access_digest(self) -> str:
        return self._digest.hexdigest()

    @property
    def mean_depth(self) -> float:
        return self.depth_total / self.depth_samples if self.depth_samples else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "requests": self.requests,
            "batches": self.batches,
            "epochs_busy": self.epochs_busy,
            "shed": self.shed,
            "deferred": self.deferred,
            "throttled": self.throttled,
            "parked": self.parked,
            "breaker_trips": self.breaker_trips,
            "stall_epochs": self.stall_epochs,
            "busy_cycles": self.busy_cycles,
            "queue_depth": {
                "samples": self.depth_samples,
                "mean": self.mean_depth,
                "max": self.depth_max,
            },
            "access_digest": self.access_digest,
        }
