"""ORAM-as-a-service: the concurrent multi-tenant serving layer.

Builds on the same :class:`~repro.sim.engine.ReplayEngine` core as the
offline replay kernels, so served traffic is bit-identical to replayed
traffic (the property ``tests/test_serve_lockstep.py`` pins). See
:mod:`repro.serve.server` for the scheduling model.
"""

from repro.serve.server import (
    ADMISSION_ORDERS,
    POLICIES,
    OramService,
    OramShard,
    ServeConfig,
    serve_replay_equivalent,
)
from repro.serve.stats import LatencyHistogram, ShardStats, TenantStats
from repro.serve.workload import (
    TenantSpec,
    tenant_region_blocks,
    tenant_requests,
    tenants_for,
)

__all__ = [
    "ADMISSION_ORDERS",
    "POLICIES",
    "OramService",
    "OramShard",
    "ServeConfig",
    "serve_replay_equivalent",
    "LatencyHistogram",
    "ShardStats",
    "TenantStats",
    "TenantSpec",
    "tenant_region_blocks",
    "tenant_requests",
    "tenants_for",
]
