"""Retry/backoff policies for sweep cells and fabric RPC edges.

Backoff delays are deterministic: cell retry uses a fixed geometric
series, RPC retry adds *seeded* jitter (a CRC32 hash of ``seed|attempt``
mapped into ``[-jitter, +jitter]``) so concurrent workers de-synchronise
their reconnect storms without a single nondeterministic draw. Delays
only pace re-dispatch — they never influence simulated results.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a failed sweep cell is re-dispatched before being quarantined."""

    #: Total attempts per cell (first try included). 1 = no retry.
    attempts: int = 3
    #: Delay before the second attempt, in seconds.
    backoff: float = 0.05
    #: Multiplier applied per further attempt.
    factor: float = 2.0
    #: Ceiling on any single delay.
    max_backoff: float = 2.0
    #: Hard per-cell wall-clock timeout in seconds (pool mode only; the
    #: serial driver cannot preempt a running cell). None = no timeout.
    timeout: Optional[float] = None

    def delay(self, attempt: int) -> float:
        """Pause before dispatching ``attempt`` (2-based; attempt 1 is free)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff * self.factor ** (attempt - 2), self.max_backoff)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from REPRO_RETRIES / REPRO_RETRY_BASE / REPRO_CELL_TIMEOUT."""
        attempts = int(os.environ.get("REPRO_RETRIES", "3") or "3")
        backoff = float(os.environ.get("REPRO_RETRY_BASE", "0.05") or "0.05")
        timeout_text = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
        timeout = float(timeout_text) if timeout_text else None
        return cls(attempts=max(1, attempts), backoff=backoff, timeout=timeout)


@dataclass(frozen=True)
class RpcPolicy:
    """Connect/RPC hardening knobs for one fabric endpoint.

    ``connect_attempts`` bounds both the dial loop and how often a
    worker re-establishes a dropped session; ``timeout`` is the per-call
    deadline applied to coordinator sends and worker sends/config waits
    (a worker idling on its lease recv is *not* timed out — waiting for
    work is the normal state, and heartbeats cover liveness).
    """

    #: Total connect attempts per dial (first try included).
    connect_attempts: int = 3
    #: Delay before the second attempt, in seconds.
    backoff: float = 0.1
    #: Multiplier applied per further attempt.
    factor: float = 2.0
    #: Ceiling on the un-jittered delay.
    max_backoff: float = 2.0
    #: Jitter fraction: each delay is scaled by ``1 ± jitter``.
    jitter: float = 0.5
    #: Per-RPC-call deadline in seconds. None = block forever.
    timeout: Optional[float] = 30.0
    #: Seed for the deterministic jitter hash.
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """Seeded-jitter pause before dial ``attempt`` (attempt 1 is free)."""
        if attempt <= 1:
            return 0.0
        base = min(self.backoff * self.factor ** (attempt - 2), self.max_backoff)
        frac = zlib.crc32(f"{self.seed}|{attempt}".encode("utf-8")) / 0xFFFFFFFF
        return base * (1.0 + self.jitter * (2.0 * frac - 1.0))

    @classmethod
    def from_env(cls, seed: int = 0) -> "RpcPolicy":
        """Build a policy from REPRO_CONNECT_RETRIES / REPRO_RPC_TIMEOUT.

        ``REPRO_RPC_TIMEOUT=0`` (or negative) disables per-call deadlines.
        """
        attempts = int(os.environ.get("REPRO_CONNECT_RETRIES", "3") or "3")
        timeout_text = os.environ.get("REPRO_RPC_TIMEOUT", "").strip()
        timeout: Optional[float] = float(timeout_text) if timeout_text else 30.0
        if timeout is not None and timeout <= 0:
            timeout = None
        return cls(connect_attempts=max(1, attempts), timeout=timeout, seed=seed)
