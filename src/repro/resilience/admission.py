"""Admission-control primitives for the serving layer.

Both classes are driven exclusively from inside the serve epoch's shared
deterministic steps (one :class:`TokenBucket` refill per tenant per
epoch, one :class:`DegradationController` observation per epoch), so the
serial and asyncio drivers see identical quota and degradation
decisions. Neither touches wall-clock time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError

#: Degradation levels, mildest first. ``shed-low`` turns full-queue
#: events of the lowest-priority tenants into sheds regardless of the
#: configured policy; ``best-effort`` does so for every tenant.
DEGRADATION_LEVELS = ("normal", "shed-low", "best-effort")


class TokenBucket:
    """Per-epoch token bucket: ``rate`` tokens refilled per epoch.

    ``burst`` caps accumulation (default: one epoch's worth, at least
    one token). A tenant with an empty bucket simply stops issuing for
    the epoch — a deterministic pause, not a drop.
    """

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be > 0")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(self.rate, 1.0)
        if self.capacity < 1.0:
            raise ConfigurationError("token bucket burst must be >= 1")
        self.tokens = self.capacity

    def refill(self) -> None:
        self.tokens = min(self.capacity, self.tokens + self.rate)

    @property
    def ready(self) -> bool:
        return self.tokens >= 1.0

    def take(self) -> None:
        self.tokens -= 1.0


class DegradationController:
    """Graceful-degradation ladder driven by per-epoch overload signals.

    Disabled unless ``degrade_after`` is set (the default — existing
    scenarios are bit-unaffected). When enabled, ``degrade_after``
    consecutive overloaded epochs escalate one level (``normal`` →
    ``shed-low`` → ``best-effort``); ``recover_after`` consecutive clean
    epochs de-escalate one level. Every transition is recorded as a
    JSON-safe ``{"epoch", "from", "to"}`` event, and streaks reset at
    each transition so a further shift needs a fresh run of evidence.
    """

    LEVELS = DEGRADATION_LEVELS

    def __init__(
        self,
        degrade_after: Optional[int] = None,
        recover_after: Optional[int] = None,
    ):
        if degrade_after is not None and degrade_after < 1:
            raise ConfigurationError("degrade_after must be >= 1")
        if recover_after is not None and recover_after < 1:
            raise ConfigurationError("recover_after must be >= 1")
        self.degrade_after = degrade_after
        self.recover_after = (
            recover_after if recover_after is not None else (degrade_after or 1)
        )
        self.level = 0
        self.transitions: List[Dict[str, object]] = []
        self._overloaded_streak = 0
        self._clean_streak = 0

    @property
    def enabled(self) -> bool:
        return self.degrade_after is not None

    @property
    def level_name(self) -> str:
        return self.LEVELS[self.level]

    def observe(self, epoch: int, overloaded: bool) -> Optional[Dict[str, object]]:
        """Feed one epoch's overload signal; returns the transition, if any."""
        if not self.enabled:
            return None
        if overloaded:
            self._overloaded_streak += 1
            self._clean_streak = 0
            if (
                self._overloaded_streak >= self.degrade_after
                and self.level < len(self.LEVELS) - 1
            ):
                return self._shift(epoch, self.level + 1)
        else:
            self._clean_streak += 1
            self._overloaded_streak = 0
            if self._clean_streak >= self.recover_after and self.level > 0:
                return self._shift(epoch, self.level - 1)
        return None

    def _shift(self, epoch: int, to: int) -> Dict[str, object]:
        transition = {
            "epoch": epoch,
            "from": self.LEVELS[self.level],
            "to": self.LEVELS[to],
        }
        self.level = to
        self.transitions.append(transition)
        self._overloaded_streak = 0
        self._clean_streak = 0
        return transition
