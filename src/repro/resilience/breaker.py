"""A generic consecutive-failure circuit breaker.

Generalizes the PR 7 per-shard serve breaker to any identity-keyed
failure domain — the fabric coordinator keeps one per worker identity so
a flapping worker is quarantined instead of re-leased forever. The
breaker is pure scheduling state: opening or closing one never changes
report content, only who gets offered work when.

States: *closed* (normal), *open* (refusing since ``opened_at``), and —
once ``cooldown`` has elapsed — *half-open*: :meth:`allow` admits one
probe; a success closes the breaker, a further failure re-opens it and
restarts the cooldown clock.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; cool down on a clock."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self.clock = clock
        self.failures = 0
        self.trips = 0
        self.opened_at: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.opened_at is not None

    def record_failure(self) -> bool:
        """Count one failure; True exactly when this one trips the breaker."""
        self.failures += 1
        if self.opened_at is None:
            if self.failures >= self.threshold:
                self.opened_at = self.clock()
                self.trips += 1
                return True
        else:
            # A half-open probe failed: re-open and restart the cooldown.
            self.opened_at = self.clock()
        return False

    def record_success(self) -> None:
        """A healthy interaction fully closes the breaker."""
        self.failures = 0
        self.opened_at = None

    def allow(self) -> bool:
        """May the guarded party be engaged right now?

        True while closed; once open, False until ``cooldown`` seconds
        have passed, then True for a half-open probe.
        """
        if self.opened_at is None:
            return True
        return self.clock() - self.opened_at >= self.cooldown
