"""Overload control and RPC resilience policies (`repro.resilience`).

The control plane shared by the serving layer and the sweep fabric:

- :class:`RetryPolicy` — deterministic exponential backoff for failed
  sweep cells (absorbed from ``repro.faults.retry``; the old import
  path re-exports it).
- :class:`RpcPolicy` — connect/RPC retry with per-call timeouts and
  seeded, deterministic exponential backoff-with-jitter
  (``REPRO_CONNECT_RETRIES`` / ``REPRO_RPC_TIMEOUT``).
- :class:`CircuitBreaker` — consecutive-failure breaker with a
  monotonic-clock cooldown (the coordinator quarantines flapping
  workers with it; the serve layer's per-shard breaker is the
  epoch-deterministic sibling living on :class:`~repro.serve.server.OramShard`).
- :class:`TokenBucket` — per-epoch tenant quota for serve admission.
- :class:`DegradationController` — graceful-degradation levels under
  sustained overload, every transition a counted deterministic event.

Everything here is *scheduling-only* state: none of it feeds back into
simulated cycles or access sequences, which is what keeps chaos runs
bit-identical to their fault-free goldens.
"""

from repro.resilience.admission import (  # noqa: F401
    DEGRADATION_LEVELS,
    DegradationController,
    TokenBucket,
)
from repro.resilience.breaker import CircuitBreaker  # noqa: F401
from repro.resilience.retry import RetryPolicy, RpcPolicy  # noqa: F401

__all__ = [
    "DEGRADATION_LEVELS",
    "CircuitBreaker",
    "DegradationController",
    "RetryPolicy",
    "RpcPolicy",
    "TokenBucket",
]
