"""Deterministic fault-injection plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` injectors installed
process-wide (and re-installed in pool workers via ``REPRO_FAULTS``). Code
under test calls :func:`fault_hook` at named *sites*; when no plan is
installed the hook is a single ``is None`` check, so the production hot
path pays effectively nothing.

Plan grammar (``REPRO_FAULTS`` / ``--faults``)::

    entry   := site '.' action '@' keypat ['#' hits] ['|' k '=' v {',' k '=' v}]
    plan    := entry {';' entry}

``site`` names where the hook lives (``cell``, ``worker``, ``serve.shard``,
``serve.deadline``, ``cache.write``, ``cache.entry``, ``sweep``,
``fabric.worker``, ``fabric.rpc``, ``rpc.timeout``, ``rpc.flap``);
``action`` is what happens
(``crash``, ``exit``, ``stall``, ``interrupt``, ``kill``, ``corrupt``,
``truncate``); ``keypat`` is an ``fnmatch`` pattern over the site-specific
key (the *first* ``@`` splits, so keys themselves may contain ``@``, as
derived benchmark names do); ``hits`` selects which matches fire, counted
per injector (``#1`` = the first time this injector's site+key pattern
matches, ``#2,4`` = the second and fourth; omitted = every match).

Examples::

    cell.crash@PC_X32*/gob/1#1          # first attempt of that cell crashes
    worker.exit@*/1                     # every first-attempt worker cell dies
    serve.shard.stall@0#2|epochs=3      # shard 0 stalls 3 epochs at epoch 2
    cache.write.kill@result/replace#1   # die between tmp write and rename
    cache.entry.truncate@trace/*#1      # damage first trace entry read
    fabric.worker.exit@*/gob/1#1        # fabric worker dies mid-cell
    fabric.rpc.crash@worker/send/result#1  # drop connection on first result
    rpc.timeout.crash@coordinator/send/lease#1  # first lease send times out
    rpc.flap.crash@0/1#1                # worker 0's first session flaps
    serve.deadline.stall@*#1|cycles=50000  # tighten epoch-1 deadlines

Fabric sites: ``fabric.worker`` fires per executed cell
(``label/bench/attempt``) and per heartbeat (``heartbeat/index/n``);
``fabric.rpc`` fires per protocol frame (``role/send|recv/type``), where
a ``crash`` is surfaced as a dropped connection. The coordinator's
heartbeat-timeout detection, lease reclaim and respawn turn all of these
into one charged attempt on the affected cells — the same retry
accounting the process pool uses. ``rpc.timeout`` (same keys as
``fabric.rpc``) surfaces as an expired per-call deadline instead, so the
coordinator's ``rpc_timeouts`` counter and retry path can be asserted;
``rpc.flap`` fires once per worker session (``index/session``) right
after configuration — a ``crash`` there severs the session and drives
the worker's auto-reconnect (and, repeated, the coordinator's
per-worker circuit breaker).

Serve sites: ``serve.shard`` fires per shard per epoch (key: shard
index) and ``serve.deadline`` fires per tenant per admission epoch
(key: tenant index). A ``stall`` at ``serve.deadline`` with
``cycles=N`` tightens that epoch's newly assigned deadlines by N
simulated cycles — pure SLO bookkeeping that provokes deadline misses
without perturbing the simulated access sequence, which is what keeps
chaos serve runs bit-identical to their goldens.

Determinism: occurrence counters are keyed per ``(site, key)`` and file
damage uses a seed-derived deterministic byte pattern, so the same plan on
the same run injects byte-identical faults every time.
"""

from __future__ import annotations

import fnmatch
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultKillPoint, InjectedFault, SpecError

#: Environment variable carrying the serialized plan (also how pool workers
#: inherit it: the runner snapshots ``os.environ`` into worker payloads).
FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("crash", "exit", "stall", "interrupt", "kill", "corrupt", "truncate")

#: Actions that damage the file passed to the hook rather than raising.
_FILE_ACTIONS = ("corrupt", "truncate")


@dataclass(frozen=True)
class FaultSpec:
    """One injector: fire ``action`` at ``site`` when ``key`` matches."""

    site: str
    action: str
    key: str = "*"
    hits: Tuple[int, ...] = ()  # empty = fire on every occurrence
    params: Dict[str, str] = field(default_factory=dict)

    def matches_site_key(self, site: str, key: str) -> bool:
        return site == self.site and fnmatch.fnmatchcase(key, self.key)

    def to_entry(self) -> str:
        """Serialize back to the plan grammar (inverse of :func:`parse`)."""
        entry = f"{self.site}.{self.action}@{self.key}"
        if self.hits:
            entry += "#" + ",".join(str(h) for h in self.hits)
        if self.params:
            entry += "|" + ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return entry


class FaultPlan:
    """A set of injectors plus per-injector match bookkeeping."""

    def __init__(self, specs: List[FaultSpec], seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        # How many times each injector's site+key pattern has matched;
        # ``hits`` selects among these counts, so "#2" means "the second
        # event this injector watches", whatever its exact key was.
        self._spec_hits: List[int] = [0] * len(self.specs)
        #: Log of faults that actually fired: (site, key, match_no, action).
        self.fired: List[Tuple[str, str, int, str]] = []

    def match(self, site: str, key: str = "") -> Optional[FaultSpec]:
        """Count pattern matches and return the spec that fires, if any.

        Does *not* perform the action — used by call sites (the serving
        layer) that translate a match into domain behaviour themselves.
        Every injector watching this (site, key) advances its counter;
        the first one whose ``hits`` select the current count fires.
        """
        chosen: Optional[FaultSpec] = None
        chosen_count = 0
        for i, spec in enumerate(self.specs):
            if not spec.matches_site_key(site, key):
                continue
            self._spec_hits[i] += 1
            if chosen is None and (
                not spec.hits or self._spec_hits[i] in spec.hits
            ):
                chosen = spec
                chosen_count = self._spec_hits[i]
        if chosen is not None:
            self.fired.append((site, key, chosen_count, chosen.action))
        return chosen

    def fire(self, site: str, key: str = "", path: Optional[Path] = None) -> None:
        """Count the occurrence and perform the matching action, if any."""
        spec = self.match(site, key)
        if spec is None:
            return
        self._perform(spec, site, key, path)

    def perform(
        self, spec: FaultSpec, site: str, key: str = "", path: Optional[Path] = None
    ) -> None:
        """Perform ``spec``'s action for a match obtained via :meth:`match`.

        For call sites that interpret *some* actions themselves (the
        serving layer turns ``stall`` into a circuit-breaker trip) and
        fall back to the standard behaviour for the rest.
        """
        self._perform(spec, site, key, path)

    def _perform(
        self, spec: FaultSpec, site: str, key: str, path: Optional[Path]
    ) -> None:
        action = spec.action
        where = f"{site}@{key}" if key else site
        if action == "crash":
            raise InjectedFault(f"injected crash at {where}")
        if action == "exit":
            # Hard process death, as a crashed pool worker would exhibit.
            os._exit(int(spec.params.get("code", "17")))
        if action == "stall":
            time.sleep(float(spec.params.get("secs", "0.2")))
            return
        if action == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {where}")
        if action == "kill":
            raise FaultKillPoint(f"injected kill-point at {where}")
        if action in _FILE_ACTIONS:
            # Damage the file and let execution continue: pair with a `kill`
            # entry on a later key to also simulate dying with the torn
            # bytes on disk. Read-side (cache.entry) damage exercises the
            # corrupt-entry fallback on the very next read.
            if path is not None:
                _damage_file(path, action, self.seed, key)
            return
        raise SpecError(f"unknown fault action: {action!r}")


def _damage_file(path: Path, action: str, seed: int, key: str) -> None:
    """Deterministically truncate or garble ``path`` in place (best-effort)."""
    try:
        data = path.read_bytes()
    except OSError:
        return
    rng = zlib.crc32(f"{seed}|{key}|{action}".encode("utf-8"))
    if action == "truncate":
        cut = rng % max(1, len(data)) if data else 0
        damaged = data[:cut]
    else:  # corrupt: flip a deterministic byte (and keep the length)
        if not data:
            damaged = b"\xff"
        else:
            pos = rng % len(data)
            flipped = data[pos] ^ (0x01 | (rng >> 8) & 0xFF) or 0xA5
            damaged = data[:pos] + bytes([flipped & 0xFF]) + data[pos + 1 :]
    try:
        path.write_bytes(damaged)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Plan grammar
# ---------------------------------------------------------------------------


def parse(text: str, seed: int = 0) -> FaultPlan:
    """Parse a ``;``-separated plan string into a :class:`FaultPlan`."""
    specs: List[FaultSpec] = []
    for raw in text.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        specs.append(_parse_entry(entry))
    return FaultPlan(specs, seed=seed)


def _parse_entry(entry: str) -> FaultSpec:
    params: Dict[str, str] = {}
    if "|" in entry:
        entry, _, param_text = entry.partition("|")
        for pair in param_text.split(","):
            if not pair.strip():
                continue
            k, sep, v = pair.partition("=")
            if not sep:
                raise SpecError(f"fault param must be k=v, got {pair!r}")
            params[k.strip()] = v.strip()
    head, sep, tail = entry.partition("@")
    if not sep:
        raise SpecError(f"fault entry needs '@keypat': {entry!r}")
    site, dot, action = head.rpartition(".")
    if not dot or not site:
        raise SpecError(f"fault entry needs 'site.action': {entry!r}")
    if action not in _ACTIONS:
        raise SpecError(
            f"unknown fault action {action!r} (expected one of {_ACTIONS})"
        )
    keypat, hsep, hits_text = tail.partition("#")
    hits: Tuple[int, ...] = ()
    if hsep:
        try:
            hits = tuple(int(h) for h in hits_text.split(",") if h.strip())
        except ValueError:
            raise SpecError(f"fault hits must be integers: {hits_text!r}") from None
        if any(h < 1 for h in hits):
            raise SpecError(f"fault hits are 1-based: {hits_text!r}")
    return FaultSpec(site=site, action=action, key=keypat or "*", hits=hits, params=params)


# ---------------------------------------------------------------------------
# Process-wide installation
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or, with None, clear) the process-wide plan; returns old."""
    global _PLAN
    old = _PLAN
    _PLAN = plan
    return old


def clear() -> None:
    install(None)


def active() -> Optional[FaultPlan]:
    return _PLAN


def install_from_env() -> Optional[FaultPlan]:
    """(Re)install the plan described by ``REPRO_FAULTS``, if any."""
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return None
    seed = int(os.environ.get("REPRO_FAULTS_SEED", "0") or "0")
    plan = parse(text, seed=seed)
    install(plan)
    return plan


def fault_hook(site: str, key: str = "", path: Optional[Path] = None) -> None:
    """Zero-overhead injection point: no-op unless a plan is installed."""
    if _PLAN is None:
        return
    _PLAN.fire(site, key, path)


class injected:
    """Context manager installing a plan for a scoped block (tests)."""

    def __init__(self, plan_or_text, seed: int = 0):
        if isinstance(plan_or_text, str):
            plan_or_text = parse(plan_or_text, seed=seed)
        self.plan: FaultPlan = plan_or_text

    def __enter__(self) -> FaultPlan:
        self._old = install(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        install(self._old)
