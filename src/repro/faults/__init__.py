"""Seed-deterministic fault injection + recovery policies (`repro.faults`).

Public surface:

- :func:`fault_hook` — the zero-overhead injection point instrumented code
  calls; a no-op unless a plan is installed.
- :func:`parse` / :class:`FaultPlan` / :class:`FaultSpec` — plan grammar.
- :func:`install` / :func:`install_from_env` / :func:`clear` /
  :func:`active` — process-wide plan management (workers re-install from
  the ``REPRO_FAULTS`` env var).
- :class:`injected` — context manager scoping a plan to a test block.
- :class:`RetryPolicy` — deterministic exponential backoff for cell retry
  (now owned by :mod:`repro.resilience`; re-exported here for
  compatibility).
"""

from repro.faults.plan import (  # noqa: F401
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    active,
    clear,
    fault_hook,
    injected,
    install,
    install_from_env,
    parse,
)
from repro.faults.retry import RetryPolicy  # noqa: F401

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active",
    "clear",
    "fault_hook",
    "injected",
    "install",
    "install_from_env",
    "parse",
]
