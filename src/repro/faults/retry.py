"""Compatibility shim: :class:`RetryPolicy` lives in :mod:`repro.resilience`.

The cell-retry policy grew RPC siblings (``RpcPolicy``, circuit
breakers, admission control) and moved into the unified
``repro.resilience`` control plane; this module keeps the historical
``repro.faults.retry`` import path working.
"""

from repro.resilience.retry import RetryPolicy  # noqa: F401

__all__ = ["RetryPolicy"]
