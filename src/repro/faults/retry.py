"""Retry/backoff policy for self-healing sweep cells.

Backoff delays are a fixed geometric series (not jittered): recovery must be
deterministic like everything else in this repo, and the delays only pace
re-dispatch — they never influence simulated results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a failed sweep cell is re-dispatched before being quarantined."""

    #: Total attempts per cell (first try included). 1 = no retry.
    attempts: int = 3
    #: Delay before the second attempt, in seconds.
    backoff: float = 0.05
    #: Multiplier applied per further attempt.
    factor: float = 2.0
    #: Ceiling on any single delay.
    max_backoff: float = 2.0
    #: Hard per-cell wall-clock timeout in seconds (pool mode only; the
    #: serial driver cannot preempt a running cell). None = no timeout.
    timeout: Optional[float] = None

    def delay(self, attempt: int) -> float:
        """Pause before dispatching ``attempt`` (2-based; attempt 1 is free)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff * self.factor ** (attempt - 2), self.max_backoff)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from REPRO_RETRIES / REPRO_RETRY_BASE / REPRO_CELL_TIMEOUT."""
        attempts = int(os.environ.get("REPRO_RETRIES", "3") or "3")
        backoff = float(os.environ.get("REPRO_RETRY_BASE", "0.05") or "0.05")
        timeout_text = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
        timeout = float(timeout_text) if timeout_text else None
        return cls(attempts=max(1, attempts), backoff=backoff, timeout=timeout)
