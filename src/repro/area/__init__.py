"""ASIC area model for Table 3 (32 nm, post-synthesis and post-layout)."""

from repro.area.model import AreaBreakdown, AreaModel

__all__ = ["AreaBreakdown", "AreaModel"]
