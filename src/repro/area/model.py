"""Analytic ASIC area model calibrated to the paper's Table 3.

The paper pushes its Verilog through Design Compiler / IC Compiler in a
32 nm commercial process. A licensed tool flow is not reproducible here,
but Table 3 is a linear composition of SRAM macros and crypto datapaths,
so an analytic model captures the breakdown and its scaling with DRAM
channel count (DESIGN.md §3):

- PosMap / PLB area ~ SRAM capacity (plus tag array and control);
- PMMAC ~ one SHA3-224 core plus request buffers (DRAM-rate independent:
  it hashes one block per access, §6.3 — why its share *falls* as
  channels grow);
- stash ~ SRAM plus path buffers that grow mildly with channel count;
- AES ~ units sized to rate-match DRAM: one 128-bit pipelined core covers
  two 64-bit channels (the paper's nchannel=1 -> 2 "design artifact").

Constants are calibrated against Table 3's absolute mm^2 figures; the
tests assert every component tracks the paper within tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

#: mm^2 per KiB of SRAM at 32 nm (calibrated: 8 KB PosMap = 0.0228 mm^2).
SRAM_MM2_PER_KIB = 0.00285

#: Fixed logic blocks (calibrated, mm^2).
PLB_CONTROL_MM2 = 0.006
SHA3_CORE_MM2 = 0.030
PMMAC_BUFFER_MM2 = 0.009
MISC_FRONTEND_MM2 = 0.0040
MISC_PER_CHANNEL_MM2 = 0.0003
STASH_BASE_MM2 = 0.0840
STASH_PER_CHANNEL_MM2 = 0.0050
AES_UNIT_MM2 = 0.1100
AES_PER_CHANNEL_MM2 = 0.0059
AES_CONTROL_MM2 = 0.0100

#: Post-layout growth factors reported in §7.2.2 (nchannel = 2).
LAYOUT_GROWTH_FRONTEND = 1.38
LAYOUT_GROWTH_STASH = 1.24
LAYOUT_GROWTH_AES = 1.63


@dataclass
class AreaBreakdown:
    """Component areas in mm^2 (post-synthesis unless noted)."""

    posmap: float
    plb: float
    pmmac: float
    misc: float
    stash: float
    aes: float

    @property
    def frontend(self) -> float:
        """Frontend = PosMap + PLB + PMMAC + misc (Table 3 grouping)."""
        return self.posmap + self.plb + self.pmmac + self.misc

    @property
    def backend(self) -> float:
        """Backend = stash + AES datapath."""
        return self.stash + self.aes

    @property
    def total(self) -> float:
        """Total cell area."""
        return self.frontend + self.backend

    def percentages(self) -> Dict[str, float]:
        """Component shares of total area, in percent (Table 3 format)."""
        t = self.total
        return {
            "frontend": 100 * self.frontend / t,
            "posmap": 100 * self.posmap / t,
            "plb": 100 * self.plb / t,
            "pmmac": 100 * self.pmmac / t,
            "misc": 100 * self.misc / t,
            "backend": 100 * self.backend / t,
            "stash": 100 * self.stash / t,
            "aes": 100 * self.aes / t,
        }


class AreaModel:
    """Parameterised ORAM-controller area estimator."""

    def __init__(
        self,
        posmap_kib: float = 8.0,
        plb_kib: float = 8.0,
        pmmac: bool = True,
        stash_entries: int = 200,
    ):
        self.posmap_kib = posmap_kib
        self.plb_kib = plb_kib
        self.pmmac = pmmac
        self.stash_entries = stash_entries

    def synthesis(self, channels: int) -> AreaBreakdown:
        """Post-synthesis (total cell area) breakdown for nchannel."""
        if channels < 1:
            raise ValueError("need at least one DRAM channel")
        # PLB data array plus a ~12% tag/valid overhead. Arrays of 32 KiB
        # and up come out of the memory compiler denser than the small
        # macros (calibrated to the paper's "+29% for a 64 KB PLB",
        # §7.2.3).
        density = 0.57 if self.plb_kib >= 32 else 1.0
        plb_sram = self.plb_kib * 1.125 * SRAM_MM2_PER_KIB * density
        aes_units = math.ceil(channels / 2)
        return AreaBreakdown(
            posmap=self.posmap_kib * SRAM_MM2_PER_KIB,
            plb=plb_sram + PLB_CONTROL_MM2,
            pmmac=(SHA3_CORE_MM2 + PMMAC_BUFFER_MM2) if self.pmmac else 0.0,
            misc=MISC_FRONTEND_MM2 + MISC_PER_CHANNEL_MM2 * channels,
            stash=STASH_BASE_MM2 + STASH_PER_CHANNEL_MM2 * channels,
            aes=AES_UNIT_MM2 * aes_units + AES_PER_CHANNEL_MM2 * channels + AES_CONTROL_MM2,
        )

    def layout(self, channels: int) -> AreaBreakdown:
        """Post-layout estimate applying the §7.2.2 growth factors."""
        synth = self.synthesis(channels)
        return AreaBreakdown(
            posmap=synth.posmap * LAYOUT_GROWTH_FRONTEND,
            plb=synth.plb * LAYOUT_GROWTH_FRONTEND,
            pmmac=synth.pmmac * LAYOUT_GROWTH_FRONTEND,
            misc=synth.misc * LAYOUT_GROWTH_FRONTEND,
            stash=synth.stash * LAYOUT_GROWTH_STASH,
            aes=synth.aes * LAYOUT_GROWTH_AES,
        )

    def no_recursion_posmap_mm2(self, num_blocks: int, levels: int) -> float:
        """SRAM area of a flat on-chip PosMap (the §7.2.3 ~5 mm^2 point).

        MB-scale arrays come out of the memory compiler noticeably denser
        than the KB-scale macros the controller uses; the density factor
        is calibrated to the paper's ~5 mm^2 for a 2^20-entry PosMap.
        """
        kib = num_blocks * levels / 8.0 / 1024.0
        density = 0.68 if kib > 1024 else 1.0
        return kib * SRAM_MM2_PER_KIB * density
