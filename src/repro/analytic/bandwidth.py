"""Recursive ORAM bandwidth accounting (Fig. 3, Fig. 7, §3.2.1, §5.4).

A full Recursive ORAM access reads and writes one path in every level's
tree. Each level i holds N_i = ceil(N / X^i) blocks in a tree of
L_i = log2(next_pow2(N_i)) - 1 levels with buckets padded to 512-bit
multiples (Fig. 3 caption), so bytes-per-access is exact arithmetic — no
simulation required. The same accounting at a single Unified tree models
the PLB designs, with the measured average number of PosMap accesses per
data access supplied by simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.config import OramConfig


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


def recursive_level_sizes(num_blocks: int, fanout: int, onchip_entries: int) -> List[int]:
    """Block count per recursion level (level 0 = data) until the
    residual PosMap fits on-chip."""
    sizes = [num_blocks]
    while sizes[-1] > onchip_entries:
        sizes.append(-(-sizes[-1] // fanout))
    return sizes


@dataclass
class RecursionBreakdown:
    """Bytes moved by one full Recursive ORAM access."""

    capacity_bytes: int
    num_levels: int
    data_bytes: int
    posmap_bytes: int
    onchip_posmap_bits: int

    @property
    def total_bytes(self) -> int:
        """Data + PosMap bytes."""
        return self.data_bytes + self.posmap_bytes

    @property
    def posmap_fraction(self) -> float:
        """Share of bytes serving PosMap lookups (Fig. 3 y-axis)."""
        return self.posmap_bytes / self.total_bytes if self.total_bytes else 0.0


def recursion_breakdown(
    num_blocks: int,
    data_block_bytes: int = 64,
    posmap_block_bytes: int = 32,
    blocks_per_bucket: int = 4,
    leaf_bytes: int = 4,
    onchip_posmap_bytes: int = 8 * 1024,
    mac_bytes: int = 0,
) -> RecursionBreakdown:
    """Exact bytes per access for the separate-tree Recursive ORAM.

    ``onchip_posmap_bytes`` converts to an entry budget at ``leaf_bytes``
    per entry, matching how the paper sizes its on-chip PosMaps.

    Following the paper's Fig. 3 estimation method, PosMap ORAM buckets
    are counted at Z x Bp (metadata folded into the 512-bit padding —
    4 x 32 B is exactly one DDR3 burst pair), while Data ORAM buckets
    carry full per-block metadata.
    """
    fanout = posmap_block_bytes // leaf_bytes
    onchip_entries = max(onchip_posmap_bytes // leaf_bytes, 1)
    sizes = recursive_level_sizes(num_blocks, fanout, onchip_entries)

    data_bytes = 0
    posmap_bytes = 0
    for level, blocks in enumerate(sizes):
        if level == 0:
            cfg = OramConfig(
                num_blocks=_next_pow2(blocks),
                block_bytes=data_block_bytes,
                blocks_per_bucket=blocks_per_bucket,
                leaf_bytes=leaf_bytes,
                mac_bytes=mac_bytes,
            )
        else:
            cfg = OramConfig(
                num_blocks=_next_pow2(blocks),
                block_bytes=posmap_block_bytes,
                blocks_per_bucket=blocks_per_bucket,
                addr_bytes=0,
                leaf_bytes=0,
                mac_bytes=mac_bytes,
                seed_bytes=0,
            )
        moved = 2 * cfg.path_bytes  # read + write-back
        if level == 0:
            data_bytes += moved
        else:
            posmap_bytes += moved
    top_levels = OramConfig(
        num_blocks=_next_pow2(sizes[-1]),
        block_bytes=posmap_block_bytes,
        blocks_per_bucket=blocks_per_bucket,
    ).levels
    return RecursionBreakdown(
        capacity_bytes=num_blocks * data_block_bytes,
        num_levels=len(sizes),
        data_bytes=data_bytes,
        posmap_bytes=posmap_bytes,
        onchip_posmap_bits=sizes[-1] * max(top_levels, 1),
    )


def posmap_fraction(
    capacity_bytes: int,
    block_bytes: int,
    onchip_posmap_bytes: int,
    posmap_block_bytes: int = 32,
    blocks_per_bucket: int = 4,
) -> float:
    """Fig. 3 data point: PosMap byte share at a given Data ORAM capacity."""
    num_blocks = _next_pow2(capacity_bytes // block_bytes)
    return recursion_breakdown(
        num_blocks,
        data_block_bytes=block_bytes,
        posmap_block_bytes=posmap_block_bytes,
        blocks_per_bucket=blocks_per_bucket,
        onchip_posmap_bytes=onchip_posmap_bytes,
    ).posmap_fraction


def unified_access_bytes(
    num_blocks: int,
    block_bytes: int = 64,
    fanout: int = 32,
    onchip_entries: int = 1024,
    blocks_per_bucket: int = 4,
    mac_bytes: int = 0,
    posmap_accesses_per_data_access: float = 0.0,
) -> RecursionBreakdown:
    """Bytes per access for a PLB scheme over one Unified tree.

    ``posmap_accesses_per_data_access`` is the simulation-measured average
    number of PosMap block fetches per processor request (0 = perfect PLB,
    H-1 = every level misses); data and PosMap traffic both move whole
    paths of the same Unified tree.
    """
    sizes = recursive_level_sizes(num_blocks, fanout, onchip_entries)
    total_blocks = _next_pow2(sum(sizes))
    cfg = OramConfig(
        num_blocks=total_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
        mac_bytes=mac_bytes,
    )
    per_path = 2 * cfg.path_bytes
    return RecursionBreakdown(
        capacity_bytes=num_blocks * block_bytes,
        num_levels=len(sizes),
        data_bytes=per_path,
        posmap_bytes=int(round(posmap_accesses_per_data_access * per_path)),
        onchip_posmap_bits=sizes[-1] * cfg.levels,
    )


# -- asymptotic forms (§3.2.1 and §5.4) ------------------------------------------


def recursive_overhead_term(num_blocks: int, block_bits: int) -> float:
    """O(log N + log^3 N / B): baseline Recursive Path ORAM overhead."""
    log_n = math.log2(num_blocks)
    return log_n + log_n**3 / block_bits


def compressed_overhead_term(num_blocks: int, block_bits: int) -> float:
    """O(log N + log^3 N / (B log log N)): compressed-PosMap overhead."""
    log_n = math.log2(num_blocks)
    return log_n + log_n**3 / (block_bits * math.log2(max(log_n, 2.0)))
