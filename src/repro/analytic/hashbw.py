"""Hash-bandwidth comparison: PMMAC vs Merkle trees (§6.3).

A Path ORAM access touches Z*(L+1) blocks. Merkle-style schemes [2, 25]
must hash every one of them to check and update the root; PMMAC hashes
exactly one — the block of interest. The paper quotes the resulting
reduction as 68x at L=16 and 132x at L=32 (Z=4, sibling-hash traffic
ignored, as in §6.3).
"""

from __future__ import annotations


def merkle_hash_blocks_per_access(levels: int, blocks_per_bucket: int = 4) -> int:
    """Blocks hashed per access by a path Merkle scheme: Z * (L + 1)."""
    if levels < 0:
        raise ValueError("levels must be non-negative")
    return blocks_per_bucket * (levels + 1)


def pmmac_hash_blocks_per_access() -> int:
    """Blocks hashed per access by PMMAC: only the block of interest."""
    return 1


def hash_reduction_factor(levels: int, blocks_per_bucket: int = 4) -> float:
    """PMMAC's hash-bandwidth advantage (the paper's >= 68x)."""
    return merkle_hash_blocks_per_access(levels, blocks_per_bucket) / float(
        pmmac_hash_blocks_per_access()
    )


def merkle_bytes_hashed_per_access(
    levels: int, bucket_bytes: int, tag_bytes: int = 28, verify_and_update: bool = True
) -> int:
    """Bytes through the hash unit per access for the Merkle baseline.

    Each of the L+1 path buckets is hashed over its contents plus two
    child tags; verification and the post-eviction update each walk the
    path once.
    """
    per_node = bucket_bytes + 2 * tag_bytes
    passes = 2 if verify_and_update else 1
    return passes * (levels + 1) * per_node


def pmmac_bytes_hashed_per_access(block_bytes: int, header_bytes: int = 20) -> int:
    """Bytes hashed per access by PMMAC: one block plus its c||a header."""
    return block_bytes + header_bytes
