"""Closed-form bandwidth and hashing models.

Path ORAM's bytes-per-access is a deterministic function of its geometry,
which is how the paper computes Fig. 3 (recursion overhead vs capacity)
and the §6.3 hash-bandwidth comparison. These models also extend the
simulated results to full paper-scale capacities (Fig. 7) where direct
simulation is impractical (DESIGN.md §3).
"""

from repro.analytic.bandwidth import (
    RecursionBreakdown,
    compressed_overhead_term,
    posmap_fraction,
    recursion_breakdown,
    recursive_level_sizes,
    recursive_overhead_term,
    unified_access_bytes,
)
from repro.analytic.hashbw import (
    hash_reduction_factor,
    merkle_hash_blocks_per_access,
    pmmac_hash_blocks_per_access,
)

__all__ = [
    "RecursionBreakdown",
    "recursion_breakdown",
    "recursive_level_sizes",
    "posmap_fraction",
    "unified_access_bytes",
    "recursive_overhead_term",
    "compressed_overhead_term",
    "merkle_hash_blocks_per_access",
    "pmmac_hash_blocks_per_access",
    "hash_reduction_factor",
]
