"""On-chip PosMap: the root of the recursion (§3.2's "root page table").

Stores one entry per block of the top recursion level. Two modes:

- ``leaf`` mode: entries are literal leaf labels remapped uniformly at
  random on each access (classic Path ORAM, §3.1).
- ``counter`` mode: entries are flat 64-bit access counters and the leaf
  is derived as PRF_K(a || c) mod 2^L (§6.2.1). Because the counters are
  on-chip they are tamper-proof, forming PMMAC's root of trust.

First-touch handling: hardware ships with factory-initialised memory; a
simulator cannot afford to pre-write every block through the ORAM, so in
leaf mode a never-touched entry receives its initial uniform label on
first access (statistically identical to pre-initialisation), and in
counter mode the initial count is simply zero, exactly as in hardware.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.utils.rng import DeterministicRng


class OnChipPosMap:
    """Trusted on-chip table of leaves or counters."""

    MODE_LEAF = "leaf"
    MODE_COUNTER = "counter"

    def __init__(
        self,
        entries: int,
        levels: int,
        mode: str = MODE_LEAF,
        rng: Optional[DeterministicRng] = None,
        prf: Optional[Prf] = None,
        counter_bits: int = 64,
    ):
        if mode not in (self.MODE_LEAF, self.MODE_COUNTER):
            raise ConfigurationError(f"unknown PosMap mode {mode!r}")
        if mode == self.MODE_LEAF and rng is None:
            raise ConfigurationError("leaf mode requires an RNG")
        if mode == self.MODE_COUNTER and prf is None:
            raise ConfigurationError("counter mode requires a PRF")
        self.entries = entries
        self.levels = levels
        self.mode = mode
        self.rng = rng
        self.prf = prf
        self.counter_bits = counter_bits
        self._table: List[int] = [0] * entries
        self._touched = bytearray((entries + 7) // 8)

    # -- first-touch bookkeeping ------------------------------------------------

    def _is_touched(self, index: int) -> bool:
        return bool(self._touched[index >> 3] & (1 << (index & 7)))

    def _mark_touched(self, index: int) -> None:
        self._touched[index >> 3] |= 1 << (index & 7)

    # -- access -------------------------------------------------------------------

    def lookup_and_remap(self, index: int, tagged_addr: int) -> Tuple[int, int, int]:
        """Return (current_leaf, new_leaf, new_counter) and remap the entry.

        ``tagged_addr`` feeds the PRF in counter mode. The returned
        ``new_counter`` is 0 in leaf mode.
        """
        if not 0 <= index < self.entries:
            raise ValueError(f"on-chip PosMap index {index} out of range")
        if self.mode == self.MODE_LEAF:
            if self._is_touched(index):
                current = self._table[index]
            else:
                current = self.rng.random_leaf(self.levels)
                self._mark_touched(index)
            new = self.rng.random_leaf(self.levels)
            self._table[index] = new
            return current, new, 0

        count = self._table[index]
        new_count = count + 1
        if new_count >= (1 << self.counter_bits):
            raise ConfigurationError("on-chip counter overflow")
        self._table[index] = new_count
        self._mark_touched(index)
        current = self.prf.leaf_for(tagged_addr, count, self.levels)
        new = self.prf.leaf_for(tagged_addr, new_count, self.levels)
        return current, new, new_count

    def counter(self, index: int) -> int:
        """Current counter value (counter mode only)."""
        if self.mode != self.MODE_COUNTER:
            raise ConfigurationError("counters only exist in counter mode")
        return self._table[index]

    def peek_leaf(self, index: int, tagged_addr: int = 0) -> int:
        """Current leaf without remapping (testing/diagnostics)."""
        if self.mode == self.MODE_LEAF:
            if not self._is_touched(index):
                raise KeyError(f"entry {index} not yet initialised")
            return self._table[index]
        return self.prf.leaf_for(tagged_addr, self._table[index], self.levels)

    @property
    def size_bytes(self) -> int:
        """On-chip SRAM footprint (entries x entry width)."""
        bits = self.levels if self.mode == self.MODE_LEAF else self.counter_bits
        return (self.entries * bits + 7) // 8
