"""Frontend interface and shared statistics.

Every Frontend exposes ``access(addr, op, data)`` with the semantics of
§3.1's accessORAM — the processor-side contract — plus a statistics block
that the evaluation harness uses to attribute bandwidth to Data vs PosMap
traffic (the white/shaded split of Figs. 7 and 8).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.backend.ops import Op


@dataclass(slots=True)
class FrontendStats:
    """Counters accumulated across the life of a Frontend."""

    accesses: int = 0
    data_tree_accesses: int = 0
    posmap_tree_accesses: int = 0
    plb_hits: int = 0
    plb_misses: int = 0
    plb_refills: int = 0
    plb_evictions: int = 0
    group_remaps: int = 0
    group_relocations: int = 0
    mac_checks: int = 0
    fresh_blocks: int = 0

    @property
    def tree_accesses(self) -> int:
        """Total Backend path accesses (data + PosMap)."""
        return self.data_tree_accesses + self.posmap_tree_accesses

    @property
    def posmap_fraction(self) -> float:
        """Fraction of Backend path accesses serving the PosMap."""
        total = self.tree_accesses
        return self.posmap_tree_accesses / total if total else 0.0


@dataclass(slots=True)
class AccessResult:
    """Outcome of one Frontend access, for the timing model."""

    data: bytes
    tree_accesses: int
    posmap_tree_accesses: int = 0
    plb_hit_level: int = -1


class Frontend(abc.ABC):
    """Processor-facing ORAM controller interface."""

    def __init__(self) -> None:
        self.stats = FrontendStats()

    @abc.abstractmethod
    def access(
        self, addr: int, op: Op = Op.READ, data: Optional[bytes] = None
    ) -> AccessResult:
        """Read or write one data block; returns its (pre-write) contents."""

    def read(self, addr: int) -> bytes:
        """Convenience read returning payload bytes."""
        return self.access(addr, Op.READ).data

    def write(self, addr: int, data: bytes) -> None:
        """Convenience write."""
        self.access(addr, Op.WRITE, data)

    # -- bandwidth attribution --------------------------------------------------

    @property
    @abc.abstractmethod
    def data_bytes_moved(self) -> int:
        """Bytes moved on the memory bus attributable to data blocks."""

    @property
    @abc.abstractmethod
    def posmap_bytes_moved(self) -> int:
        """Bytes moved attributable to PosMap lookups."""

    @property
    def total_bytes_moved(self) -> int:
        """All bytes moved on the memory bus."""
        return self.data_bytes_moved + self.posmap_bytes_moved
