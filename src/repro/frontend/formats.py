"""PosMap block formats: uncompressed leaves, flat counters, compressed.

A PosMap block at recursion level i+1 stores, for X consecutive child
blocks of level i, the information needed to derive each child's current
leaf:

- **Uncompressed** (§3.2): X literal leaf labels. X = B / leaf_bytes
  (16 for 64-byte blocks and 4-byte leaves — the paper's P_X16).
- **Flat counter** (§6.2.2): X 64-bit access counters; the leaf is
  PRF_K(a || c) mod 2^L. X = B/8 = 8 (the paper's PI_X8).
- **Compressed** (§5.2.1): one α-bit group counter GC plus X β-bit
  individual counters IC_j; the child's logical count is GC || IC_j and
  the leaf is PRF_K(a+j || GC || IC_j) mod 2^L. With B = 512 bits,
  α = 64, β = 14 this packs X = 32 (PC_X32 / PIC_X32). Incrementing an
  IC past 2^β - 1 triggers a *group remap*: GC += 1 and every IC in the
  block resets to zero, relocating all X children (§5.2.2).

Formats are stateless codecs over block payload bytes. ``RemapResult``
carries everything a Frontend needs to finish the operation, including
which siblings must be relocated on a group remap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.prf import Prf
from repro.errors import ConfigurationError
from repro.utils.rng import DeterministicRng


@dataclass(slots=True)
class RemapResult:
    """Outcome of remapping one child entry inside a PosMap block."""

    old_leaf: int
    new_leaf: int
    old_counter: int = 0
    new_counter: int = 0
    #: (slot, old_counter) for every child other than the accessed one that
    #: must be relocated because a group remap reset its counter; the new
    #: counter for all of them equals ``new_counter``. Empty unless a
    #: compressed-format IC rolled over.
    group_remap_slots: List[Tuple[int, int]] = field(default_factory=list)


class UncompressedPosMapFormat:
    """X literal leaf labels of ``leaf_bytes`` each."""

    kind = "uncompressed"
    uses_counters = False

    def __init__(self, block_bytes: int, levels: int, leaf_bytes: int = 4):
        if block_bytes % leaf_bytes:
            raise ConfigurationError("block size must be a leaf multiple")
        self.block_bytes = block_bytes
        self.leaf_bytes = leaf_bytes
        self.levels = levels
        self.fanout = block_bytes // leaf_bytes
        if levels >= 8 * leaf_bytes:
            raise ConfigurationError("leaf label does not fit in an entry")

    def leaf_of(self, data: bytes, slot: int, child_addr: int) -> int:
        """Current leaf of the child in ``slot`` (child_addr unused)."""
        off = slot * self.leaf_bytes
        return int.from_bytes(data[off : off + self.leaf_bytes], "little")

    def counter_of(self, data: bytes, slot: int) -> int:
        """Uncompressed entries carry no counters."""
        raise ConfigurationError("uncompressed PosMap has no counters")

    def remap(
        self, data: bytearray, slot: int, child_addr: int, rng: DeterministicRng
    ) -> RemapResult:
        """Replace the slot's leaf with a fresh uniform label."""
        off = slot * self.leaf_bytes
        end = off + self.leaf_bytes
        # Read the old label straight from the mutable block — no
        # whole-block copy on the replay hot path.
        old = int.from_bytes(data[off:end], "little")
        new = rng.random_leaf(self.levels)
        data[off:end] = new.to_bytes(self.leaf_bytes, "little")
        return RemapResult(old_leaf=old, new_leaf=new)

    def initial_block(self) -> bytes:
        """Payload for a never-written PosMap block."""
        return bytes(self.block_bytes)


class FlatCounterPosMapFormat:
    """X flat 64-bit counters; leaves derived by PRF (PI_X8 of §6.2.2)."""

    kind = "flat"
    uses_counters = True

    def __init__(self, block_bytes: int, levels: int, prf: Prf, counter_bytes: int = 8):
        if block_bytes % counter_bytes:
            raise ConfigurationError("block size must be a counter multiple")
        self.block_bytes = block_bytes
        self.counter_bytes = counter_bytes
        self.levels = levels
        self.prf = prf
        self.fanout = block_bytes // counter_bytes

    def counter_of(self, data: bytes, slot: int) -> int:
        """Current access count of the child in ``slot``."""
        off = slot * self.counter_bytes
        return int.from_bytes(data[off : off + self.counter_bytes], "little")

    def leaf_of(self, data: bytes, slot: int, child_addr: int) -> int:
        """Leaf = PRF_K(child_addr || c) mod 2^L."""
        return self.prf.leaf_for(child_addr, self.counter_of(data, slot), self.levels)

    def remap(
        self, data: bytearray, slot: int, child_addr: int, rng: DeterministicRng
    ) -> RemapResult:
        """Increment the child's counter; derive old and new leaves."""
        off = slot * self.counter_bytes
        # Read the counter straight out of the mutable block: no whole-block
        # copy on the replay hot path.
        old_c = int.from_bytes(data[off : off + self.counter_bytes], "little")
        new_c = old_c + 1
        data[off : off + self.counter_bytes] = new_c.to_bytes(self.counter_bytes, "little")
        # One batched PRF call for the (old, new) pair — same derivation
        # order as two scalar calls, so leaves and accounting are identical.
        old_leaf, new_leaf = self.prf.leaf_for_many(
            (child_addr, child_addr), (old_c, new_c), self.levels
        )
        return RemapResult(
            old_leaf=old_leaf,
            new_leaf=new_leaf,
            old_counter=old_c,
            new_counter=new_c,
        )

    def initial_block(self) -> bytes:
        """All counters zero (factory state)."""
        return bytes(self.block_bytes)


class CompressedPosMapFormat:
    """GC || IC_0 || ... || IC_{X-1} with PRF-derived leaves (§5.2.1).

    The logical per-child count is ``(GC << β) | IC_j``, which strictly
    increases across normal increments and group remaps, so it doubles as
    the PMMAC freshness nonce (§6.2.2).
    """

    kind = "compressed"
    uses_counters = True

    def __init__(
        self,
        block_bytes: int,
        levels: int,
        prf: Prf,
        alpha_bits: int = 64,
        beta_bits: int = 14,
        fanout: Optional[int] = None,
    ):
        total_bits = 8 * block_bytes
        max_fanout = (total_bits - alpha_bits) // beta_bits
        if fanout is None:
            # Footnote 2: X' is restricted to a power of two to simplify
            # the PosMap block address translation.
            fanout = 1 << (max_fanout.bit_length() - 1) if max_fanout >= 1 else 0
        self.fanout = fanout
        if self.fanout < 1 or self.fanout > max_fanout:
            raise ConfigurationError(
                f"fanout {fanout} does not fit: block {total_bits}b, "
                f"alpha {alpha_bits}b, beta {beta_bits}b"
            )
        self.block_bytes = block_bytes
        self.levels = levels
        self.prf = prf
        self.alpha_bits = alpha_bits
        self.beta_bits = beta_bits
        self._ic_mask = (1 << beta_bits) - 1

    # -- field access (bit-packed little-endian integer view) -----------------

    def _unpack(self, data: bytes) -> int:
        return int.from_bytes(data, "little")

    def group_counter(self, data: bytes) -> int:
        """GC field."""
        return self._unpack(data) & ((1 << self.alpha_bits) - 1)

    def individual_counter(self, data: bytes, slot: int) -> int:
        """IC_slot field."""
        value = self._unpack(data)
        return (value >> (self.alpha_bits + slot * self.beta_bits)) & self._ic_mask

    def counter_of(self, data: bytes, slot: int) -> int:
        """Logical per-child count (GC << β) | IC."""
        return (self.group_counter(data) << self.beta_bits) | self.individual_counter(
            data, slot
        )

    def leaf_of(self, data: bytes, slot: int, child_addr: int) -> int:
        """Leaf = PRF_K(child_addr || GC || IC) mod 2^L."""
        return self.prf.leaf_for(child_addr, self.counter_of(data, slot), self.levels)

    def leaf_for_counter(self, child_addr: int, counter: int) -> int:
        """Leaf for an explicit logical count (used by group relocation)."""
        return self.prf.leaf_for(child_addr, counter, self.levels)

    # -- remap -----------------------------------------------------------------

    def remap(
        self, data: bytearray, slot: int, child_addr: int, rng: DeterministicRng
    ) -> RemapResult:
        """Increment IC_slot, performing a group remap on rollover.

        The common (no-rollover) case touches only the few bytes spanning
        GC and the addressed IC field — an IC increment cannot carry out of
        its β-bit field, so the byte-exact result matches rewriting the
        whole block from its integer image. The rare rollover keeps the
        straightforward whole-block path.
        """
        alpha = self.alpha_bits
        beta = self.beta_bits
        gc = int.from_bytes(data[: (alpha + 7) >> 3], "little") & ((1 << alpha) - 1)
        ic_shift = alpha + slot * beta
        byte_off = ic_shift >> 3
        bit_off = ic_shift & 7
        window = data[byte_off : byte_off + ((bit_off + beta + 7) >> 3)]
        word = int.from_bytes(window, "little")
        ic = (word >> bit_off) & self._ic_mask
        old_counter = (gc << beta) | ic

        if ic < self._ic_mask:
            word += 1 << bit_off
            data[byte_off : byte_off + len(window)] = word.to_bytes(
                len(window), "little"
            )
            new_counter = old_counter + 1
            group_slots: List[Tuple[int, int]] = []
        else:
            # Group remap: GC += 1, every IC (including this one) resets.
            value = int.from_bytes(data, "little")
            new_gc = gc + 1
            if new_gc >= (1 << alpha):
                raise ConfigurationError("group counter overflow (alpha too small)")
            group_slots = []
            for s in range(self.fanout):
                if s == slot:
                    continue
                ic_s = (value >> (alpha + s * beta)) & self._ic_mask
                group_slots.append((s, (gc << beta) | ic_s))
            new_counter = new_gc << beta
            data[:] = new_gc.to_bytes(self.block_bytes, "little")  # all ICs zero
        # One batched PRF call for the (old, new) pair — same derivation
        # order as two scalar calls, so leaves and accounting are identical.
        old_leaf, new_leaf = self.prf.leaf_for_many(
            (child_addr, child_addr), (old_counter, new_counter), self.levels
        )
        return RemapResult(
            old_leaf=old_leaf,
            new_leaf=new_leaf,
            old_counter=old_counter,
            new_counter=new_counter,
            group_remap_slots=group_slots,
        )

    def initial_block(self) -> bytes:
        """All counters zero (factory state)."""
        return bytes(self.block_bytes)
