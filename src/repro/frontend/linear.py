"""Non-recursive Frontend: the entire PosMap held on-chip.

This is the Phantom [21] organisation — no recursion, one Backend access
per processor request — used as the Fig. 9 baseline (with 4 KB blocks) and
in unit tests as the simplest correct Frontend. Its on-chip cost is what
makes it unscalable: N * L bits of SRAM (§1.1, §7.2.3).
"""

from __future__ import annotations

from typing import Optional

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend, make_backend
from repro.config import OramConfig
from repro.errors import ConfigurationError
from repro.frontend.base import AccessResult, Frontend
from repro.frontend.posmap import OnChipPosMap
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


class LinearFrontend(Frontend):
    """One flat on-chip PosMap in front of a single Backend."""

    def __init__(
        self,
        config: OramConfig,
        rng: DeterministicRng,
        storage=None,
        backend: Optional[PathOramBackend] = None,
    ):
        super().__init__()
        self.config = config
        self.rng = rng
        if backend is None:
            storage = storage if storage is not None else TreeStorage(config)
            backend = make_backend(config, storage, rng)
        self.backend = backend
        self.posmap = OnChipPosMap(
            entries=config.num_blocks,
            levels=config.levels,
            mode=OnChipPosMap.MODE_LEAF,
            rng=rng,
        )

    @classmethod
    def from_spec(cls, spec, rng=None, observer=None) -> "LinearFrontend":
        """Build from a declarative :class:`~repro.spec.SchemeSpec`.

        Mirrors the historical ``phantom_4kb`` preset construction:
        geometry from the spec, storage kind resolved per tree 0, default
        RNG seed 0 when none is supplied.
        """
        from repro.storage.array_tree import default_storage_backend, make_storage

        config = OramConfig(
            num_blocks=spec.num_blocks,
            block_bytes=spec.block_bytes,
            blocks_per_bucket=spec.blocks_per_bucket,
        )
        rng = rng if rng is not None else DeterministicRng(0)
        kind = (
            spec.storage if spec.storage != "default" else default_storage_backend()
        )
        view = observer.for_tree(0) if observer is not None else None
        return cls(config, rng, storage=make_storage(kind, config, observer=view))

    def access(
        self, addr: int, op: Op = Op.READ, data: Optional[bytes] = None
    ) -> AccessResult:
        """Steps 1-5 of §3.1: PosMap lookup/remap, then one Backend access."""
        if op not in (Op.READ, Op.WRITE):
            raise ConfigurationError("processor requests are READ or WRITE")
        if op is Op.WRITE and (data is None or len(data) != self.config.block_bytes):
            raise ValueError("WRITE requires a full block of data")
        self.stats.accesses += 1
        self.stats.data_tree_accesses += 1

        leaf, new_leaf, _ = self.posmap.lookup_and_remap(addr, addr)

        def update(block) -> None:
            if op is Op.WRITE:
                block.data = data

        block = self.backend.access(op, addr, leaf, new_leaf, update=update)
        return AccessResult(
            data=block.data, tree_accesses=1, posmap_tree_accesses=0
        )

    @property
    def data_bytes_moved(self) -> int:
        """All traffic is data traffic — there are no PosMap ORAMs."""
        return self.backend.storage.bytes_moved

    @property
    def posmap_bytes_moved(self) -> int:
        """Always zero for the non-recursive design."""
        return 0

    @property
    def onchip_posmap_bytes(self) -> int:
        """SRAM cost of the flat PosMap (the design's scaling problem)."""
        return self.posmap.size_bytes
