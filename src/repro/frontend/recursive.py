"""Recursive ORAM baseline (§3.2): one physical tree per recursion level.

This is the scheme of Shi et al. [30] as architected by Ren et al. [26] —
the paper's R_X8 baseline. PosMap blocks of ORam_i hold X leaf labels for
blocks of ORam_{i-1}; a full access walks the on-chip PosMap, then
ORam_{H-1} ... ORam_1, then the Data ORAM, like a page-table walk. Every
level lives in its *own* ORAM tree, which is exactly why a PLB cannot be
bolted on here without leaking (§4.1.2) — and why bandwidth explodes with
capacity (Fig. 3 / Fig. 7).

PosMap ORAMs may use a smaller block size Bp than the data ORAM (32-byte
PosMap blocks in [26]); bandwidth accounting uses each tree's own padded
bucket size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend, make_backend
from repro.config import OramConfig
from repro.errors import ConfigurationError
from repro.frontend.addrgen import AddressSpace, levels_needed
from repro.frontend.base import AccessResult, Frontend
from repro.frontend.formats import UncompressedPosMapFormat
from repro.frontend.posmap import OnChipPosMap
from repro.storage.array_tree import default_storage_backend, make_storage
from repro.utils.rng import DeterministicRng


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


#: Per-frontend cap on memoised address chains (mirrors the PLB
#: frontend's bound; replay working sets fit comfortably).
CHAIN_CACHE_LIMIT = 1 << 16


class RecursiveFrontend(Frontend):
    """H-level Recursive Path ORAM with separate trees (baseline R_X8)."""

    def __init__(
        self,
        num_blocks: int,
        data_block_bytes: int = 64,
        posmap_block_bytes: int = 32,
        blocks_per_bucket: int = 4,
        leaf_bytes: int = 4,
        onchip_entries: int = 2**16,
        rng: Optional[DeterministicRng] = None,
        observer=None,
        storage: Optional[str] = None,
    ):
        super().__init__()
        self.rng = rng if rng is not None else DeterministicRng(0)
        fanout = posmap_block_bytes // leaf_bytes
        if fanout < 2:
            raise ConfigurationError("PosMap block too small for its entries")
        self.num_levels = levels_needed(num_blocks, fanout, onchip_entries)
        self.space = AddressSpace(num_blocks, fanout, self.num_levels)
        storage_kind = storage if storage is not None else default_storage_backend()

        self.configs: List[OramConfig] = []
        self.backends: List[PathOramBackend] = []
        self._touched: List[bytearray] = []
        for level in range(self.num_levels):
            blocks = _next_pow2(self.space.level_blocks(level))
            block_bytes = data_block_bytes if level == 0 else posmap_block_bytes
            cfg = OramConfig(
                num_blocks=blocks,
                block_bytes=block_bytes,
                blocks_per_bucket=blocks_per_bucket,
                leaf_bytes=leaf_bytes,
            )
            view = observer.for_tree(level) if observer is not None else None
            tree = make_storage(storage_kind, cfg, observer=view)
            self.configs.append(cfg)
            self.backends.append(make_backend(cfg, tree, self.rng.fork(level)))
            self._touched.append(bytearray((self.space.level_blocks(level) + 7) // 8))
        # A PosMap block at level i stores leaves of tree i-1, so each
        # level's format emits labels sized for the tree *below* it.
        self.formats: List[Optional[UncompressedPosMapFormat]] = [None]
        for level in range(1, self.num_levels):
            self.formats.append(
                UncompressedPosMapFormat(
                    posmap_block_bytes, self.configs[level - 1].levels, leaf_bytes
                )
            )

        top = self.num_levels - 1
        self.posmap = OnChipPosMap(
            entries=self.space.level_blocks(top),
            levels=self.configs[top].levels,
            mode=OnChipPosMap.MODE_LEAF,
            rng=self.rng,
        )
        # Memoised address chains (pure functions of the address): the
        # replay hot path never redoes the per-level floor divisions.
        self._chain_cache: Dict[int, List[int]] = {}

    @classmethod
    def from_spec(cls, spec, rng=None, observer=None) -> "RecursiveFrontend":
        """Build from a declarative :class:`~repro.spec.SchemeSpec`.

        The spec's uniform ``block_bytes`` maps onto ``data_block_bytes``
        here; PosMap trees keep their own ``posmap_block_bytes``. PLB and
        PMMAC fields are ignored — a separate-tree Recursive ORAM supports
        neither (§4.1.2), which is the paper's motivating observation.
        """
        return cls(
            num_blocks=spec.num_blocks,
            data_block_bytes=spec.block_bytes,
            posmap_block_bytes=spec.posmap_block_bytes,
            blocks_per_bucket=spec.blocks_per_bucket,
            leaf_bytes=spec.leaf_bytes,
            onchip_entries=spec.onchip_entries,
            rng=rng,
            observer=observer,
            storage=None if spec.storage == "default" else spec.storage,
        )

    # -- first-touch bookkeeping (simulation stand-in for factory init) --------

    def _is_touched(self, level: int, index: int) -> bool:
        return bool(self._touched[level][index >> 3] & (1 << (index & 7)))

    def _mark_touched(self, level: int, index: int) -> None:
        self._touched[level][index >> 3] |= 1 << (index & 7)

    # -- batched frontend planning ----------------------------------------------

    def plan_batch(self, addrs: Sequence[int]) -> int:
        """Pre-resolve address chains for a run of upcoming accesses.

        Same contract as :meth:`PlbFrontend.plan_batch
        <repro.frontend.unified.PlbFrontend.plan_batch>`: chains are pure
        functions of the address, so planning them in one hoisted-local
        pass (repeat-address runs short-circuited) is invisible to every
        simulated outcome. Returns the number of cold addresses planned.
        """
        cache = self._chain_cache
        chain_of = self.space.chain
        planned = 0
        last = None
        for addr in addrs:
            if addr == last or addr in cache:
                last = addr
                continue
            last = addr
            if len(cache) >= CHAIN_CACHE_LIMIT:
                cache.clear()
            cache[addr] = chain_of(addr)
            planned += 1
        return planned

    # -- access -----------------------------------------------------------------

    def access(
        self, addr: int, op: Op = Op.READ, data: Optional[bytes] = None
    ) -> AccessResult:
        """Full Recursive ORAM access: on-chip, ORam_{H-1}..ORam_1, Data."""
        if op not in (Op.READ, Op.WRITE):
            raise ConfigurationError("processor requests are READ or WRITE")
        if op is Op.WRITE and (data is None or len(data) != self.configs[0].block_bytes):
            raise ValueError("WRITE requires a full block of data")
        self.stats.accesses += 1
        chain = self._chain_cache.get(addr)
        if chain is None:
            if len(self._chain_cache) >= CHAIN_CACHE_LIMIT:
                self._chain_cache.clear()
            self._chain_cache[addr] = chain = self.space.chain(addr)
        top = self.num_levels - 1

        leaf, new_leaf, _ = self.posmap.lookup_and_remap(chain[top], chain[top])

        # Walk ORam_{H-1} down to ORam_1: each supplies (and remaps) the
        # leaf of the next block down.
        for level in range(top, 0, -1):
            child_index = chain[level - 1]
            slot = self.space.child_slot(child_index)
            fmt = self.formats[level]
            backend = self.backends[level]
            child_fresh = not self._is_touched(level - 1, child_index)
            holder = {}

            def update(block, fmt=fmt, slot=slot, holder=holder) -> None:
                buf = bytearray(block.data)
                holder["remap"] = fmt.remap(buf, slot, 0, self.rng)
                block.data = bytes(buf)

            backend.access(Op.READ, chain[level], leaf, new_leaf, update=update)
            self.stats.posmap_tree_accesses += 1
            remap = holder["remap"]
            if child_fresh:
                # Never-written entry: substitute the uniform label factory
                # initialisation would have placed there.
                leaf = self.rng.random_leaf(self.configs[level - 1].levels)
                self._mark_touched(level - 1, child_index)
            else:
                leaf = remap.old_leaf
            new_leaf = remap.new_leaf

        # Data ORAM access.
        self.stats.data_tree_accesses += 1

        def data_update(block) -> None:
            if op is Op.WRITE:
                block.data = data

        block = self.backends[0].access(op, addr, leaf, new_leaf, update=data_update)
        return AccessResult(
            data=block.data,
            tree_accesses=self.num_levels,
            posmap_tree_accesses=self.num_levels - 1,
        )

    # -- bandwidth attribution -----------------------------------------------------

    @property
    def data_bytes_moved(self) -> int:
        """Bytes moved by the Data ORAM tree."""
        return self.backends[0].storage.bytes_moved

    @property
    def posmap_bytes_moved(self) -> int:
        """Bytes moved by all PosMap ORAM trees combined."""
        return sum(b.storage.bytes_moved for b in self.backends[1:])

    @property
    def onchip_posmap_bytes(self) -> int:
        """SRAM footprint of the on-chip PosMap."""
        return self.posmap.size_bytes
