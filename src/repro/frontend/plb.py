"""The PosMap Lookaside Buffer (§4.2.3).

A conventional hardware cache holding entire PosMap blocks (unlike a TLB's
single translations — §4.1.4). Each resident block is stored with its
tagged address i||a_i, its *current* leaf in the Unified tree (needed for
the later append), and — under PMMAC — its current counter (needed to MAC
the block on eviction).

The default geometry is direct-mapped, which the paper adopts after
finding full associativity buys <= 10% (§7.1.3); ``ways`` > 1 gives a
set-associative LRU variant for the design-space experiments.

Implementation note: the PLB lookup loop runs once per recursion level per
processor request, making it one of the replay engine's hottest paths. A
flat dict keyed by tagged address backs every lookup in O(1); the per-set
lists exist only to model the geometry — victim selection, way conflicts
and LRU ordering are decided there, so hit/miss/eviction sequences are
identical to a straight set-scan implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(slots=True)
class PlbEntry:
    """One PosMap block resident in the PLB."""

    tagged_addr: int
    data: bytearray
    leaf: int
    counter: int = 0
    #: LRU timestamp within a set.
    last_use: int = 0


class Plb:
    """Set-associative (default direct-mapped) cache of PosMap blocks."""

    def __init__(self, capacity_bytes: int, block_bytes: int, ways: int = 1):
        if capacity_bytes < block_bytes:
            raise ConfigurationError("PLB smaller than one PosMap block")
        if ways < 1:
            raise ConfigurationError("ways must be >= 1")
        total = capacity_bytes // block_bytes
        if total % ways:
            total -= total % ways
        if total < ways:
            raise ConfigurationError("capacity too small for associativity")
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.ways = ways
        self.num_sets = total // ways
        self._sets: List[List[PlbEntry]] = [[] for _ in range(self.num_sets)]
        #: Tag index over all resident entries; the hot-path lookup never
        #: touches the set lists.
        self._index: Dict[int, PlbEntry] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _set_index(self, tagged_addr: int) -> int:
        # Direct-mapped index over the block index bits; the recursion level
        # is folded in with a small odd multiplier so different levels do
        # not systematically collide (hardware would concatenate tag bits).
        level = tagged_addr >> 48
        index = tagged_addr & ((1 << 48) - 1)
        return (index + level * 7919) % self.num_sets

    def lookup(self, tagged_addr: int) -> Optional[PlbEntry]:
        """Return the resident entry for i||a_i, updating LRU state."""
        self._clock += 1
        entry = self._index.get(tagged_addr)
        if entry is not None:
            entry.last_use = self._clock
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def contains(self, tagged_addr: int) -> bool:
        """Membership test without touching hit/miss counters."""
        return tagged_addr in self._index

    def peek(self, tagged_addr: int) -> Optional[PlbEntry]:
        """Entry lookup without LRU/statistics side effects."""
        return self._index.get(tagged_addr)

    def insert(self, entry: PlbEntry) -> Optional[PlbEntry]:
        """Insert a refilled block; returns the evicted victim, if any."""
        self._clock += 1
        entry.last_use = self._clock
        if entry.tagged_addr in self._index:
            raise ValueError("block already resident in PLB")
        bucket = self._sets[self._set_index(entry.tagged_addr)]
        if len(bucket) < self.ways:
            bucket.append(entry)
            self._index[entry.tagged_addr] = entry
            return None
        victim_pos = min(range(len(bucket)), key=lambda i: bucket[i].last_use)
        victim = bucket[victim_pos]
        bucket[victim_pos] = entry
        del self._index[victim.tagged_addr]
        self._index[entry.tagged_addr] = entry
        return victim

    def invalidate(self, tagged_addr: int) -> Optional[PlbEntry]:
        """Remove and return an entry (used by flush-style tests)."""
        entry = self._index.pop(tagged_addr, None)
        if entry is None:
            return None
        bucket = self._sets[self._set_index(tagged_addr)]
        bucket.remove(entry)
        return entry

    def entries(self) -> List[PlbEntry]:
        """All resident entries (set order, insertion order within a set)."""
        return [e for bucket in self._sets for e in bucket]

    @property
    def hit_rate(self) -> float:
        """Hits / lookups so far (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero hit/miss statistics (contents retained)."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._index)
