"""§5.4 sub-block construction: the asymptotically optimal variant.

When the data block size B exceeds the optimal PosMap block size
Bp = Θ(log N), §5.4 splits each data block into ceil(B/Bp) sub-blocks
stored as *independent* blocks of the Unified tree. All sub-blocks of a
logical block share a single compressed individual counter; the leaf of
sub-block k is PRF_K(GC || IC_j || a+j || k) mod 2^L — the sub-block
index enters the PRF, so each piece lives on its own uniform path.

A full access is then H Backend accesses for the PosMap chain plus
ceil(B/Bp) Backend accesses for the sub-blocks, which is what yields the
O(log N + log^3 N / (B log log N)) overhead — the best known Position-
based ORAM for intermediate block sizes (§5.4). The analysis assumes no
PLB (locality is workload-dependent), so this frontend walks the
recursion on every access, mirroring the analysed construction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.errors import ConfigurationError
from repro.frontend.addrgen import AddressSpace, levels_needed
from repro.frontend.base import AccessResult, Frontend
from repro.frontend.formats import CompressedPosMapFormat
from repro.frontend.posmap import OnChipPosMap
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng

#: Tag level used for sub-block (data) addresses; PosMap levels are 1..H-1
#: on their own tags, so level 0 carries logical_index * s + k.
_DATA_LEVEL = 0


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


class SubBlockFrontend(Frontend):
    """Compressed-PosMap ORAM with §5.4 sub-block splitting (no PLB)."""

    def __init__(
        self,
        num_blocks: int,
        data_block_bytes: int = 512,
        posmap_block_bytes: int = 64,
        blocks_per_bucket: int = 4,
        onchip_entries: int = 1024,
        alpha_bits: int = 64,
        beta_bits: int = 14,
        crypto: Optional[CryptoSuite] = None,
        rng: Optional[DeterministicRng] = None,
        observer=None,
    ):
        super().__init__()
        if data_block_bytes % posmap_block_bytes:
            raise ConfigurationError("B must be a multiple of Bp for splitting")
        self.rng = rng if rng is not None else DeterministicRng(0)
        self.crypto = crypto if crypto is not None else CryptoSuite.fast()
        self.num_blocks = num_blocks
        self.data_block_bytes = data_block_bytes
        self.sub_blocks = data_block_bytes // posmap_block_bytes

        # Plan the recursion over *logical* blocks with the compressed
        # fan-out; the tree itself stores Bp-sized blocks.
        fanout = CompressedPosMapFormat(
            posmap_block_bytes, levels=1, prf=self.crypto.prf,
            alpha_bits=alpha_bits, beta_bits=beta_bits,
        ).fanout
        self.num_levels = levels_needed(num_blocks, fanout, onchip_entries)
        self.space = AddressSpace(num_blocks, fanout, self.num_levels)
        total = self.space.total_blocks() - num_blocks  # PosMap blocks
        total += num_blocks * self.sub_blocks  # data sub-blocks
        self.config = OramConfig(
            num_blocks=_next_pow2(total),
            block_bytes=posmap_block_bytes,
            blocks_per_bucket=blocks_per_bucket,
        )
        self.format = CompressedPosMapFormat(
            posmap_block_bytes,
            self.config.levels,
            self.crypto.prf,
            alpha_bits=alpha_bits,
            beta_bits=beta_bits,
            fanout=fanout,
        )
        view = observer.for_tree(0) if observer is not None else None
        storage = TreeStorage(self.config, observer=view)
        self.backend = PathOramBackend(self.config, storage, self.rng.fork(0x5B))
        top = self.num_levels - 1
        self.posmap = OnChipPosMap(
            entries=self.space.level_blocks(top),
            levels=self.config.levels,
            mode=OnChipPosMap.MODE_COUNTER,
            prf=self.crypto.prf,
        )

    # -- sub-block leaf derivation -------------------------------------------------

    def _sub_leaf(self, logical: int, counter: int, k: int) -> int:
        """Leaf of sub-block k: PRF(GC||IC||a||k) per §5.4."""
        return self.crypto.prf.leaf_for(
            logical, counter, self.config.levels, subblock=k
        )

    def _sub_tag(self, logical: int, k: int) -> int:
        """Unified-tree address of sub-block k of a logical block."""
        return self.space.tag(_DATA_LEVEL, logical * self.sub_blocks + k)

    # -- access ------------------------------------------------------------------------

    def access(
        self, addr: int, op: Op = Op.READ, data: Optional[bytes] = None
    ) -> AccessResult:
        """H PosMap Backend accesses, then ceil(B/Bp) sub-block accesses."""
        if op not in (Op.READ, Op.WRITE):
            raise ConfigurationError("processor requests are READ or WRITE")
        if op is Op.WRITE and (data is None or len(data) != self.data_block_bytes):
            raise ValueError("WRITE requires a full logical block of data")
        self.stats.accesses += 1
        chain = self.space.chain(addr)
        top = self.num_levels - 1

        # On-chip: counter of the top PosMap block.
        leaf, new_leaf, _ = self.posmap.lookup_and_remap(
            chain[top], self.space.tag(top, chain[top])
        )

        # Walk PosMap blocks top-down; the final remap yields the logical
        # block's shared counter transition.
        old_counter = new_counter = 0
        for level in range(top, 0, -1):
            slot = self.space.child_slot(chain[level - 1])
            child_tag = self.space.tag(level - 1, chain[level - 1])
            holder = {}

            def update(block, slot=slot, child_tag=child_tag, holder=holder):
                buf = bytearray(block.data)
                holder["remap"] = self.format.remap(buf, slot, child_tag, self.rng)
                block.data = bytes(buf)

            self.backend.access(
                Op.READ, self.space.tag(level, chain[level]), leaf, new_leaf,
                update=update,
            )
            self.stats.posmap_tree_accesses += 1
            remap = holder["remap"]
            if remap.group_remap_slots:
                self._group_remap(level - 1, chain[level - 1], remap)
            leaf, new_leaf = remap.old_leaf, remap.new_leaf
            old_counter, new_counter = remap.old_counter, remap.new_counter

        # Sub-block accesses: every piece moves to its new PRF path.
        pieces: List[bytes] = []
        bp = self.config.block_bytes
        for k in range(self.sub_blocks):
            sub_leaf = self._sub_leaf(addr, old_counter, k)
            sub_new = self._sub_leaf(addr, new_counter, k)

            def update(block, k=k):
                if op is Op.WRITE:
                    block.data = data[k * bp : (k + 1) * bp]

            block = self.backend.access(
                op, self._sub_tag(addr, k), sub_leaf, sub_new, update=update
            )
            self.stats.data_tree_accesses += 1
            pieces.append(block.data)

        return AccessResult(
            data=b"".join(pieces),
            tree_accesses=(self.num_levels - 1) + self.sub_blocks,
            posmap_tree_accesses=self.num_levels - 1,
        )

    def _group_remap(self, level: int, child_index: int, result) -> None:
        """Relocate siblings after an IC rollover.

        Level-0 siblings are *logical* blocks: all their sub-blocks move.
        Higher-level siblings are single PosMap blocks.
        """
        self.stats.group_remaps += 1
        group_base = child_index - (child_index % self.space.fanout)
        level_size = self.space.level_blocks(level)
        for slot, old_counter in result.group_remap_slots:
            sibling = group_base + slot
            if sibling >= level_size:
                continue
            if level == _DATA_LEVEL:
                for k in range(self.sub_blocks):
                    self._relocate(
                        self._sub_tag(sibling, k),
                        self._sub_leaf(sibling, old_counter, k),
                        self._sub_leaf(sibling, result.new_counter, k),
                    )
            else:
                tag = self.space.tag(level, sibling)
                self._relocate(
                    tag,
                    self.format.leaf_for_counter(tag, old_counter),
                    self.format.leaf_for_counter(tag, result.new_counter),
                )

    def _relocate(self, tag: int, old_leaf: int, new_leaf: int) -> None:
        block = self.backend.access(Op.READRMV, tag, old_leaf, new_leaf)
        self.stats.posmap_tree_accesses += 1
        self.stats.group_relocations += 1
        self.backend.access(Op.APPEND, tag, append_block=block)

    # -- bandwidth attribution -------------------------------------------------------------

    @property
    def data_bytes_moved(self) -> int:
        """Sub-block traffic."""
        return self.stats.data_tree_accesses * 2 * self.config.path_bytes

    @property
    def posmap_bytes_moved(self) -> int:
        """PosMap chain traffic."""
        return self.stats.posmap_tree_accesses * 2 * self.config.path_bytes

    @property
    def onchip_posmap_bytes(self) -> int:
        """SRAM footprint of the on-chip counters."""
        return self.posmap.size_bytes
