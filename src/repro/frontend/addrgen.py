"""Address generation for the recursive PosMap hierarchy (AddrGen, Fig. 4).

For a data block address ``a0``, the PosMap block needed from recursion
level ``i`` has index ``a_i = a0 / X^i`` (floored), and is disambiguated
from same-index blocks of other levels by the tag ``i || a_i`` (§4.1.1).
:class:`AddressSpace` centralises that arithmetic and the tagged encoding
used as the Backend-visible block address in the Unified tree.
"""

from __future__ import annotations

from typing import List, Tuple

#: Bit position of the recursion-level tag within a tagged address.
LEVEL_SHIFT = 48
_INDEX_MASK = (1 << LEVEL_SHIFT) - 1


class AddressSpace:
    """Tagged address arithmetic for an H-level recursive PosMap."""

    def __init__(self, num_blocks: int, fanout: int, num_levels: int):
        if fanout < 2:
            raise ValueError("PosMap fan-out X must be at least 2")
        if num_levels < 1:
            raise ValueError("need at least the data level")
        self.num_blocks = num_blocks
        self.fanout = fanout
        self.num_levels = num_levels  # H: data level 0 plus H-1 PosMap levels

    def level_blocks(self, level: int) -> int:
        """Number of blocks at recursion level ``level`` (ceil division)."""
        n = self.num_blocks
        for _ in range(level):
            n = -(-n // self.fanout)
        return n

    def total_blocks(self) -> int:
        """Blocks across all levels stored in the Unified tree."""
        return sum(self.level_blocks(i) for i in range(self.num_levels))

    def chain(self, a0: int) -> List[int]:
        """Indices [a_0, a_1, ..., a_{H-1}] for a data address."""
        if not 0 <= a0 < self.num_blocks:
            raise ValueError(f"address {a0} out of range")
        out = [a0]
        for _ in range(self.num_levels - 1):
            out.append(out[-1] // self.fanout)
        return out

    def child_slot(self, child_index: int) -> int:
        """Position of a child's entry within its parent PosMap block."""
        return child_index % self.fanout

    @staticmethod
    def tag(level: int, index: int) -> int:
        """Backend-visible tagged address i || a_i."""
        if index >= (1 << LEVEL_SHIFT):
            raise ValueError("block index too large for tagging")
        return (level << LEVEL_SHIFT) | index

    @staticmethod
    def untag(tagged: int) -> Tuple[int, int]:
        """Inverse of :meth:`tag`: (level, index)."""
        return tagged >> LEVEL_SHIFT, tagged & _INDEX_MASK


def levels_needed(num_blocks: int, fanout: int, onchip_entries: int) -> int:
    """Smallest H with N / X^(H-1) <= on-chip PosMap entry budget.

    H counts the data level plus all PosMap levels, matching the paper's
    ``H = log(N/p)/log(X) + 1`` (§3.2).
    """
    if onchip_entries < 1:
        raise ValueError("on-chip PosMap needs at least one entry")
    h = 1
    n = num_blocks
    while n > onchip_entries:
        n = -(-n // fanout)
        h += 1
    return h
