"""ORAM Frontends — the paper's contribution (§4, §5, §6).

A Frontend translates a processor block address into Backend operations:

- :class:`~repro.frontend.linear.LinearFrontend` — whole PosMap on-chip
  (Phantom-style [21] baseline; no recursion).
- :class:`~repro.frontend.recursive.RecursiveFrontend` — classic Recursive
  ORAM [30]/[26] with one physical tree per recursion level (the R_X8
  baseline).
- :class:`~repro.frontend.unified.PlbFrontend` — the paper's design: PLB +
  Unified ORAM tree (§4), pluggable PosMap block format (uncompressed,
  flat-counter, compressed §5), and optional PMMAC integrity (§6).

All share :class:`~repro.frontend.base.Frontend`'s ``access`` interface and
statistics, and drive an unmodified :class:`~repro.backend.PathOramBackend`.
"""

from repro.frontend.addrgen import AddressSpace
from repro.frontend.base import Frontend, FrontendStats
from repro.frontend.formats import (
    CompressedPosMapFormat,
    FlatCounterPosMapFormat,
    UncompressedPosMapFormat,
)
from repro.frontend.linear import LinearFrontend
from repro.frontend.plb import Plb, PlbEntry
from repro.frontend.posmap import OnChipPosMap
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.subblock import SubBlockFrontend
from repro.frontend.unified import PlbFrontend

__all__ = [
    "AddressSpace",
    "Frontend",
    "FrontendStats",
    "UncompressedPosMapFormat",
    "FlatCounterPosMapFormat",
    "CompressedPosMapFormat",
    "LinearFrontend",
    "Plb",
    "PlbEntry",
    "OnChipPosMap",
    "RecursiveFrontend",
    "SubBlockFrontend",
    "PlbFrontend",
]
