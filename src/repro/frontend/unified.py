"""PLB-enabled Frontend over a Unified ORAM tree (§4), with optional
compressed PosMap (§5) and PMMAC integrity verification (§6).

All recursion levels — data blocks and every PosMap level — live in one
physical tree ``ORamU``, addressed with i||a_i tags (§4.2.1). The access
algorithm is §4.2.4:

1. *PLB lookup loop*: find the smallest i such that the PosMap block
   a_{i+1} (which holds the leaf of a_i) is PLB-resident; fall back to the
   on-chip PosMap at i = H-1.
2. *PosMap block accesses*: readrmv each missing PosMap block from ORamU
   and refill it into the PLB, appending any PLB victim back to the stash.
3. *Data block access*: an ordinary read/write to ORamU.

PMMAC (§6.2): every block is stored with h = MAC_K(c || a || d) where the
count c comes from the block's parent PosMap entry (flat or compressed
counters) — tamper-proof recursively up to the on-chip PosMap. Only the
block of interest is ever hashed, the source of the >= 68x hash-bandwidth
advantage over Merkle schemes (§6.3).

The Backend is driven through its four public ops only; no Backend changes
are required for any of the three mechanisms — the paper's composability
claim, which the test suite checks by running every scheme against the
same Backend implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.ops import Op
from repro.backend.path_oram import make_backend
from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.errors import ConfigurationError, IntegrityViolationError
from repro.frontend.addrgen import AddressSpace, levels_needed
from repro.frontend.base import AccessResult, Frontend
from repro.frontend.formats import (
    CompressedPosMapFormat,
    FlatCounterPosMapFormat,
    UncompressedPosMapFormat,
)
from repro.frontend.plb import Plb, PlbEntry
from repro.frontend.posmap import OnChipPosMap
from repro.storage.block import Block
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


def _next_pow2(n: int) -> int:
    return 1 << max(n - 1, 1).bit_length() if n > 1 else 1


#: Per-frontend cap on memoised (chain, tags) entries. Replay working sets
#: fit comfortably; on paper-scale sweeps the cache cycles instead of
#: growing with every distinct address ever touched.
CHAIN_CACHE_LIMIT = 1 << 16


class PlbFrontend(Frontend):
    """The paper's Frontend: PLB + Unified tree (+ compression / PMMAC)."""

    def __init__(
        self,
        num_blocks: int,
        block_bytes: int = 64,
        blocks_per_bucket: int = 4,
        plb_capacity_bytes: int = 8 * 1024,
        plb_ways: int = 1,
        onchip_entries: int = 1024,
        posmap_format: str = "uncompressed",
        pmmac: bool = False,
        mac_tag_bytes: int = 14,
        compressed_alpha: int = 64,
        compressed_beta: int = 14,
        compressed_fanout: Optional[int] = None,
        leaf_bytes: int = 4,
        crypto: Optional[CryptoSuite] = None,
        rng: Optional[DeterministicRng] = None,
        observer=None,
        storage_factory=None,
    ):
        super().__init__()
        self.rng = rng if rng is not None else DeterministicRng(0)
        self.crypto = crypto if crypto is not None else CryptoSuite.fast()
        self.pmmac = pmmac
        self.num_blocks = num_blocks

        # The Unified tree must hold data blocks plus every PosMap level;
        # with X >= 2 this at most doubles the block count, i.e. adds at
        # most one tree level (§4.2.1). Geometry is solved iteratively
        # because the format's fan-out is independent of tree depth here
        # (leaf labels are 4 bytes / PRF-derived for any supported depth).
        self._compressed_fanout = compressed_fanout
        fanout = self._format_fanout(
            posmap_format, block_bytes, leaf_bytes, compressed_alpha,
            compressed_beta, compressed_fanout,
        )
        self.space_levels = levels_needed(num_blocks, fanout, onchip_entries)
        self.space = AddressSpace(num_blocks, fanout, self.space_levels)
        total_blocks = _next_pow2(self.space.total_blocks())
        self.config = OramConfig(
            num_blocks=total_blocks,
            block_bytes=block_bytes,
            blocks_per_bucket=blocks_per_bucket,
            leaf_bytes=leaf_bytes,
            mac_bytes=mac_tag_bytes if pmmac else 0,
        )

        self.format = self._build_format(
            posmap_format, block_bytes, leaf_bytes, compressed_alpha, compressed_beta
        )
        if self.format.fanout != fanout:
            raise ConfigurationError("fan-out mismatch between planning and format")

        if storage_factory is None:
            view = observer.for_tree(0) if observer is not None else None
            storage = TreeStorage(self.config, observer=view)
        else:
            storage = storage_factory(self.config, observer)
        self.backend = make_backend(self.config, storage, self.rng.fork(0xBACC))

        top = self.space_levels - 1
        self.posmap = OnChipPosMap(
            entries=self.space.level_blocks(top),
            levels=self.config.levels,
            mode=OnChipPosMap.MODE_COUNTER if pmmac else OnChipPosMap.MODE_LEAF,
            rng=self.rng,
            prf=self.crypto.prf,
        )
        self.plb = Plb(plb_capacity_bytes, block_bytes, ways=plb_ways)
        # Memoised tag-chain arithmetic: addr -> (chain, tags). The chain
        # and every level's i||a_i tag are pure functions of the address,
        # so the PLB lookup loop does no redundant tag arithmetic on the
        # replay hot path.
        self._chain_cache: Dict[int, Tuple[List[int], Tuple[int, ...]]] = {}
        # First-touch bitmap per level for leaf-mode entries (see
        # OnChipPosMap docstring); counter formats need none — zero
        # counters reproduce factory state exactly.
        self._touched: List[Optional[bytearray]] = [None] * self.space_levels
        if not self.format.uses_counters:
            for level in range(self.space_levels - 1):
                size = (self.space.level_blocks(level) + 7) // 8
                self._touched[level] = bytearray(size)

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def from_spec(cls, spec, rng=None, observer=None, crypto=None) -> "PlbFrontend":
        """Build from a declarative :class:`~repro.spec.SchemeSpec`.

        ``rng``/``observer``/``crypto`` are build-time objects, not part of
        the serializable spec; ``crypto=None`` keeps the frontend default
        (the ``fast`` suite). The spec's ``storage`` kind resolves through
        :func:`~repro.storage.array_tree.storage_factory_for`, so builds
        are bit-identical to the historical preset factories.
        """
        from repro.storage.array_tree import storage_factory_for

        return cls(
            num_blocks=spec.num_blocks,
            block_bytes=spec.block_bytes,
            blocks_per_bucket=spec.blocks_per_bucket,
            plb_capacity_bytes=spec.plb_capacity_bytes,
            plb_ways=spec.plb_ways,
            onchip_entries=spec.onchip_entries,
            posmap_format=spec.posmap_format,
            pmmac=spec.pmmac,
            mac_tag_bytes=spec.mac_tag_bytes,
            compressed_alpha=spec.compressed_alpha,
            compressed_beta=spec.compressed_beta,
            compressed_fanout=spec.compressed_fanout,
            leaf_bytes=spec.leaf_bytes,
            crypto=crypto,
            rng=rng,
            observer=observer,
            storage_factory=storage_factory_for(spec.storage),
        )

    @staticmethod
    def _format_fanout(
        kind: str,
        block_bytes: int,
        leaf_bytes: int,
        alpha: int,
        beta: int,
        compressed_fanout: Optional[int] = None,
    ) -> int:
        if kind == "uncompressed":
            return block_bytes // leaf_bytes
        if kind == "flat":
            return block_bytes // 8
        if kind == "compressed":
            if compressed_fanout is not None:
                return compressed_fanout
            max_fanout = (8 * block_bytes - alpha) // beta
            return 1 << (max_fanout.bit_length() - 1) if max_fanout >= 1 else 0
        raise ConfigurationError(f"unknown PosMap format {kind!r}")

    def _build_format(
        self, kind: str, block_bytes: int, leaf_bytes: int, alpha: int, beta: int
    ):
        levels = self.config.levels
        if kind == "uncompressed":
            return UncompressedPosMapFormat(block_bytes, levels, leaf_bytes)
        if kind == "flat":
            return FlatCounterPosMapFormat(block_bytes, levels, self.crypto.prf)
        return CompressedPosMapFormat(
            block_bytes,
            levels,
            self.crypto.prf,
            alpha_bits=alpha,
            beta_bits=beta,
            fanout=self._compressed_fanout,
        )

    # -- batched frontend planning -----------------------------------------------

    def plan_batch(self, addrs: Sequence[int]) -> int:
        """Pre-resolve (chain, tags) for a run of upcoming accesses.

        The chain and per-level i||a_i tags are pure functions of the
        address, so a whole batch of future misses can be planned in one
        pass — every ``space.chain``/``space.tag`` attribute resolution is
        hoisted out of the loop, repeat-address runs are short-circuited,
        and already-planned addresses cost one dict probe. ``access``
        then finds every address hot in the chain cache. The cache bound
        (and its clear-at-limit policy) is exactly the scalar path's, and
        the planned entries are bit-for-bit what ``access`` would compute,
        so planning is invisible to every simulated outcome.

        Returns the number of addresses actually planned (cold entries).
        """
        cache = self._chain_cache
        chain_of = self.space.chain
        tag = self.space.tag
        level_range = tuple(range(self.space_levels))
        planned = 0
        last = None
        for addr in addrs:
            if addr == last or addr in cache:
                last = addr
                continue
            last = addr
            if len(cache) >= CHAIN_CACHE_LIMIT:
                cache.clear()
            chain = chain_of(addr)
            cache[addr] = (chain, tuple(tag(i, chain[i]) for i in level_range))
            planned += 1
        return planned

    # -- PMMAC helpers ---------------------------------------------------------------

    def _verify(self, block: Block, tagged_addr: int, counter: int) -> None:
        """Check h == MAC_K(c || a || d) for the block of interest (§6.2.1)."""
        if not self.pmmac:
            return
        if block.mac is None:
            # Never-written block materialised as zeroes by the Backend.
            # Legitimate only while its counter has never been advanced:
            # once c > 0 the block must exist in the tree with a MAC, so a
            # missing block means deletion or replay (freshness violation).
            if counter != 0:
                raise IntegrityViolationError(
                    f"block {tagged_addr:#x} lost: counter {counter} but no MAC"
                )
            self.stats.fresh_blocks += 1
            return
        self.stats.mac_checks += 1
        if not self.crypto.mac.verify(
            counter.to_bytes(12, "little")
            + tagged_addr.to_bytes(8, "little")
            + block.data,
            block.mac,
        ):
            raise IntegrityViolationError(
                f"MAC mismatch for block {tagged_addr:#x} at count {counter}"
            )

    def _seal(self, tagged_addr: int, counter: int, data: bytes) -> Optional[bytes]:
        """Produce the stored tag for a block about to re-enter the tree."""
        if not self.pmmac:
            return None
        return self.crypto.mac.block_tag(counter, tagged_addr, data)

    # -- first-touch bookkeeping -------------------------------------------------------

    def _fresh_leaf_override(self, level: int, index: int) -> Optional[int]:
        """Uniform label for a never-touched leaf-mode entry, else None."""
        bitmap = self._touched[level]
        if bitmap is None:
            return None
        if bitmap[index >> 3] & (1 << (index & 7)):
            return None
        bitmap[index >> 3] |= 1 << (index & 7)
        return self.rng.random_leaf(self.config.levels)

    # -- child remap through a parent entry ----------------------------------------------

    def _remap_child(
        self,
        parent: Optional[PlbEntry],
        level: int,
        chain: Sequence[int],
        tagged: int,
    ) -> Tuple[int, int, int, int]:
        """Remap the entry for block (level, chain[level]) in its parent.

        Returns (current_leaf, new_leaf, old_counter, new_counter). The
        parent is a PLB entry, or None for the on-chip PosMap (top level
        only); ``tagged`` is the precomputed i||a_i tag of the child.
        Handles compressed-format group remaps inline.
        """
        index = chain[level]
        if parent is None:
            if level != self.space_levels - 1:
                raise ConfigurationError("only the top level resolves on-chip")
            leaf, new_leaf, new_counter = self.posmap.lookup_and_remap(index, tagged)
            return leaf, new_leaf, max(new_counter - 1, 0), new_counter

        slot = self.space.child_slot(index)
        result = self.format.remap(parent.data, slot, tagged, self.rng)
        if result.group_remap_slots:
            self._group_remap(parent, level, index, slot, result)
        override = self._fresh_leaf_override(level, index)
        current = override if override is not None else result.old_leaf
        return current, result.new_leaf, result.old_counter, result.new_counter

    def _group_remap(
        self,
        parent: PlbEntry,
        level: int,
        child_index: int,
        child_slot: int,
        result,
    ) -> None:
        """Relocate every sibling after an IC rollover (§5.2.2).

        Thanks to the Unified tree this costs one readrmv+append per
        sibling instead of X full recursive accesses — the §5.2.2 argument
        for why compression requires the unified organisation.
        """
        self.stats.group_remaps += 1
        group_base = child_index - child_slot
        level_size = self.space.level_blocks(level)
        for slot, old_counter in result.group_remap_slots:
            sibling = group_base + slot
            if sibling >= level_size:
                continue
            tagged = self.space.tag(level, sibling)
            new_leaf = self.format.leaf_for_counter(tagged, result.new_counter)
            resident = self.plb.peek(tagged)
            if resident is not None:
                # The sibling lives on-chip: update its bookkeeping only.
                resident.leaf = new_leaf
                resident.counter = result.new_counter
                continue
            old_leaf = self.format.leaf_for_counter(tagged, old_counter)
            block = self.backend.access(Op.READRMV, tagged, old_leaf, new_leaf)
            self.stats.posmap_tree_accesses += 1
            self.stats.group_relocations += 1
            self._verify(block, tagged, old_counter)
            block.mac = self._seal(tagged, result.new_counter, block.data)
            self.backend.access(Op.APPEND, tagged, append_block=block)

    # -- PLB refill / eviction ----------------------------------------------------------

    def _refill_plb(
        self, tagged: int, leaf: int, new_leaf: int,
        old_counter: int, new_counter: int,
    ) -> PlbEntry:
        """readrmv the PosMap block ``tagged`` and install it in the PLB."""
        block = self.backend.access(Op.READRMV, tagged, leaf, new_leaf)
        self.stats.posmap_tree_accesses += 1
        self.stats.plb_refills += 1
        self._verify(block, tagged, old_counter)
        entry = PlbEntry(
            tagged_addr=tagged,
            data=bytearray(block.data),
            leaf=new_leaf,
            counter=new_counter,
        )
        victim = self.plb.insert(entry)
        if victim is not None:
            self._evict_plb_entry(victim)
        return entry

    def _evict_plb_entry(self, victim: PlbEntry) -> None:
        """Append a PLB victim back into the stash with a fresh MAC."""
        self.stats.plb_evictions += 1
        data = bytes(victim.data)
        block = Block(
            addr=victim.tagged_addr,
            leaf=victim.leaf,
            data=data,
            mac=self._seal(victim.tagged_addr, victim.counter, data),
        )
        self.backend.access(Op.APPEND, victim.tagged_addr, append_block=block)

    # -- the access algorithm (§4.2.4) -----------------------------------------------------

    def access(
        self, addr: int, op: Op = Op.READ, data: Optional[bytes] = None
    ) -> AccessResult:
        """One processor request: PLB loop, PosMap refills, data access."""
        if op not in (Op.READ, Op.WRITE):
            raise ConfigurationError("processor requests are READ or WRITE")
        if op is Op.WRITE and (data is None or len(data) != self.config.block_bytes):
            raise ValueError("WRITE requires a full block of data")
        stats = self.stats
        stats.accesses += 1
        start_posmap = stats.posmap_tree_accesses
        levels = self.space_levels
        cached = self._chain_cache.get(addr)
        if cached is None:
            chain = self.space.chain(addr)
            tag = self.space.tag
            tags = tuple(tag(i, chain[i]) for i in range(levels))
            if len(self._chain_cache) >= CHAIN_CACHE_LIMIT:
                self._chain_cache.clear()
            self._chain_cache[addr] = cached = (chain, tags)
        chain, tags = cached

        # Step 1: PLB lookup loop.
        parent: Optional[PlbEntry] = None
        hit_level = levels - 1
        plb_lookup = self.plb.lookup
        for i in range(levels - 1):
            entry = plb_lookup(tags[i + 1])
            if entry is not None:
                parent = entry
                hit_level = i
                break
        if levels > 1:
            # With a single recursion level no PLB lookup occurs, so the
            # access counts toward neither hits nor misses (the hit rate
            # is a property of actual lookups only).
            if hit_level == 0:
                stats.plb_hits += 1
            else:
                stats.plb_misses += 1

        # Step 2: fetch missing PosMap blocks, deepest level first.
        for level in range(hit_level, 0, -1):
            leaf, new_leaf, old_c, new_c = self._remap_child(
                parent, level, chain, tags[level]
            )
            parent = self._refill_plb(tags[level], leaf, new_leaf, old_c, new_c)

        # Step 3: data block access.
        leaf, new_leaf, old_c, new_c = self._remap_child(parent, 0, chain, tags[0])
        if self.pmmac or op is Op.WRITE:
            frontend = self

            def update(block) -> None:
                frontend._verify(block, addr, old_c)
                if op is Op.WRITE:
                    block.data = data
                block.mac = frontend._seal(addr, new_c, block.data)

            result_block = self.backend.access(
                op, addr, leaf, new_leaf, update=update
            )
        else:
            # Non-PMMAC READ: nothing to verify, overwrite or seal.
            result_block = self.backend.access(op, addr, leaf, new_leaf)
        stats.data_tree_accesses += 1
        posmap_accesses = stats.posmap_tree_accesses - start_posmap
        return AccessResult(
            data=result_block.data if op is Op.READ else (data or b""),
            tree_accesses=posmap_accesses + 1,
            posmap_tree_accesses=posmap_accesses,
            plb_hit_level=hit_level,
        )

    # -- bandwidth attribution ---------------------------------------------------------------

    @property
    def data_bytes_moved(self) -> int:
        """Unified-tree traffic attributable to data block accesses."""
        per_access = 2 * self.config.path_bytes
        return self.stats.data_tree_accesses * per_access

    @property
    def posmap_bytes_moved(self) -> int:
        """Unified-tree traffic attributable to PosMap management."""
        per_access = 2 * self.config.path_bytes
        return self.stats.posmap_tree_accesses * per_access

    @property
    def onchip_posmap_bytes(self) -> int:
        """SRAM footprint of the on-chip PosMap."""
        return self.posmap.size_bytes

    @property
    def plb_capacity_bytes(self) -> int:
        """Configured PLB data capacity."""
        return self.plb.capacity_bytes
