"""Table 2: ORAM tree latency by DRAM channel count.

Parameters from Table 1: 4 GB Data ORAM (N = 2^26), 64-byte blocks, Z=4,
1.3 GHz core, DDR3-1333 channels. The paper measures 2147 / 1208 / 697 /
463 processor cycles at 1 / 2 / 4 / 8 channels, and 58 cycles for an
insecure DRAM access.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import OramConfig
from repro.dram.config import DramConfig
from repro.dram.model import DramModel
from repro.eval.table_cache import cached_figure_table

#: Paper-reported cycles per channel count.
PAPER_LATENCY = {1: 2147, 2: 1208, 4: 697, 8: 463}
PAPER_INSECURE = 58


def run(
    num_blocks: int = 2**26,
    block_bytes: int = 64,
    blocks_per_bucket: int = 4,
    proc_ghz: float = 1.3,
    channel_counts: Tuple[int, ...] = (1, 2, 4, 8),
) -> Dict[int, float]:
    """ORAM tree latency (processor cycles) per channel count.

    Purely analytic, so the memoised table (:mod:`repro.eval.table_cache`)
    is keyed by the closed-form model's parameters rather than simulation
    cell digests; ``REPRO_FORCE=1`` refreshes it.
    """
    cfg = OramConfig(
        num_blocks=num_blocks,
        block_bytes=block_bytes,
        blocks_per_bucket=blocks_per_bucket,
    )

    def build() -> Dict[int, float]:
        out: Dict[int, float] = {}
        for channels in channel_counts:
            model = DramModel(
                cfg.levels, cfg.bucket_bytes, DramConfig(channels=channels)
            )
            out[channels] = model.average_oram_latency_proc_cycles(proc_ghz)
        return out

    cell_keys = [
        f"num_blocks={num_blocks}",
        f"block_bytes={block_bytes}",
        f"blocks_per_bucket={blocks_per_bucket}",
        f"proc_ghz={proc_ghz!r}",
        f"channels={','.join(str(ch) for ch in channel_counts)}",
    ]
    return cached_figure_table("table2", None, cell_keys, build)


def insecure_latency(proc_ghz: float = 1.3) -> float:
    """Average insecure DRAM access latency in processor cycles."""
    cfg = OramConfig(num_blocks=2**26)
    model = DramModel(cfg.levels, cfg.bucket_bytes, DramConfig(channels=2))
    return model.insecure_access_cycles(proc_ghz)


def main() -> None:
    """Print measured vs paper latencies."""
    print("Table 2: ORAM access latency by DRAM channel count (proc cycles)")
    print(f"{'channels':>9} {'measured':>9} {'paper':>7}")
    for channels, cycles in run().items():
        print(f"{channels:>9} {cycles:>9.0f} {PAPER_LATENCY[channels]:>7}")
    print(
        f"insecure DRAM access: {insecure_latency():.0f} cycles "
        f"(paper: {PAPER_INSECURE})"
    )


if __name__ == "__main__":
    main()
