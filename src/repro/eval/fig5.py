"""Figure 5: PLB design space — direct-mapped capacity sweep.

Runs every SPEC stand-in against the PLB frontend at 8/32/64/128 KB and
reports runtime normalised to the 8 KB point. The paper sees <= 10%
improvements for most benchmarks but 67% (bzip2) and 49% (mcf) going
8 KB -> 128 KB, and only 2.7% average going 64 KB -> 128 KB (why it
settles on a 64 KB direct-mapped PLB).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.eval.table_cache import cached_figure_table
from repro.sim.runner import SimulationRunner
from repro.workloads.spec import benchmark_names

#: Capacities of the Fig. 5 sweep, in bytes.
CAPACITIES: Tuple[int, ...] = (8 * 1024, 32 * 1024, 64 * 1024, 128 * 1024)


def normalise(
    cycles_by_bench: Dict[str, Dict[int, float]],
    capacities: Tuple[int, ...] = CAPACITIES,
) -> Dict[str, Dict[int, float]]:
    """Normalise per-capacity cycles to the smallest capacity's runtime.

    Shared by the legacy loop below and the saved-sweep path
    (:func:`repro.eval.sweeps.fig5_table_from_report`), so the two are
    arithmetically one.
    """
    return {
        bench: {cap: row[cap] / row[capacities[0]] for cap in capacities}
        for bench, row in cycles_by_bench.items()
    }


def run(
    benchmarks: Optional[Iterable[str]] = None,
    capacities: Tuple[int, ...] = CAPACITIES,
    misses: Optional[int] = None,
    scheme: str = "PC_X32",
) -> Dict[str, Dict[int, float]]:
    """Normalised runtime per benchmark per PLB capacity.

    Returns ``table[benchmark][capacity_bytes] = runtime / runtime_8KB``.
    The same sweep is available declaratively as
    :func:`repro.eval.sweeps.fig5_sweep`. The assembled table is
    memoised on disk keyed by every cell's canonical identity
    (:mod:`repro.eval.table_cache`); ``--force`` refreshes it.
    """
    runner = SimulationRunner(misses_per_benchmark=misses)
    names = list(benchmarks) if benchmarks is not None else benchmark_names()

    def build() -> Dict[str, Dict[int, float]]:
        cycles_by_bench: Dict[str, Dict[int, float]] = {}
        for name in names:
            cycles_by_bench[name] = {
                capacity: runner.run_one(
                    scheme, name, plb_capacity_bytes=capacity
                ).cycles
                for capacity in capacities
            }
        return normalise(cycles_by_bench, capacities)

    cell_keys = [
        runner.result_key(scheme, name, plb_capacity_bytes=capacity)
        for name in names
        for capacity in capacities
    ]
    return cached_figure_table("fig5", runner, cell_keys, build)


def main() -> None:
    """Print the normalised-runtime sweep."""
    table = run()
    caps = CAPACITIES
    print("Figure 5: runtime normalised to the 8 KB direct-mapped PLB")
    print(f"{'bench':>7} " + " ".join(f"{c // 1024:>5}K" for c in caps))
    for bench, row in table.items():
        print(f"{bench:>7} " + " ".join(f"{row[c]:6.3f}" for c in caps))
    avg_64_to_128 = sum(row[caps[2]] / row[caps[3]] for row in table.values()) / len(table)
    print(f"\n64K->128K average gain: {100 * (avg_64_to_128 - 1):.1f}% (paper: 2.7%)")


if __name__ == "__main__":
    main()
