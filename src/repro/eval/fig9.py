"""Figure 9: PC_X32 speedup over the Phantom [21] configuration.

Phantom avoids recursion by using 4 KB ORAM blocks so the whole PosMap
fits on-chip (~2.5 MB for a 4 GB ORAM: N = 2^20, L = 19). The cost is
byte movement: the paper computes PC_X32's per-access traffic at roughly
(26 * 64) / (19 * 4096) = 2.1% of Phantom's and measures ~10x average
speedup, Phantom's 32 KB block buffer notwithstanding.

We model the Phantom point with the non-recursive LinearFrontend at 4 KB
blocks plus a 32 KB CLOCK block buffer in front (Section 5.7 of [21]),
on 2 DRAM channels, and compare against the PC_X32 simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import OramConfig, ProcessorConfig
from repro.dram.config import DramConfig
from repro.dram.model import DramModel
from repro.eval.table_cache import cached_figure_table
from repro.proc.hierarchy import MissTrace
from repro.sim.runner import SimulationRunner
from repro.utils.stats import geometric_mean

#: Phantom configuration of §7.1.6.
PHANTOM_BLOCK_BYTES = 4096
PHANTOM_BUFFER_BYTES = 32 * 1024
PHANTOM_LINE_BYTES = 128


def phantom_cycles(
    trace: MissTrace,
    proc: ProcessorConfig,
    oram_latency: float,
    block_bytes: int = PHANTOM_BLOCK_BYTES,
    buffer_bytes: int = PHANTOM_BUFFER_BYTES,
) -> float:
    """Replay a trace against the Phantom model (block buffer + big blocks).

    The 32 KB block buffer holds recently fetched 4 KB ORAM blocks with
    CLOCK (approximated as LRU over 8 slots); hits cost an L2-like
    latency, misses cost a full 4 KB-block ORAM access.
    """
    slots = max(buffer_bytes // block_bytes, 1)
    resident: List[int] = []
    cycles = (
        trace.instructions
        + trace.mem_refs * proc.l1_latency
        + trace.l2_hits * proc.l2_latency
    )
    for event in trace.events:
        block = event.line_addr * proc.line_bytes // block_bytes
        if block in resident:
            resident.remove(block)
            resident.append(block)
            cycles += proc.l2_latency
            continue
        if len(resident) >= slots:
            resident.pop(0)
        resident.append(block)
        cycles += oram_latency
    return cycles


def phantom_oram_latency(proc_ghz: float = 1.3, channels: int = 2) -> float:
    """Per-access latency of the 4 KB-block, L=19 Phantom tree."""
    cfg = OramConfig(
        num_blocks=2**20, block_bytes=PHANTOM_BLOCK_BYTES, levels=19
    )
    model = DramModel(cfg.levels, cfg.bucket_bytes, DramConfig(channels=channels))
    return model.average_oram_latency_proc_cycles(proc_ghz)


def run(
    benchmarks: Optional[Iterable[str]] = None,
    misses: Optional[int] = None,
) -> Dict[str, float]:
    """Per-benchmark speedup of PC_X32 over the Phantom configuration.

    The assembled speedup table is memoised on disk keyed by each
    consumed PC_X32 cell's canonical identity (which already folds in
    the trace parameters the Phantom replay shares); ``--force``
    refreshes it (:mod:`repro.eval.table_cache`).
    """
    proc = ProcessorConfig(line_bytes=PHANTOM_LINE_BYTES)
    runner = SimulationRunner(proc=proc, misses_per_benchmark=misses)
    names = list(benchmarks) if benchmarks is not None else ["gcc", "libq", "mcf", "hmmer"]

    def build() -> Dict[str, float]:
        oram_latency = phantom_oram_latency()
        out: Dict[str, float] = {}
        for name in names:
            trace = runner.trace(name)
            pc = runner.run_one("PC_X32", name, block_bytes=64)
            phantom = phantom_cycles(trace, proc, oram_latency)
            out[name] = phantom / pc.cycles
        return out

    cell_keys = [
        runner.result_key("PC_X32", name, block_bytes=64) for name in names
    ]
    return cached_figure_table("fig9", runner, cell_keys, build)


def byte_movement_ratio() -> float:
    """The paper's closed-form estimate: ~2.1% of Phantom's traffic."""
    pc = OramConfig(num_blocks=2**26, block_bytes=64)
    phantom = OramConfig(num_blocks=2**20, block_bytes=PHANTOM_BLOCK_BYTES, levels=19)
    return ((pc.levels + 1) * 64) / ((phantom.levels + 1) * PHANTOM_BLOCK_BYTES)


def main() -> None:
    """Print per-benchmark and geomean speedups over Phantom."""
    speedups = run()
    print("Figure 9: PC_X32 speedup over Phantom (4 KB blocks, no recursion)")
    for name, s in speedups.items():
        print(f"{name:>7}: {s:6.1f}x")
    print(f"geomean: {geometric_mean(list(speedups.values())):.1f}x (paper: ~10x)")
    print(
        f"closed-form byte-movement ratio: {100 * byte_movement_ratio():.1f}%"
        " of Phantom (paper: 2.1%)"
    )


if __name__ == "__main__":
    main()
