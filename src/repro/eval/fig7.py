"""Figure 7: data moved per ORAM access at 4 / 16 / 64 GB capacities.

For each scheme the bar is total KB per access, with the PosMap share
shaded. R_X8's PosMap share grows quickly with capacity; PLB schemes stay
nearly flat. Paper headline: at 4 GB, PC_X32 cuts PosMap bandwidth by 82%
and total by 38% vs R_X8; at 64 GB the cuts reach 90% and 57%.

PLB hit behaviour cannot be computed in closed form, so the average
number of PosMap fetches per access is *measured* at simulation scale
(suite average over the SPEC stand-ins) and then combined with the exact
per-capacity tree geometry — the hybrid documented in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analytic.bandwidth import recursion_breakdown, unified_access_bytes
from repro.eval.table_cache import cached_figure_table
from repro.sim.runner import SimulationRunner
from repro.utils.units import GiB

#: Schemes of Fig. 7 in plot order, with their Unified-tree parameters
#: (fanout, mac_bytes); R_X8 uses the separate-tree analytic path.
PLB_SCHEMES: Dict[str, Tuple[int, int]] = {
    "P_X16": (16, 0),
    "PC_X32": (32, 0),
    "PI_X8": (8, 14),
    "PIC_X32": (32, 14),
}

#: Capacities of Fig. 7.
CAPACITIES: Tuple[int, ...] = (4 * GiB, 16 * GiB, 64 * GiB)

#: Default benchmark mix for the measured PosMap rates — spans the
#: locality spectrum so the average PLB behaviour approximates a suite
#: mean rather than a worst case.
RATE_BENCHMARKS: Tuple[str, ...] = ("hmmer", "gcc", "h264", "libq", "mcf")


@dataclass
class Fig7Bar:
    """One bar of Fig. 7."""

    scheme: str
    capacity_bytes: int
    total_kb: float
    posmap_kb: float

    @property
    def posmap_fraction(self) -> float:
        """Shaded share of the bar."""
        return self.posmap_kb / self.total_kb if self.total_kb else 0.0


def measure_posmap_rate(
    scheme: str,
    benchmarks: Optional[Iterable[str]] = None,
    misses: Optional[int] = None,
    runner: Optional[SimulationRunner] = None,
) -> float:
    """Average PosMap tree accesses per data access at simulation scale."""
    if runner is None:
        runner = SimulationRunner(misses_per_benchmark=misses)
    names = (
        list(benchmarks) if benchmarks is not None else list(RATE_BENCHMARKS)
    )
    total_posmap = 0
    total_data = 0
    for name in names:
        result = runner.run_one(scheme, name)
        total_data += result.oram_accesses
        total_posmap += result.tree_accesses - result.oram_accesses
    return total_posmap / total_data if total_data else 0.0


def run(
    capacities: Sequence[int] = CAPACITIES,
    block_bytes: int = 64,
    onchip_entries: int = 2**11,
    benchmarks: Optional[Iterable[str]] = None,
    misses: Optional[int] = None,
    rates: Optional[Dict[str, float]] = None,
) -> List[Fig7Bar]:
    """All Fig. 7 bars (R_X8 analytic; PLB schemes hybrid).

    ``rates`` injects pre-measured PosMap-accesses-per-data-access rates
    — e.g. recovered from a saved-sweep report via
    :func:`repro.eval.sweeps.fig7_rates_from_report` — skipping the
    in-line measurement entirely. The measured rates are memoised on
    disk keyed by every consumed cell's canonical identity
    (:mod:`repro.eval.table_cache`); ``--force`` refreshes them.
    """
    bars: List[Fig7Bar] = []
    if rates is None:
        runner = SimulationRunner(misses_per_benchmark=misses)
        names = (
            list(benchmarks) if benchmarks is not None else list(RATE_BENCHMARKS)
        )

        def build() -> Dict[str, float]:
            return {
                scheme: measure_posmap_rate(scheme, names, misses, runner=runner)
                for scheme in PLB_SCHEMES
            }

        cell_keys = [
            runner.result_key(scheme, name)
            for scheme in PLB_SCHEMES
            for name in names
        ]
        rates = cached_figure_table("fig7_rates", runner, cell_keys, build)
    for capacity in capacities:
        num_blocks = capacity // block_bytes
        r = recursion_breakdown(
            num_blocks,
            data_block_bytes=block_bytes,
            onchip_posmap_bytes=256 * 1024,
        )
        bars.append(
            Fig7Bar("R_X8", capacity, r.total_bytes / 1024, r.posmap_bytes / 1024)
        )
        for scheme, (fanout, mac_bytes) in PLB_SCHEMES.items():
            u = unified_access_bytes(
                num_blocks,
                block_bytes=block_bytes,
                fanout=fanout,
                onchip_entries=onchip_entries,
                mac_bytes=mac_bytes,
                posmap_accesses_per_data_access=rates[scheme],
            )
            bars.append(
                Fig7Bar(scheme, capacity, u.total_bytes / 1024, u.posmap_bytes / 1024)
            )
    return bars


def main() -> None:
    """Print the Fig. 7 bars and headline reductions."""
    bars = run()
    print("Figure 7: KB moved per ORAM access (PosMap share in parentheses)")
    by_cap: Dict[int, List[Fig7Bar]] = {}
    for bar in bars:
        by_cap.setdefault(bar.capacity_bytes, []).append(bar)
    for capacity, group in by_cap.items():
        row = "  ".join(
            f"{b.scheme}={b.total_kb:.1f}KB({100 * b.posmap_fraction:.0f}%)"
            for b in group
        )
        print(f"{capacity // GiB:>3} GB: {row}")
    lookup = {(b.scheme, b.capacity_bytes): b for b in bars}
    for cap, label in ((4 * GiB, "4 GB"), (64 * GiB, "64 GB")):
        r, pc = lookup[("R_X8", cap)], lookup[("PC_X32", cap)]
        posmap_cut = 1 - pc.posmap_kb / r.posmap_kb
        total_cut = 1 - pc.total_kb / r.total_kb
        print(
            f"{label}: PC_X32 cuts PosMap bytes {100 * posmap_cut:.0f}%"
            f", total {100 * total_cut:.0f}%"
            + ("  (paper: 82%/38%)" if cap == 4 * GiB else "  (paper: 90%/57%)")
        )


if __name__ == "__main__":
    main()
