"""Experiment-level memoisation of assembled figure tables.

The result cache makes every *cell* incremental, but a figure run still
pays the assembly tail — loading dozens of cached cells, normalising and
aggregating them — on every invocation. This layer memoises the
*assembled table itself*, keyed by the canonical identity of everything
that built it: the figure name plus the :meth:`SimulationRunner.result_key
<repro.sim.runner.SimulationRunner.result_key>` of every cell the figure
consumes. Those keys already canonicalise the sized scheme specs, the
benchmark list, and the trace parameters (seed, processor/DRAM config,
miss budget, warmup), so any knob that could change a cell re-keys the
table automatically — there is no hand-maintained invalidation list.

``--force`` (``REPRO_FORCE=1``) is *honoured and refreshing*: a forced
run skips the table load, rebuilds from scratch (the runner's own force
flag already refreshes the cell caches underneath), and overwrites the
cached table.

Tables are stored as JSON with a type-preserving encoding (dict keys may
be ints — fig5's capacity axis — which raw JSON would silently turn into
strings). Robustness rules mirror the trace/result caches: atomic
writes, corrupt entries treated as misses and unlinked, an unusable
directory silently disables the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.errors import CacheCorruptionWarning
from repro.faults import fault_hook

#: Environment variable controlling the figure-table cache location.
#: Unset means the per-user default; a path overrides it;
#: ``0``/``off``/``none`` disables.
FIGURE_CACHE_ENV = "REPRO_FIGURE_CACHE"

#: Schema version mixed into every key (bump on encoding changes).
FIGURE_CACHE_VERSION = 1

_DISABLED_VALUES = {"0", "off", "none", "disable", "disabled"}


def default_figure_cache_dir() -> Optional[Path]:
    """Resolve the cache directory from the environment (None = disabled)."""
    value = os.environ.get(FIGURE_CACHE_ENV)
    if value is None:
        return Path.home() / ".cache" / "repro" / "figures"
    if value.strip().lower() in _DISABLED_VALUES or not value.strip():
        return None
    return Path(value)


def figure_key(figure: str, cell_keys: Iterable[str]) -> str:
    """Digest of a figure's full input identity.

    ``cell_keys`` are the runner result-cache keys of every cell the
    figure consumes (baselines included), *in assembly order* — row and
    column order are part of an assembled table's identity, so a
    reordered scheme list keys a fresh entry rather than serving a
    differently-ordered cached one.
    """
    import repro

    parts = [
        f"schema={FIGURE_CACHE_VERSION}",
        f"repro={getattr(repro, '__version__', '0')}",
        f"figure={figure}",
    ]
    parts.extend(cell_keys)
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:40]


# -- type-preserving JSON encoding ---------------------------------------------
#
# Figure tables are dicts keyed by benchmark names *and* integers (PLB
# capacities); JSON objects only take string keys, so dicts are encoded
# as explicit key/value pair lists and decoded back losslessly.

_SCALARS = (str, int, float, bool, type(None))


def _encode(obj):
    if isinstance(obj, dict):
        return {"__kv__": [[_encode(k), _encode(v)] for k, v in obj.items()]}
    if isinstance(obj, (list, tuple)):
        return [_encode(item) for item in obj]
    if isinstance(obj, _SCALARS):
        return obj
    raise TypeError(f"figure tables cannot carry {type(obj).__name__} values")


def _decode(obj):
    if isinstance(obj, dict):
        if set(obj) != {"__kv__"}:
            raise ValueError("corrupt figure-table encoding")
        return {_decode(k): _decode(v) for k, v in obj["__kv__"]}
    if isinstance(obj, list):
        return [_decode(item) for item in obj]
    return obj


class FigureTableCache:
    """Directory of encoded figure tables keyed by :func:`figure_key`."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        # Hit/miss/store counters for tests and diagnostics.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0

    def path_for(self, key: str) -> Path:
        """Entry location for a key."""
        return self.root / f"{key}.figure.json"

    def _evict_corrupt(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.corrupt_evictions += 1
        warnings.warn(
            f"figure cache: evicted corrupt entry {path.name}; rebuilding",
            CacheCorruptionWarning,
            stacklevel=3,
        )

    def load(self, key: str):
        """Return the cached table, or None on miss/corruption."""
        path = self.path_for(key)
        fault_hook("cache.entry", f"figure/{key}", path)
        try:
            text = path.read_text("utf-8")
        except OSError:
            # Absent entry: a plain miss, nothing to evict.
            self.misses += 1
            return None
        try:
            table = _decode(json.loads(text))
        except ValueError:
            self._evict_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return table

    def store(self, key: str, table) -> bool:
        """Atomically persist a table; returns False if unusable."""
        try:
            payload = json.dumps(_encode(table), sort_keys=False)
        except TypeError:
            return False
        fault_hook("cache.write", "figure/begin")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(payload, "utf-8")
            fault_hook("cache.write", "figure/tmp", tmp)
            os.replace(tmp, path)
            fault_hook("cache.write", "figure/replace", path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True


def cached_figure_table(
    figure: str,
    runner,
    cell_keys: Iterable[str],
    build: Callable[[], object],
    cache: Optional[FigureTableCache] = None,
):
    """Memoise one assembled figure table on disk.

    ``runner.force`` (the ``--force`` / ``REPRO_FORCE`` flag) skips the
    load and refreshes the stored entry with the rebuilt table; a
    disabled cache (``REPRO_FIGURE_CACHE=off``) degrades to calling
    ``build()`` directly. Purely analytic tables (table2/table3) have no
    runner: pass ``runner=None`` and the force flag is read straight
    from the environment, with ``cell_keys`` carrying the closed-form
    model's parameters instead of result digests.
    """
    if cache is None:
        root = default_figure_cache_dir()
        cache = FigureTableCache(root) if root is not None else None
    if cache is None:
        return build()
    if runner is None:
        from repro.sim.runner import default_force

        force = default_force()
    else:
        force = runner.force
    key = figure_key(figure, cell_keys)
    if not force:
        table = cache.load(key)
        if table is not None:
            return table
    table = build()
    cache.store(key, table)
    return table
