"""Figure 6: scheme composability — R_X8 vs PC_X32 vs PIC_X32.

Slowdown of each scheme relative to an insecure system without ORAM, per
SPEC stand-in plus the geometric mean. The paper's headline numbers:
PC_X32 achieves a 1.43x speedup over R_X8 (geomean), and adding PMMAC
(PIC_X32) costs only ~7% on top of PC_X32.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.eval.table_cache import cached_figure_table
from repro.sim.metrics import format_table, slowdown_table
from repro.sim.runner import SimulationRunner
from repro.workloads.spec import benchmark_names

#: Schemes of Fig. 6 in plot order.
SCHEMES: Sequence[str] = ("R_X8", "PC_X32", "PIC_X32")


def run(
    benchmarks: Optional[Iterable[str]] = None,
    schemes: Sequence[str] = SCHEMES,
    misses: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Slowdown table: ``table[scheme][benchmark]`` plus ``geomean``.

    The assembled table is memoised on disk keyed by every cell's
    canonical identity — scheme specs, benchmarks, trace parameters and
    the insecure baselines (:mod:`repro.eval.table_cache`); ``--force``
    refreshes it.
    """
    runner = SimulationRunner(misses_per_benchmark=misses)
    names = list(benchmarks) if benchmarks is not None else benchmark_names()

    def build() -> Dict[str, Dict[str, float]]:
        results = runner.run_suite(schemes, names)
        baselines = runner.baselines(names)
        return slowdown_table(results, baselines, schemes)

    cell_keys = [
        runner.result_key(scheme, name)
        for scheme in schemes
        for name in names
    ] + [runner.result_key("insecure", name) for name in names]
    return cached_figure_table("fig6", runner, cell_keys, build)


def main() -> None:
    """Print the Fig. 6 slowdown table and headline ratios."""
    table = run()
    print(format_table(table, benchmark_names(), "Figure 6: slowdown vs insecure"))
    pc_speedup = table["R_X8"]["geomean"] / table["PC_X32"]["geomean"]
    pic_overhead = table["PIC_X32"]["geomean"] / table["PC_X32"]["geomean"] - 1
    print(f"\nPC_X32 speedup over R_X8 (geomean): {pc_speedup:.2f}x (paper: 1.43x)")
    print(f"PIC_X32 overhead over PC_X32: {100 * pic_overhead:.1f}% (paper: 7%)")


if __name__ == "__main__":
    main()
