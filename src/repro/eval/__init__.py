"""Experiment harness: one module per table and figure of the paper.

Each module exposes a ``run(...)`` function returning structured rows and
a ``main()`` that prints the same rows/series the paper reports, with the
paper's reference values alongside. The benchmarks/ directory wraps each
module in a pytest-benchmark target; EXPERIMENTS.md records the outputs.

| Module       | Reproduces |
|--------------|------------|
| fig3         | Fig. 3 — recursion overhead vs capacity |
| table2       | Tab. 2 — path latency vs DRAM channels (+58-cycle baseline) |
| fig5         | Fig. 5 — PLB capacity sweep |
| fig6         | Fig. 6 — R_X8 / PC_X32 / PIC_X32 slowdowns |
| fig7         | Fig. 7 — KB/access scalability, PosMap share |
| fig8         | Fig. 8 — [26]-parameter comparison (PC_X64/PC_X32) |
| fig9         | Fig. 9 — speedup over Phantom 4 KB blocks |
| table3       | Tab. 3 — area breakdown vs channel count |
| hashbw       | §6.3 — PMMAC vs Merkle hash bandwidth |
| compression  | §5.3 — compressed PosMap geometry and remap overhead |
"""
