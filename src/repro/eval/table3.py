"""Table 3: ORAM controller area breakdown, post-synthesis (32 nm).

The analytic model of :mod:`repro.area` is calibrated to the paper's
published absolute areas; this module renders the same table shape —
component percentages per channel count plus total mm^2 — and the
post-layout headline (.47 mm^2 at 1 GHz for nchannel=2).
"""

from __future__ import annotations

from typing import Dict, Tuple

import dataclasses

from repro.area.model import AreaBreakdown, AreaModel
from repro.eval.table_cache import cached_figure_table

#: Paper values: {channels: (frontend%, posmap%, plb%, pmmac%, misc%,
#: backend%, stash%, aes%, total_mm2)}.
PAPER_TABLE3: Dict[int, Tuple[float, ...]] = {
    1: (31.2, 7.3, 10.2, 12.4, 1.3, 68.8, 28.3, 40.5, 0.316),
    2: (30.0, 7.0, 9.7, 11.9, 1.4, 70.0, 28.9, 41.1, 0.326),
    4: (22.5, 5.3, 7.3, 8.8, 1.1, 77.5, 21.9, 55.6, 0.438),
}

#: Paper's post-layout total for nchannel = 2.
PAPER_LAYOUT_TOTAL_MM2 = 0.47


def run(channel_counts: Tuple[int, ...] = (1, 2, 4)) -> Dict[int, AreaBreakdown]:
    """Post-synthesis breakdown per channel count (default PLB/PosMap 8 KB).

    Purely analytic, so the memoised table (:mod:`repro.eval.table_cache`)
    is keyed by the area model's parameters; breakdowns are flattened to
    their component fields for storage and rebuilt on load.
    ``REPRO_FORCE=1`` refreshes the entry.
    """
    def build() -> Dict[int, Dict[str, float]]:
        model = AreaModel(posmap_kib=8, plb_kib=8, pmmac=True)
        return {
            ch: dataclasses.asdict(model.synthesis(ch)) for ch in channel_counts
        }

    cell_keys = [
        "posmap_kib=8",
        "plb_kib=8",
        "pmmac=True",
        f"channels={','.join(str(ch) for ch in channel_counts)}",
    ]
    table = cached_figure_table("table3", None, cell_keys, build)
    return {ch: AreaBreakdown(**fields) for ch, fields in table.items()}


def layout_total(channels: int = 2) -> float:
    """Post-layout total area in mm^2."""
    return AreaModel(posmap_kib=8, plb_kib=8, pmmac=True).layout(channels).total


def main() -> None:
    """Print the Table 3 comparison."""
    print("Table 3: area breakdown post-synthesis (measured | paper)")
    header = f"{'component':>10}" + "".join(f" {f'{ch}ch':>15}" for ch in (1, 2, 4))
    print(header)
    results = run()
    rows = (
        ("frontend", 0), ("posmap", 1), ("plb", 2), ("pmmac", 3), ("misc", 4),
        ("backend", 5), ("stash", 6), ("aes", 7),
    )
    for name, paper_idx in rows:
        cells = []
        for ch in (1, 2, 4):
            measured = results[ch].percentages()[name]
            paper = PAPER_TABLE3[ch][paper_idx]
            cells.append(f"{measured:5.1f}|{paper:5.1f}%")
        print(f"{name:>10}" + "".join(f" {c:>15}" for c in cells))
    totals = [
        f"{results[ch].total:5.3f}|{PAPER_TABLE3[ch][8]:5.3f}" for ch in (1, 2, 4)
    ]
    print(f"{'total mm2':>10}" + "".join(f" {c:>15}" for c in totals))
    print(
        f"\npost-layout total (2ch): {layout_total():.2f} mm^2 "
        f"(paper: {PAPER_LAYOUT_TOTAL_MM2})"
    )
    model = AreaModel()
    flat = model.no_recursion_posmap_mm2(2**20, 20)
    print(
        f"no-recursion flat PosMap (2^20 entries): {flat:.1f} mm^2 "
        "(paper: ~5 mm^2, a >10x area increase)"
    )


if __name__ == "__main__":
    main()
