"""Figure 3: % of bytes from PosMap ORAMs in a full Recursive access.

Sweeps Data ORAM capacity 2^30..2^40 bytes for X=8 (32-byte PosMap
blocks), Z=4, block sizes 64/128 B and on-chip PosMaps of 8/256 KB, with
buckets padded to 512 bits — exactly the Fig. 3 configuration. The paper
reads 39%-56% at 4 GB and a curve that *grows* with capacity.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analytic.bandwidth import posmap_fraction

#: (block_bytes, onchip_posmap_bytes) series of Fig. 3.
SERIES: Tuple[Tuple[int, int], ...] = (
    (64, 8 * 1024),
    (128, 8 * 1024),
    (64, 256 * 1024),
    (128, 256 * 1024),
)


def series_label(block_bytes: int, onchip_bytes: int) -> str:
    """Paper-style label, e.g. ``b64_pm8``."""
    return f"b{block_bytes}_pm{onchip_bytes // 1024}"


def run(
    log2_capacities: Tuple[int, ...] = tuple(range(30, 41))
) -> Dict[str, List[Tuple[int, float]]]:
    """Compute every Fig. 3 series; values are (log2 capacity, fraction)."""
    out: Dict[str, List[Tuple[int, float]]] = {}
    for block_bytes, onchip in SERIES:
        label = series_label(block_bytes, onchip)
        points = []
        for log2_cap in log2_capacities:
            frac = posmap_fraction(1 << log2_cap, block_bytes, onchip)
            points.append((log2_cap, frac))
        out[label] = points
    return out


def main() -> None:
    """Print the Fig. 3 curves as a text table."""
    data = run()
    caps = [c for c, _ in next(iter(data.values()))]
    print("Figure 3: % bytes from PosMap ORAMs (X=8, Z=4, 512-bit buckets)")
    print("log2(capacity):", " ".join(f"{c:5d}" for c in caps))
    for label, points in data.items():
        print(f"{label:>12}:", " ".join(f"{100 * f:5.1f}" for _, f in points))
    at_4gb = {label: dict(points)[32] for label, points in data.items()}
    print(
        f"\nAt 4 GB: b64_pm8 {100 * at_4gb['b64_pm8']:.0f}% / "
        f"b128_pm8 {100 * at_4gb['b128_pm8']:.0f}%  (paper: 56% / 39%)"
    )


if __name__ == "__main__":
    main()
