"""§5.3: compressed PosMap geometry and the group-remap overhead.

Checks the concrete claims: with 512-bit blocks, alpha=64 and beta=14
pack X' = 32 counters (vs X = 16 uncompressed leaves), and the
worst-case block-remap overhead is X'/2^beta = 0.2%. Also measures the
overhead empirically by hammering a single block until its IC rolls
over and counting the extra Backend accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.ops import Op
from repro.crypto.suite import CryptoSuite
from repro.frontend.formats import CompressedPosMapFormat, UncompressedPosMapFormat
from repro.frontend.unified import PlbFrontend
from repro.utils.rng import DeterministicRng


@dataclass
class CompressionFacts:
    """Geometry facts of §5.3."""

    uncompressed_fanout: int
    compressed_fanout: int
    worst_case_remap_overhead: float


def run(block_bytes: int = 64, alpha: int = 64, beta: int = 14) -> CompressionFacts:
    """Compute the §5.3 geometry for a block size."""
    crypto = CryptoSuite.fast()
    uncompressed = UncompressedPosMapFormat(block_bytes, levels=20)
    compressed = CompressedPosMapFormat(
        block_bytes, levels=20, prf=crypto.prf, alpha_bits=alpha, beta_bits=beta
    )
    return CompressionFacts(
        uncompressed_fanout=uncompressed.fanout,
        compressed_fanout=compressed.fanout,
        worst_case_remap_overhead=compressed.fanout / float(1 << beta),
    )


def measured_remap_overhead(beta: int = 4, accesses: int = 2000) -> float:
    """Extra Backend accesses per request under worst-case hammering.

    Uses a small beta so rollovers happen within the access budget; the
    overhead should track X'/2^beta for the scaled-down geometry too.
    """
    frontend = PlbFrontend(
        num_blocks=2**10,
        posmap_format="compressed",
        compressed_beta=beta,
        compressed_fanout=32,  # hold X' at the paper's value
        onchip_entries=2**4,
        rng=DeterministicRng(3),
    )
    target = 123
    frontend.access(target, Op.READ)  # warm the PLB path
    start_tree = frontend.stats.tree_accesses
    start_reloc = frontend.stats.group_relocations
    for _ in range(accesses):
        frontend.access(target, Op.READ)
    relocations = frontend.stats.group_relocations - start_reloc
    return relocations / accesses


def main() -> None:
    """Print §5.3 geometry and measured remap overhead."""
    facts = run()
    print("§5.3 compressed PosMap:")
    print(
        f"X uncompressed = {facts.uncompressed_fanout} (paper: 16), "
        f"X' compressed = {facts.compressed_fanout} (paper: 32)"
    )
    print(
        f"worst-case remap overhead X'/2^beta = "
        f"{100 * facts.worst_case_remap_overhead:.2f}% (paper: 0.2%)"
    )
    beta = 4
    measured = measured_remap_overhead(beta=beta)
    expected = (32 - 1) / float(1 << beta)  # X' held at 32 in the probe
    print(
        f"measured relocations/access at beta={beta}: {measured:.3f} "
        f"(expected ~{expected:.3f} under single-block hammering)"
    )


if __name__ == "__main__":
    main()
