"""Replay-throughput microbenchmark (``python -m repro bench``).

Not a paper figure: this harness measures the *simulator's own* hot path
— end-to-end ``replay_trace`` accesses/second per scheme and storage
backend on a fixed, seeded synthetic trace — and writes the numbers to
``BENCH_replay.json`` so they can be tracked across commits (CI uploads
the file as an artifact; there is no hard timing gate).

The trace and every frontend are deterministically seeded, so run-to-run
variation is machine noise only; each cell reports the best of
``repeats`` runs to suppress it.

Environment knobs: ``REPRO_BENCH_EVENTS`` (trace length, default 4000),
``REPRO_BENCH_REPEATS`` (default 3), ``REPRO_BENCH_OUT`` (output path).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import repro
from repro.presets import SCHEMES, build_frontend
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.system import replay_trace
from repro.sim.timing import OramTimingModel
from repro.utils.rng import DeterministicRng

#: Tree size for the benchmark frontends (2^12 data blocks).
BENCH_BLOCKS = 2**12

#: Storage backends measured for every scheme.
BENCH_STORAGES = ("object", "array")

DEFAULT_EVENTS = 4000
DEFAULT_REPEATS = 3


def _env_int(name: str, default: int) -> int:
    try:
        return max(int(os.environ.get(name, "")), 1)
    except ValueError:
        return default


def bench_trace(events: int) -> MissTrace:
    """Fixed synthetic miss trace (seeded, uniform with 30% writes)."""
    rng = DeterministicRng(8)
    trace = MissTrace(
        name="bench",
        instructions=200_000,
        mem_refs=60_000,
        l1_hits=50_000,
        l2_hits=8_000,
    )
    trace.events = [
        MissEvent(rng.randrange(BENCH_BLOCKS), rng.random() < 0.3)
        for _ in range(events)
    ]
    return trace


def bench_cell(scheme: str, storage: str, trace: MissTrace, repeats: int) -> Dict:
    """Best-of-``repeats`` replay throughput for one (scheme, storage)."""
    timing = OramTimingModel(tree_latency_cycles=1000.0)
    best = float("inf")
    result = None
    for _ in range(repeats):
        frontend = build_frontend(
            scheme, num_blocks=BENCH_BLOCKS, rng=DeterministicRng(7), storage=storage
        )
        start = time.perf_counter()
        # Every repeat is deterministic, so the SimResult (and its cache
        # effectiveness counters) is identical across repeats; keep one.
        result = replay_trace(frontend, trace, timing, scheme=scheme)
        best = min(best, time.perf_counter() - start)
    return {
        "scheme": scheme,
        "storage": storage,
        "events": len(trace.events),
        "seconds": best,
        "accesses_per_sec": len(trace.events) / best if best > 0 else 0.0,
        # Cache-effectiveness diagnostics (visible in BENCH_replay.json):
        # PLB hit rate of the PosMap lookup loop, and how much of the
        # logical PRF leaf-derivation work the LRU absorbed.
        "plb_hit_rate": result.plb_hit_rate,
        "prf_calls": result.prf_calls,
        "prf_cache_hits": result.prf_cache_hits,
        "prf_cache_hit_rate": result.prf_cache_hit_rate,
    }


def run_bench(
    events: Optional[int] = None,
    repeats: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict:
    """Run the full scheme x storage matrix; returns the report dict."""
    events = events if events is not None else _env_int("REPRO_BENCH_EVENTS", DEFAULT_EVENTS)
    repeats = repeats if repeats is not None else _env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS)
    trace = bench_trace(events)
    cells: List[Dict] = []
    print(f"replay microbenchmark: {events} events, best of {repeats}")
    print(f"{'scheme':>10} {'storage':>8} {'acc/s':>10} {'plb%':>6} {'prf$%':>6}")
    for scheme in SCHEMES:
        for storage in BENCH_STORAGES:
            cell = bench_cell(scheme, storage, trace, repeats)
            cells.append(cell)
            print(
                f"{scheme:>10} {storage:>8} {cell['accesses_per_sec']:>10.0f}"
                f" {100 * cell['plb_hit_rate']:>6.1f}"
                f" {100 * cell['prf_cache_hit_rate']:>6.1f}"
            )
    report = {
        "kind": "replay_throughput",
        "version": getattr(repro, "__version__", "0"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "events": events,
        "repeats": repeats,
        "results": cells,
    }
    path = out_path if out_path is not None else os.environ.get(
        "REPRO_BENCH_OUT", "BENCH_replay.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")
    return report


def main() -> None:
    """CLI entry point."""
    run_bench()
