"""Replay-throughput microbenchmark (``python -m repro bench``).

Not a paper figure: this harness measures the *simulator's own* hot path
and writes the numbers to ``BENCH_replay.json`` so they can be tracked
across commits (CI uploads the file as an artifact and fails the build if
the columnar backend regresses below the object baseline). Two sections:

- **replay**: end-to-end ``replay_trace`` accesses/second for every
  scheme x storage backend (object vs array vs columnar in one report —
  the storage comparison mode) on a fixed, seeded synthetic trace;
- **pipeline**: the batched replay kernel vs the scalar escape hatch
  (``REPRO_REPLAY``) per scheme on the object storage baseline — the
  layer the batched pipeline rewrites. The two kernels are bit-identical
  in every simulated outcome, so this section measures pure loop
  mechanics: columnar trace columns, vectorised line->block translation,
  ``plan_batch`` frontend planning and the vectorised latency gather;
- **compiled**: the C replay core (``REPRO_REPLAY=compiled``) vs the
  batched pipeline on *columnar* storage — the arena the native
  drain/evict kernel reads zero-copy. Skipped (comparison ``null``)
  when the optional extension is not built; the CI compiled lane gates
  ``compiled_vs_batched_replay_geomean >= 1.0``;
- **backend micro**: the raw Path ORAM backend access loop — no
  frontend, no PLB, no PRF — per storage backend on a paper-scale tree
  (2^18 blocks by default), which isolates exactly the layer the
  columnar block store rewrites. The report's ``comparisons`` block
  carries the columnar/object throughput ratios;
  :func:`check_report` turns them into a CI gate.

The trace and every frontend/backend are deterministically seeded, so
run-to-run variation is machine noise only; each cell reports the best
of ``repeats`` runs to suppress it.

A second harness, :func:`run_sweep_bench`, measures *sweep-cell*
throughput — the same small sweep run serially, on the worker pool, and
through the distributed fabric (coordinator + spawned workers), each on
cold caches — and writes ``BENCH_sweep.json``. Its ``comparisons`` block
carries the pool/serial and fabric/pool scaling ratios;
:func:`check_sweep_report` gates CI on parallel scaling staying at or
above parity (fabric ratios are reported, not gated: two extra
interpreter spawns dominate a smoke-sized sweep).

Environment knobs: ``REPRO_BENCH_EVENTS`` (trace length, default 4000),
``REPRO_BENCH_REPEATS`` (default 3), ``REPRO_BENCH_STORAGES``
(comma-separated subset of ``object,array,columnar``),
``REPRO_BENCH_MICRO_BLOCKS`` / ``_MICRO_ACCESSES`` / ``_MICRO_REPEATS``
(backend micro scale, defaults 2^18 / 8000 / 1), ``REPRO_BENCH_OUT``
(output path); for the sweep harness ``REPRO_BENCH_SWEEP`` (``off``
skips it), ``REPRO_BENCH_SWEEP_MISSES`` (per-cell miss budget, default
6000), ``REPRO_BENCH_SWEEP_WORKERS`` (default 2) and
``REPRO_BENCH_SWEEP_OUT`` (output path).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.backend.ops import Op
from repro.backend.path_oram import make_backend
from repro.config import OramConfig
from repro.presets import SCHEMES, build_frontend
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.system import replay_trace
from repro.sim.timing import OramTimingModel
from repro.storage import make_storage
from repro.utils.rng import DeterministicRng
from repro.utils.stats import geometric_mean

#: Tree size for the benchmark frontends (2^12 data blocks).
BENCH_BLOCKS = 2**12

#: Storage backends measured for every scheme (and in the backend micro).
BENCH_STORAGES = ("object", "array", "columnar")

DEFAULT_EVENTS = 4000
DEFAULT_REPEATS = 3

#: Backend-micro defaults: a paper-scale tree (the columnar layout's
#: design point — the ~0.5 us/block object floor this store removes).
DEFAULT_MICRO_BLOCKS = 2**18
DEFAULT_MICRO_ACCESSES = 8000
DEFAULT_MICRO_REPEATS = 1


def _env_int(name: str, default: int) -> int:
    try:
        return max(int(os.environ.get(name, "")), 1)
    except ValueError:
        return default


def bench_storages() -> Tuple[str, ...]:
    """Storage backends to compare (``REPRO_BENCH_STORAGES`` subset)."""
    raw = os.environ.get("REPRO_BENCH_STORAGES", "").strip()
    if not raw:
        return BENCH_STORAGES
    chosen = tuple(
        kind.strip() for kind in raw.split(",") if kind.strip() in BENCH_STORAGES
    )
    return chosen if chosen else BENCH_STORAGES


def bench_trace(events: int) -> MissTrace:
    """Fixed synthetic miss trace (seeded, uniform with 30% writes)."""
    rng = DeterministicRng(8)
    trace = MissTrace(
        name="bench",
        instructions=200_000,
        mem_refs=60_000,
        l1_hits=50_000,
        l2_hits=8_000,
    )
    trace.events = [
        MissEvent(rng.randrange(BENCH_BLOCKS), rng.random() < 0.3)
        for _ in range(events)
    ]
    return trace


def bench_cell(scheme: str, storage: str, trace: MissTrace, repeats: int) -> Dict:
    """Best-of-``repeats`` replay throughput for one (scheme, storage)."""
    timing = OramTimingModel(tree_latency_cycles=1000.0)
    best = float("inf")
    result = None
    for _ in range(repeats):
        frontend = build_frontend(
            scheme, num_blocks=BENCH_BLOCKS, rng=DeterministicRng(7), storage=storage
        )
        start = time.perf_counter()
        # Every repeat is deterministic, so the SimResult (and its cache
        # effectiveness counters) is identical across repeats; keep one.
        result = replay_trace(frontend, trace, timing, scheme=scheme)
        best = min(best, time.perf_counter() - start)
    return {
        "scheme": scheme,
        "storage": storage,
        "events": len(trace.events),
        "seconds": best,
        "accesses_per_sec": len(trace.events) / best if best > 0 else 0.0,
        # Cache-effectiveness diagnostics (visible in BENCH_replay.json):
        # PLB hit rate of the PosMap lookup loop, and how much of the
        # logical PRF leaf-derivation work the LRU absorbed.
        "plb_hit_rate": result.plb_hit_rate,
        "prf_calls": result.prf_calls,
        "prf_cache_hits": result.prf_cache_hits,
        "prf_cache_hit_rate": result.prf_cache_hit_rate,
    }


def pipeline_cell(
    scheme: str, mode: str, trace: MissTrace, repeats: int,
    storage: str = "object",
) -> Dict:
    """Best-of-``repeats`` replay throughput for one (scheme, kernel).

    One fixed storage backend throughout (object for the batched-vs-
    scalar section, columnar for the compiled section), so the cell
    isolates the replay kernel — the one knob that differs between the
    modes being compared.
    """
    timing = OramTimingModel(tree_latency_cycles=1000.0)
    best = float("inf")
    for _ in range(repeats):
        frontend = build_frontend(
            scheme, num_blocks=BENCH_BLOCKS, rng=DeterministicRng(7),
            storage=storage,
        )
        start = time.perf_counter()
        replay_trace(frontend, trace, timing, scheme=scheme, mode=mode)
        best = min(best, time.perf_counter() - start)
    return {
        "scheme": scheme,
        "mode": mode,
        "storage": storage,
        "events": len(trace.events),
        "seconds": best,
        "accesses_per_sec": len(trace.events) / best if best > 0 else 0.0,
    }


def _pipeline_ratio(
    cells: Sequence[Dict], mode: str = "batched", baseline: str = "scalar"
) -> Optional[float]:
    """Geomean mode/baseline accesses-per-second ratio across schemes."""
    by_scheme: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        by_scheme.setdefault(cell["scheme"], {})[cell["mode"]] = cell[
            "accesses_per_sec"
        ]
    ratios = [
        rates[mode] / rates[baseline]
        for rates in by_scheme.values()
        if mode in rates and rates.get(baseline)
    ]
    if not ratios:
        return None
    return geometric_mean(ratios)


def backend_micro_cell(
    storage: str, num_blocks: int, accesses: int, repeats: int
) -> Dict:
    """Raw Path ORAM backend throughput for one storage backend.

    Seeds a backend over a ``num_blocks`` tree, warms it by touching half
    the address space (steady-state occupancy), then times ``accesses``
    uniform READs with fresh uniform remaps — the §3.1 access loop and
    nothing else.
    """
    config = OramConfig(num_blocks=num_blocks, block_bytes=64)
    best = float("inf")
    for _ in range(repeats):
        backend = make_backend(
            config, make_storage(storage, config), DeterministicRng(11)
        )
        rng = DeterministicRng(13)
        posmap = {a: rng.random_leaf(config.levels) for a in range(num_blocks)}
        for addr in range(num_blocks // 2):
            new_leaf = rng.random_leaf(config.levels)
            backend.access(Op.READ, addr, posmap[addr], new_leaf)
            posmap[addr] = new_leaf
        plan = [
            (rng.randrange(num_blocks), rng.random_leaf(config.levels))
            for _ in range(accesses)
        ]
        access = backend.access
        start = time.perf_counter()
        for addr, new_leaf in plan:
            access(Op.READ, addr, posmap[addr], new_leaf)
            posmap[addr] = new_leaf
        best = min(best, time.perf_counter() - start)
    return {
        "storage": storage,
        "num_blocks": num_blocks,
        "levels": config.levels,
        "accesses": accesses,
        "seconds": best,
        "accesses_per_sec": accesses / best if best > 0 else 0.0,
    }


def _ratio(cells: Sequence[Dict], storage: str, baseline: str) -> Optional[float]:
    """storage/baseline accesses-per-second ratio over matching cells.

    Replay cells pair per scheme (geomean across schemes); micro cells
    pair directly. None when either side is missing.
    """
    def rate(cell):
        return cell["accesses_per_sec"]

    by_key: Dict[object, Dict[str, float]] = {}
    for cell in cells:
        key = cell.get("scheme", "micro")
        by_key.setdefault(key, {})[cell["storage"]] = rate(cell)
    ratios = [
        rates[storage] / rates[baseline]
        for rates in by_key.values()
        if storage in rates and rates.get(baseline)
    ]
    if not ratios:
        return None
    return geometric_mean(ratios)


def run_bench(
    events: Optional[int] = None,
    repeats: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict:
    """Run replay + backend-micro matrices; returns the report dict."""
    events = events if events is not None else _env_int("REPRO_BENCH_EVENTS", DEFAULT_EVENTS)
    repeats = repeats if repeats is not None else _env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS)
    storages = bench_storages()
    trace = bench_trace(events)
    cells: List[Dict] = []
    print(f"replay microbenchmark: {events} events, best of {repeats}")
    print(f"{'scheme':>10} {'storage':>8} {'acc/s':>10} {'plb%':>6} {'prf$%':>6}")
    for scheme in SCHEMES:
        for storage in storages:
            cell = bench_cell(scheme, storage, trace, repeats)
            cells.append(cell)
            print(
                f"{scheme:>10} {storage:>8} {cell['accesses_per_sec']:>10.0f}"
                f" {100 * cell['plb_hit_rate']:>6.1f}"
                f" {100 * cell['prf_cache_hit_rate']:>6.1f}"
            )

    pipeline_cells: List[Dict] = []
    print("\nreplay pipeline: batched kernel vs scalar escape hatch (object storage)")
    print(f"{'scheme':>10} {'batched/s':>10} {'scalar/s':>10} {'ratio':>6}")
    for scheme in SCHEMES:
        row = {
            mode: pipeline_cell(scheme, mode, trace, repeats)
            for mode in ("batched", "scalar")
        }
        pipeline_cells.extend(row.values())
        ratio = row["batched"]["accesses_per_sec"] / row["scalar"]["accesses_per_sec"]
        print(
            f"{scheme:>10} {row['batched']['accesses_per_sec']:>10.0f}"
            f" {row['scalar']['accesses_per_sec']:>10.0f} {ratio:>5.2f}x"
        )

    compiled_cells: List[Dict] = []
    from repro.sim.native import native_available

    if native_available():
        # The compiled core's design point is the columnar arena (its
        # drain/evict kernel reads the slot columns zero-copy), so the
        # section compares kernels on columnar storage.
        print(
            "\ncompiled replay core: C kernel vs batched pipeline "
            "(columnar storage)"
        )
        print(f"{'scheme':>10} {'compiled/s':>10} {'batched/s':>10} {'ratio':>6}")
        for scheme in SCHEMES:
            row = {
                mode: pipeline_cell(
                    scheme, mode, trace, repeats, storage="columnar"
                )
                for mode in ("batched", "compiled")
            }
            compiled_cells.extend(row.values())
            ratio = (
                row["compiled"]["accesses_per_sec"]
                / row["batched"]["accesses_per_sec"]
            )
            print(
                f"{scheme:>10} {row['compiled']['accesses_per_sec']:>10.0f}"
                f" {row['batched']['accesses_per_sec']:>10.0f} {ratio:>5.2f}x"
            )
    else:
        print(
            "\ncompiled replay core: extension not built — section skipped "
            "(python setup.py build_ext --inplace)"
        )

    micro_blocks = _env_int("REPRO_BENCH_MICRO_BLOCKS", DEFAULT_MICRO_BLOCKS)
    micro_accesses = _env_int("REPRO_BENCH_MICRO_ACCESSES", DEFAULT_MICRO_ACCESSES)
    micro_repeats = _env_int("REPRO_BENCH_MICRO_REPEATS", DEFAULT_MICRO_REPEATS)
    micro_cells: List[Dict] = []
    print(
        f"\nPath ORAM backend micro: 2^{micro_blocks.bit_length() - 1} blocks, "
        f"{micro_accesses} accesses, best of {micro_repeats}"
    )
    print(f"{'storage':>10} {'acc/s':>10}")
    for storage in storages:
        cell = backend_micro_cell(
            storage, micro_blocks, micro_accesses, micro_repeats
        )
        micro_cells.append(cell)
        print(f"{storage:>10} {cell['accesses_per_sec']:>10.0f}")

    comparisons = {
        "columnar_vs_object_backend": _ratio(micro_cells, "columnar", "object"),
        "array_vs_object_backend": _ratio(micro_cells, "array", "object"),
        "columnar_vs_object_replay_geomean": _ratio(cells, "columnar", "object"),
        "array_vs_object_replay_geomean": _ratio(cells, "array", "object"),
        "batched_vs_scalar_replay_geomean": _pipeline_ratio(pipeline_cells),
        "compiled_vs_batched_replay_geomean": _pipeline_ratio(
            compiled_cells, "compiled", "batched"
        ),
    }
    for name, value in comparisons.items():
        if value is not None:
            print(f"{name}: {value:.2f}x")

    report = {
        "kind": "replay_throughput",
        "version": getattr(repro, "__version__", "0"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "events": events,
        "repeats": repeats,
        "results": cells,
        "pipeline": pipeline_cells,
        "compiled": compiled_cells,
        "backend_micro": micro_cells,
        "comparisons": comparisons,
    }
    path = out_path if out_path is not None else os.environ.get(
        "REPRO_BENCH_OUT", "BENCH_replay.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")
    return report


#: Sweep-bench defaults: a 2x2x2 grid sized so per-cell simulation work
#: dominates pool/fabric dispatch overhead on CI-class machines.
DEFAULT_SWEEP_MISSES = 6000
DEFAULT_SWEEP_WORKERS = 2

_SWEEP_DISABLED = {"0", "off", "none", "disable", "disabled"}


def _sweep_bench_spec():
    """The fixed benchmark sweep: 2 schemes x 2 PLB capacities x 2 traces."""
    from repro.sim.sweep import SweepSpec

    return SweepSpec.from_args(
        ["P_X16", "PC_X32"],
        {"plb_capacity_bytes": ["4KiB", "8KiB"]},
        ["gob", "hmmer"],
    )


def run_sweep_bench(
    misses: Optional[int] = None,
    workers: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Optional[Dict]:
    """Measure sweep-cell throughput: serial vs worker pool vs fabric.

    All modes share one *pre-warmed* trace cache — trace synthesis is a
    per-benchmark fixed cost every mode would duplicate identically, so
    it is paid once outside the timed region — while each mode gets a
    fresh, cold result cache (no cross-mode cell reuse). The wall-clock
    difference is therefore pure execution strategy over the replay
    work. Alongside the timings, the three reports are compared for
    bit-identity (``resilience`` stripped) — the determinism contract the
    fabric advertises — and the verdict lands in the report. Returns the
    report dict, or None when ``REPRO_BENCH_SWEEP=off``.
    """
    if os.environ.get("REPRO_BENCH_SWEEP", "").strip().lower() in _SWEEP_DISABLED:
        print("sweep bench skipped (REPRO_BENCH_SWEEP=off)")
        return None
    import tempfile
    from pathlib import Path

    from repro.fabric import FabricCoordinator, FabricExecutor
    from repro.sim.runner import SimulationRunner
    from repro.sim.sweep import run_sweep

    misses = misses if misses is not None else _env_int(
        "REPRO_BENCH_SWEEP_MISSES", DEFAULT_SWEEP_MISSES
    )
    workers = workers if workers is not None else _env_int(
        "REPRO_BENCH_SWEEP_WORKERS", DEFAULT_SWEEP_WORKERS
    )
    sweep = _sweep_bench_spec()
    n_cells = len(sweep.points()) * len(sweep.bench_names()) + len(
        sweep.bench_names()
    )
    modes = (
        ("serial", 1),
        ("pool", workers),
        ("fabric", workers),
    )
    cells: List[Dict] = []
    reports: Dict[str, str] = {}
    print(
        f"\nsweep-cell throughput: {n_cells} cells, {misses} misses/cell, "
        f"{workers} worker(s)"
    )
    print(f"{'mode':>8} {'workers':>8} {'seconds':>8} {'cells/s':>8}")
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as td:
        traces = Path(td) / "traces"
        warm = SimulationRunner(misses_per_benchmark=misses, cache_dir=traces)
        for name in sweep.bench_names():
            warm.trace(name)
        for mode, n in modes:
            runner = SimulationRunner(
                misses_per_benchmark=misses,
                cache_dir=traces,
                result_cache_dir=Path(td) / mode / "results",
            )
            coordinator = None
            executor = None
            if mode == "fabric":
                coordinator = FabricCoordinator(runner, spawn=n)
                coordinator.start()
                executor = FabricExecutor(coordinator)
            try:
                start = time.perf_counter()
                report = run_sweep(
                    sweep,
                    runner,
                    workers=None if executor is not None else n,
                    executor=executor,
                )
                seconds = time.perf_counter() - start
            finally:
                if coordinator is not None:
                    coordinator.close()
            report = dict(report)
            report.pop("resilience", None)
            reports[mode] = json.dumps(report, sort_keys=True)
            cells.append(
                {
                    "mode": mode,
                    "workers": n,
                    "cells": n_cells,
                    "misses": misses,
                    "seconds": seconds,
                    "cells_per_sec": n_cells / seconds if seconds > 0 else 0.0,
                }
            )
            print(
                f"{mode:>8} {n:>8} {seconds:>8.2f}"
                f" {cells[-1]['cells_per_sec']:>8.2f}"
            )

    rate = {cell["mode"]: cell["cells_per_sec"] for cell in cells}
    identical = reports["serial"] == reports["pool"] == reports["fabric"]
    comparisons = {
        "pool_vs_serial_sweep": (
            rate["pool"] / rate["serial"] if rate.get("serial") else None
        ),
        "fabric_vs_pool_sweep": (
            rate["fabric"] / rate["pool"] if rate.get("pool") else None
        ),
        "fabric_vs_serial_sweep": (
            rate["fabric"] / rate["serial"] if rate.get("serial") else None
        ),
    }
    for name, value in comparisons.items():
        if value is not None:
            print(f"{name}: {value:.2f}x")
    print(f"reports bit-identical across modes: {identical}")

    out = {
        "kind": "sweep_throughput",
        "version": getattr(repro, "__version__", "0"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "misses": misses,
        "workers": workers,
        "results": cells,
        "identical": identical,
        "comparisons": comparisons,
    }
    path = out_path if out_path is not None else os.environ.get(
        "REPRO_BENCH_SWEEP_OUT", "BENCH_sweep.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")
    return out


def check_sweep_report(
    path: str = "BENCH_sweep.json",
    min_parallel_ratio: float = 1.0,
    single_core_ratio: float = 0.6,
) -> None:
    """Fail (SystemExit) when parallel sweep scaling falls below its floor.

    Gates the pool-vs-serial cell-throughput ratio at parity by default —
    ``workers=N`` must never be slower than ``workers=1`` at the bench's
    cell size — and the cross-mode bit-identity verdict. On a machine the
    bench recorded as single-core, parallel speedup is physically
    impossible, so the floor relaxes to ``single_core_ratio`` (the pool
    must still not be catastrophically slower than serial). The fabric
    ratios ride along for tracking but are not gated: spawning worker
    interpreters is a fixed cost a smoke-sized sweep cannot amortise.

    CI runs this right after ``python -m repro bench``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    comparisons = report.get("comparisons", {})
    ratio = comparisons.get("pool_vs_serial_sweep")
    if ratio is None:
        raise SystemExit(
            f"{path} carries no pool-vs-serial sweep comparison "
            "(was the sweep bench skipped?)"
        )
    floor = min_parallel_ratio
    if report.get("cpu_count", 2) < 2:
        floor = min(floor, single_core_ratio)
        print(
            f"single-core machine: parallel scaling cannot exceed 1.0x; "
            f"floor relaxed to {floor:.2f}x"
        )
    if ratio < floor:
        raise SystemExit(
            f"parallel sweep scaling regressed: {ratio:.2f}x serial "
            f"throughput (floor {floor:.2f}x) — see {path}"
        )
    print(
        f"worker pool at {ratio:.2f}x serial sweep throughput "
        f"(floor {floor:.2f}x): ok"
    )
    if not report.get("identical", False):
        raise SystemExit(
            f"sweep reports diverged across serial/pool/fabric modes — "
            f"determinism regression; see {path}"
        )
    fabric = comparisons.get("fabric_vs_pool_sweep")
    if fabric is not None:
        print(f"fabric at {fabric:.2f}x pool sweep throughput (not gated)")


def check_report(
    path: str = "BENCH_replay.json",
    min_backend_ratio: float = 1.0,
    min_pipeline_ratio: float = 1.0,
    min_compiled_ratio: Optional[float] = None,
) -> None:
    """Fail (SystemExit) when an owned hot path regresses below its floor.

    Two gates, both floored at parity by default:

    - the backend micro ratio — the layer the columnar store owns; the
      measured margin on quiet machines is ~1.3-1.9x at the default
      2^18-block scale;
    - the batched-vs-scalar replay geomean — the layer the batched
      pipeline owns; measured margin ~1.05x (the kernels are
      bit-identical, so anything below 1.0x means the batching is pure
      overhead and the pipeline has regressed).

    A third gate arms only when ``min_compiled_ratio`` is given (the CI
    compiled lane passes 1.0): the compiled-vs-batched replay geomean on
    columnar storage — the layer the C core owns; measured margin
    ~1.1-1.3x. Default lanes leave it ``None`` so a report produced
    without the extension (the comparison is ``null``) still passes.

    CI runs this right after ``python -m repro bench``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    comparisons = report.get("comparisons", {})
    ratio = comparisons.get("columnar_vs_object_backend")
    if ratio is None:
        raise SystemExit(
            f"{path} carries no columnar-vs-object backend comparison "
            "(was the bench run with a restricted REPRO_BENCH_STORAGES?)"
        )
    if ratio < min_backend_ratio:
        raise SystemExit(
            f"columnar backend regressed: {ratio:.2f}x object throughput "
            f"(floor {min_backend_ratio:.2f}x) — see {path}"
        )
    print(
        f"columnar backend at {ratio:.2f}x object throughput "
        f"(floor {min_backend_ratio:.2f}x): ok"
    )
    pipeline = comparisons.get("batched_vs_scalar_replay_geomean")
    if pipeline is None:
        raise SystemExit(
            f"{path} carries no batched-vs-scalar replay comparison "
            "(was it produced by a pre-pipeline bench?)"
        )
    if pipeline < min_pipeline_ratio:
        raise SystemExit(
            f"batched replay regressed: {pipeline:.2f}x scalar throughput "
            f"(floor {min_pipeline_ratio:.2f}x) — see {path}"
        )
    print(
        f"batched replay at {pipeline:.2f}x scalar throughput "
        f"(floor {min_pipeline_ratio:.2f}x): ok"
    )
    compiled = comparisons.get("compiled_vs_batched_replay_geomean")
    if min_compiled_ratio is not None:
        if compiled is None:
            raise SystemExit(
                f"{path} carries no compiled-vs-batched replay comparison "
                "(was the extension unbuilt when the bench ran?)"
            )
        if compiled < min_compiled_ratio:
            raise SystemExit(
                f"compiled replay regressed: {compiled:.2f}x batched "
                f"throughput (floor {min_compiled_ratio:.2f}x) — see {path}"
            )
        print(
            f"compiled replay at {compiled:.2f}x batched throughput "
            f"(floor {min_compiled_ratio:.2f}x): ok"
        )
    elif compiled is not None:
        print(
            f"compiled replay at {compiled:.2f}x batched throughput "
            "(not gated on this lane)"
        )


def main() -> None:
    """CLI entry point."""
    run_bench()
    run_sweep_bench()
