"""§6.3: hash bandwidth — PMMAC vs the Merkle baseline.

Two views of the same claim:

- *analytic*: PMMAC verifies 1 block per access vs Z*(L+1) for Merkle
  path verification — 68x at L=16, 132x at L=32 (Z=4);
- *measured*: run both schemes functionally and count bytes through the
  hash unit via the Mac's instrumentation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analytic.hashbw import hash_reduction_factor
from repro.backend.ops import Op
from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.frontend.linear import LinearFrontend
from repro.integrity.adapter import MerkleVerifiedStorage
from repro.presets import pic_x32
from repro.storage.tree import TreeStorage, path_indices
from repro.utils.rng import DeterministicRng


def analytic(levels_range: Tuple[int, ...] = (16, 24, 32)) -> Dict[int, float]:
    """Reduction factor per tree depth (paper: 68x at 16, 132x at 32)."""
    return {levels: hash_reduction_factor(levels) for levels in levels_range}


def measured(num_blocks: int = 2**10, accesses: int = 300) -> Tuple[int, int]:
    """(merkle_bytes, pmmac_bytes) hashed over the same access count.

    The Merkle side drives a LinearFrontend and verifies/updates every
    path; the PMMAC side runs the PIC_X32 frontend with its built-in
    integrity. Byte counts come from each scheme's Mac instrumentation.
    """
    # Merkle baseline: verified storage under an unmodified Frontend.
    suite = CryptoSuite.fast(b"merkle-side")
    cfg = OramConfig(num_blocks=num_blocks, block_bytes=64)
    rng = DeterministicRng(11)
    storage = MerkleVerifiedStorage(TreeStorage(cfg), suite.mac)
    frontend = LinearFrontend(cfg, rng, storage=storage)
    workload = DeterministicRng(5)
    for _ in range(accesses):
        frontend.access(workload.randrange(num_blocks), Op.READ)
    merkle_bytes = suite.mac.bytes_hashed

    # PMMAC side.
    pic = pic_x32(num_blocks=num_blocks, rng=DeterministicRng(11))
    pic.crypto.mac.reset_counters()
    workload = DeterministicRng(5)
    for _ in range(accesses):
        pic.access(workload.randrange(num_blocks), Op.READ)
    pmmac_bytes = pic.crypto.mac.bytes_hashed
    return merkle_bytes, pmmac_bytes


def main() -> None:
    """Print analytic factors and a measured confirmation."""
    print("§6.3 hash bandwidth: PMMAC vs Merkle path verification (Z=4)")
    for levels, factor in analytic().items():
        ref = {16: "68x", 32: "132x"}.get(levels, "-")
        print(f"L={levels}: {factor:.0f}x reduction (paper: {ref})")
    merkle, pmmac = measured()
    print(
        f"measured bytes hashed over identical accesses: Merkle {merkle}, "
        f"PMMAC {pmmac} -> {merkle / max(pmmac, 1):.0f}x"
    )


if __name__ == "__main__":
    main()
