"""Figure 8: apples-to-apples comparison with Ren et al. [26].

Adopts the parameters of that work: 4 DRAM channels, a 2.6 GHz core,
128-byte cache lines / ORAM blocks, Z=3. PC_X64 is the PLB scheme at a
128-byte block (X doubles to 64); PC_X32 keeps 64-byte blocks. The paper
reports ~1.27x geomean speedup for both over the R_X8 baseline and a 95%
cut in PosMap traffic for PC_X64.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.config import ProcessorConfig
from repro.dram.config import DramConfig
from repro.eval.table_cache import cached_figure_table
from repro.sim.metrics import format_table, slowdown_table
from repro.sim.runner import SimulationRunner
from repro.workloads.spec import benchmark_names

#: Fig. 8 scheme row order with the per-scheme cell overrides.
SCHEME_OVERRIDES = {
    "R_X8": {"block_bytes": 128, "blocks_per_bucket": 3},
    "PC_X64": {"block_bytes": 128, "blocks_per_bucket": 3},
    "PC_X32": {"block_bytes": 64, "blocks_per_bucket": 3},
}


def make_runner(misses: Optional[int] = None) -> SimulationRunner:
    """Runner matching [26]'s platform (4 channels, 2.6 GHz, 128 B lines).

    Public so the saved-sweep path (:mod:`repro.eval.sweeps`) drives the
    exact same configuration.
    """
    proc = ProcessorConfig(core_ghz=2.6, line_bytes=128)
    return SimulationRunner(
        proc=proc,
        dram=DramConfig(channels=4),
        proc_ghz=2.6,
        misses_per_benchmark=misses,
    )


#: Back-compat alias (pre-saved-sweep name).
_runner = make_runner


def run(
    benchmarks: Optional[Iterable[str]] = None,
    misses: Optional[int] = None,
) -> Tuple[Dict[str, Dict[str, float]], Dict[str, float]]:
    """Slowdown table for R_X8 / PC_X64 / PC_X32 plus traffic cuts.

    Returns (slowdowns, posmap_traffic) where posmap_traffic maps scheme
    to average PosMap bytes per access. The assembled pair is memoised
    on disk keyed by every cell's canonical identity (baselines
    included); ``--force`` refreshes it (:mod:`repro.eval.table_cache`).
    """
    runner = _runner(misses)
    names = list(benchmarks) if benchmarks is not None else benchmark_names()

    def build():
        results = {
            scheme: {
                n: runner.run_one(scheme, n, **overrides) for n in names
            }
            for scheme, overrides in SCHEME_OVERRIDES.items()
        }
        baselines = runner.baselines(names)
        table = slowdown_table(results, baselines, tuple(SCHEME_OVERRIDES))
        traffic = {
            scheme: {
                bench: r.posmap_bytes / max(r.oram_accesses, 1)
                for bench, r in results[scheme].items()
            }
            for scheme in results
        }
        return [table, traffic]

    cell_keys = [
        runner.result_key(scheme, n, **overrides)
        for scheme, overrides in SCHEME_OVERRIDES.items()
        for n in names
    ] + [runner.result_key("insecure", n) for n in names]
    table, traffic = cached_figure_table("fig8", runner, cell_keys, build)
    return table, traffic


def main() -> None:
    """Print slowdowns and PosMap traffic with [26]'s parameters."""
    table, traffic = run()
    print(
        format_table(
            table,
            benchmark_names(),
            "Figure 8: slowdown vs insecure ([26] parameters: 4ch, 2.6 GHz, Z=3)",
        )
    )
    for scheme in ("PC_X64", "PC_X32"):
        speedup = table["R_X8"]["geomean"] / table[scheme]["geomean"]
        print(f"{scheme} speedup over R_X8: {speedup:.2f}x (paper: ~1.27x)")
    for bench, r_bytes in traffic["R_X8"].items():
        cut = 1 - traffic["PC_X64"][bench] / max(r_bytes, 1)
        print(f"PC_X64 PosMap traffic cut on {bench}: {100 * cut:.0f}% (paper avg: 95%)")


if __name__ == "__main__":
    main()
