"""Ablation: PLB associativity and the no-PLB Unified-tree point (§7.1.3).

Two design questions the paper answers empirically:

- *associativity*: with capacity fixed, a fully associative PLB improves
  performance by <= 10% over direct-mapped, so the hardware stays
  direct-mapped;
- *having a PLB at all*: a Unified tree whose PLB is too small to hold
  anything degenerates to walking the recursion on every access — the
  cost the PLB exists to remove.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.sim.runner import SimulationRunner
from repro.utils.stats import geometric_mean

#: Associativities swept at fixed capacity.
WAYS: Sequence[int] = (1, 2, 4, 8)


def associativity_sweep(
    benchmarks: Optional[Iterable[str]] = None,
    misses: Optional[int] = None,
    capacity_bytes: int = 8 * 1024,
) -> Dict[int, float]:
    """Geomean runtime per associativity, normalised to direct-mapped."""
    runner = SimulationRunner(misses_per_benchmark=misses)
    names = list(benchmarks) if benchmarks is not None else ["gcc", "libq", "mcf"]
    normalised: Dict[int, list] = {w: [] for w in WAYS}
    for name in names:
        per_ways = {}
        for ways in WAYS:
            result = runner.run_one(
                "PC_X32", name, plb_capacity_bytes=capacity_bytes, plb_ways=ways
            )
            per_ways[ways] = result.cycles
        for ways in WAYS:
            normalised[ways].append(per_ways[ways] / per_ways[1])
    return {w: geometric_mean(vals) for w, vals in normalised.items()}


def plb_value(
    benchmarks: Optional[Iterable[str]] = None,
    misses: Optional[int] = None,
) -> Dict[str, float]:
    """Runtime of a crippled-PLB unified design vs the 64 KB PLB design.

    Returns per-benchmark ratios (no-PLB / with-PLB): how much the PLB
    actually buys on each locality class.
    """
    runner = SimulationRunner(misses_per_benchmark=misses)
    names = list(benchmarks) if benchmarks is not None else ["hmmer", "libq", "mcf"]
    out: Dict[str, float] = {}
    for name in names:
        with_plb = runner.run_one("PC_X32", name, plb_capacity_bytes=64 * 1024)
        # A one-block PLB can never hold a useful working set: every
        # access walks the full recursion, like Recursive ORAM over ORamU.
        without = runner.run_one("PC_X32", name, plb_capacity_bytes=64)
        out[name] = without.cycles / with_plb.cycles
    return out


def main() -> None:
    """Print both ablations."""
    print("PLB associativity (runtime vs direct-mapped; paper: <=10% gain)")
    for ways, ratio in associativity_sweep().items():
        print(f"  {ways}-way: {ratio:.3f}")
    print("\nValue of the PLB (crippled-PLB runtime / 64KB-PLB runtime)")
    for name, ratio in plb_value().items():
        print(f"  {name:>7}: {ratio:.2f}x")


if __name__ == "__main__":
    main()
