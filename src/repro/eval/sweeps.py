"""Saved SweepSpecs: the figure sweeps as declarative data.

The fig5 / fig7 / fig8 evaluation modules each hand-roll a loop of
``run_one`` calls over a parameter grid. This module re-expresses those
loops as *saved* :class:`~repro.sim.sweep.SweepSpec` values plus pure
report-to-table converters, so every figure sweep inherits the whole
experiment engine — worker-pool fan-out, on-disk trace/result caching,
progress streaming, deterministic JSON reports — with zero bespoke
orchestration. ``tests/test_eval_sweeps.py`` asserts that each saved
sweep regenerates exactly the table its legacy eval path produces.

- :func:`fig5_sweep` — PC_X32 across the PLB capacity grid (8..128 KiB);
  :func:`fig5_table_from_report` normalises cycles to the 8 KiB point.
- :func:`fig7_sweep` — the four PLB schemes over the locality-spectrum
  benchmark mix; :func:`fig7_rates_from_report` recovers the measured
  PosMap-accesses-per-data-access rates that seed the analytic bars.
- :func:`fig8_sweep` — the [26]-parameter comparison (Z=3, 128-byte
  blocks for R_X8/PC_X64, 64-byte for PC_X32); needs the matching
  :func:`fig8_runner`; :func:`fig8_table_from_report` rebuilds the
  slowdown table keyed by the paper's scheme names.

``SAVED_SWEEPS`` maps figure names to their sweep factories for
programmatic discovery.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import SpecError
from repro.eval import fig5 as _fig5
from repro.eval import fig7 as _fig7
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import SweepSpec
from repro.utils.stats import geometric_mean
from repro.workloads.spec import benchmark_names

#: Fig. 7's default benchmark mix (spans the locality spectrum).
FIG7_BENCHMARKS: Tuple[str, ...] = ("hmmer", "gcc", "h264", "libq", "mcf")

#: Fig. 8 scheme rows: (paper name, spec string pinning [26]'s parameters).
FIG8_SCHEMES: Tuple[Tuple[str, str], ...] = (
    ("R_X8", "R_X8:block_bytes=128,blocks_per_bucket=3"),
    ("PC_X64", "PC_X64:block_bytes=128,blocks_per_bucket=3"),
    ("PC_X32", "PC_X32:block_bytes=64,blocks_per_bucket=3"),
)


# -- Fig. 5: PLB capacity sweep ------------------------------------------------


def fig5_sweep(
    benchmarks: Optional[Iterable[str]] = None,
    capacities: Tuple[int, ...] = _fig5.CAPACITIES,
    scheme: str = "PC_X32",
) -> SweepSpec:
    """The Fig. 5 design-space sweep as a saved SweepSpec."""
    return SweepSpec.from_args(
        schemes=[scheme],
        grid={"plb_capacity_bytes": list(capacities)},
        benchmarks=list(benchmarks) if benchmarks is not None else None,
    )


def fig5_table_from_report(
    report: Mapping[str, object],
    capacities: Tuple[int, ...] = _fig5.CAPACITIES,
) -> Dict[str, Dict[int, float]]:
    """Rebuild fig5's normalised table from a sweep report.

    Same shape as :func:`repro.eval.fig5.run`:
    ``table[benchmark][capacity_bytes] = cycles / cycles_at_smallest``.
    """
    cycles: Dict[str, Dict[int, float]] = {}
    for cell in report["cells"]:  # type: ignore[index]
        spec = cell["spec"]
        cycles.setdefault(cell["benchmark"], {})[spec["plb_capacity_bytes"]] = cell[
            "result"
        ]["cycles"]
    return _fig5.normalise(cycles, capacities)


# -- Fig. 7: measured PosMap rates ---------------------------------------------


def fig7_sweep(
    benchmarks: Optional[Iterable[str]] = None,
) -> SweepSpec:
    """The Fig. 7 measurement matrix (PLB schemes x locality mix)."""
    return SweepSpec.from_args(
        schemes=list(_fig7.PLB_SCHEMES),
        benchmarks=(
            list(benchmarks) if benchmarks is not None else list(FIG7_BENCHMARKS)
        ),
    )


def fig7_rates_from_report(
    report: Mapping[str, object],
) -> Dict[str, float]:
    """PosMap tree accesses per data access, per scheme, from a report.

    Exactly :func:`repro.eval.fig7.measure_posmap_rate`'s arithmetic,
    applied to the sweep's serialized SimResults.
    """
    posmap: Dict[str, int] = {}
    data: Dict[str, int] = {}
    for cell in report["cells"]:  # type: ignore[index]
        scheme = cell["scheme"]
        result = cell["result"]
        data[scheme] = data.get(scheme, 0) + result["oram_accesses"]
        posmap[scheme] = (
            posmap.get(scheme, 0)
            + result["tree_accesses"]
            - result["oram_accesses"]
        )
    return {
        scheme: (posmap[scheme] / data[scheme] if data[scheme] else 0.0)
        for scheme in data
    }


# -- Fig. 8: [26]-parameter comparison -----------------------------------------


def fig8_sweep(benchmarks: Optional[Iterable[str]] = None) -> SweepSpec:
    """The Fig. 8 scheme matrix as a saved SweepSpec."""
    return SweepSpec.from_args(
        schemes=[spec for _name, spec in FIG8_SCHEMES],
        benchmarks=(
            list(benchmarks) if benchmarks is not None else benchmark_names()
        ),
    )


def fig8_runner(misses: Optional[int] = None) -> SimulationRunner:
    """The runner matching [26]'s platform (4 channels, 2.6 GHz, 128 B)."""
    from repro.eval.fig8 import make_runner

    return make_runner(misses)


def fig8_table_from_report(
    report: Mapping[str, object],
) -> Dict[str, Dict[str, float]]:
    """Rebuild fig8's slowdown table (paper scheme names + geomean rows)."""
    label_to_name = {
        spec_string: name for name, spec_string in FIG8_SCHEMES
    }
    table: Dict[str, Dict[str, float]] = {}
    for cell in report["cells"]:  # type: ignore[index]
        name = label_to_name[cell["scheme"]]
        table.setdefault(name, {})[cell["benchmark"]] = cell["slowdown"]
    for row in table.values():
        row["geomean"] = geometric_mean(list(row.values()))
    return table


#: Saved sweeps by figure name.
SAVED_SWEEPS = {
    "fig5": fig5_sweep,
    "fig7": fig7_sweep,
    "fig8": fig8_sweep,
}


def saved_sweep_names() -> List[str]:
    """Names of all saved figure sweeps."""
    return sorted(SAVED_SWEEPS)


def saved_sweep(name: str) -> Callable[..., SweepSpec]:
    """The saved sweep factory for ``name``.

    Unknown names raise :class:`~repro.errors.SpecError` listing every
    available saved sweep, so callers (the ``sweep --saved`` CLI
    included) surface the whole menu instead of a bare KeyError.
    """
    try:
        return SAVED_SWEEPS[name]
    except KeyError:
        raise SpecError(
            f"unknown saved sweep {name!r}; "
            f"available: {', '.join(saved_sweep_names())}"
        ) from None
