"""§6.3 bench: PMMAC vs Merkle hash bandwidth, analytic and measured."""

from conftest import full_run, run_once

from repro.eval import hashbw


def test_hash_bandwidth_analytic(benchmark):
    factors = run_once(benchmark, hashbw.analytic, tuple(range(16, 33, 4)))
    print()
    print("§6.3 — PMMAC hash reduction (paper: 68x at L=16, 132x at L=32)")
    for levels, factor in factors.items():
        print(f"  L={levels}: {factor:.0f}x")
    assert factors[16] == 68.0
    assert factors[32] == 132.0


def test_hash_bandwidth_measured(benchmark):
    accesses = 600 if full_run() else 200
    merkle, pmmac = run_once(
        benchmark, hashbw.measured, num_blocks=2**10, accesses=accesses
    )
    reduction = merkle / max(pmmac, 1)
    print()
    print(f"§6.3 measured — Merkle {merkle} B, PMMAC {pmmac} B: {reduction:.0f}x")
    # The functional measurement includes sibling-tag bytes, so it lands
    # near (but above) the block-count analytic bound for this tree depth.
    assert reduction > 30
