"""Figure 7 bench: KB per ORAM access at 4/16/64 GB."""

from conftest import run_once

from repro.eval import fig7
from repro.utils.units import GiB


def test_fig7_scalability(benchmark, bench_benchmarks, bench_misses):
    bars = run_once(
        benchmark, fig7.run, benchmarks=bench_benchmarks, misses=bench_misses
    )
    print()
    print("Fig 7 — KB/access, PosMap share in parens "
          "(paper: PC cuts 82%/38% at 4GB, 90%/57% at 64GB)")
    by_cap = {}
    for bar in bars:
        by_cap.setdefault(bar.capacity_bytes, []).append(bar)
    for cap, group in by_cap.items():
        row = "  ".join(
            f"{b.scheme}={b.total_kb:.1f}({100 * b.posmap_fraction:.0f}%)"
            for b in group
        )
        print(f"  {cap // GiB:>3}GB: {row}")
    lookup = {(b.scheme, b.capacity_bytes): b for b in bars}
    for cap in (4 * GiB, 64 * GiB):
        r, pc = lookup[("R_X8", cap)], lookup[("PC_X32", cap)]
        assert pc.total_kb < r.total_kb
        assert pc.posmap_kb < r.posmap_kb
    # The cut deepens with capacity (paper: 38% -> 57% total), because
    # R_X8 adds recursion levels while the PLB schemes stay flat. The
    # absolute cut depends on workload locality; see EXPERIMENTS.md.
    cut4 = 1 - lookup[("PC_X32", 4 * GiB)].total_kb / lookup[("R_X8", 4 * GiB)].total_kb
    cut64 = (
        1 - lookup[("PC_X32", 64 * GiB)].total_kb / lookup[("R_X8", 64 * GiB)].total_kb
    )
    print(f"  PC_X32 total-traffic cut: {100 * cut4:.0f}% @4GB -> {100 * cut64:.0f}% @64GB")
    assert cut64 > cut4
    # R's PosMap fraction grows with capacity; PI_X8 is posmap-heavy.
    assert (
        lookup[("R_X8", 64 * GiB)].posmap_fraction
        > lookup[("R_X8", 4 * GiB)].posmap_fraction
    )
    assert (
        lookup[("PI_X8", 4 * GiB)].posmap_fraction
        > lookup[("PIC_X32", 4 * GiB)].posmap_fraction
    )
