"""Table 2 bench: ORAM tree latency vs DRAM channel count."""

from conftest import run_once

from repro.eval import table2


def test_table2_dram_channels(benchmark):
    latencies = run_once(benchmark, table2.run)
    print()
    print("Tab 2 — ORAM latency (proc cycles), measured | paper")
    for channels, cycles in latencies.items():
        print(f"  {channels} ch: {cycles:7.0f} | {table2.PAPER_LATENCY[channels]}")
    insecure = table2.insecure_latency()
    print(f"  insecure: {insecure:.0f} | {table2.PAPER_INSECURE}")
    for channels, cycles in latencies.items():
        paper = table2.PAPER_LATENCY[channels]
        assert abs(cycles - paper) / paper < 0.10
    assert abs(insecure - table2.PAPER_INSECURE) / table2.PAPER_INSECURE < 0.10
