"""Figure 3 bench: recursion overhead curves across capacities."""

from conftest import run_once

from repro.eval import fig3


def test_fig3_recursion_overhead(benchmark):
    data = run_once(benchmark, fig3.run)
    print()
    caps = [c for c, _ in next(iter(data.values()))]
    print("Fig 3 — % bytes from PosMap ORAMs (paper at 4 GB: b64 56%, b128 39%)")
    print("log2(cap):", " ".join(f"{c:5d}" for c in caps))
    for label, points in data.items():
        print(f"{label:>12}:", " ".join(f"{100 * f:5.1f}" for _, f in points))
    # Shape assertions: the headline points and the growth trend.
    b64 = dict(data["b64_pm8"])
    b128 = dict(data["b128_pm8"])
    assert abs(b64[32] - 0.56) < 0.03
    assert abs(b128[32] - 0.39) < 0.04
    assert b64[40] > b64[30]
