"""Figure 9 bench: PC_X32 speedup over the Phantom 4 KB configuration."""

from conftest import run_once

from repro.eval import fig9
from repro.utils.stats import geometric_mean


def test_fig9_phantom(benchmark, bench_benchmarks, bench_misses):
    speedups = run_once(
        benchmark, fig9.run, benchmarks=bench_benchmarks, misses=bench_misses
    )
    print()
    print("Fig 9 — PC_X32 speedup over Phantom 4KB blocks (paper: ~10x avg)")
    for name, s in speedups.items():
        print(f"  {name:>7}: {s:6.1f}x")
    gm = geometric_mean(list(speedups.values()))
    ratio = fig9.byte_movement_ratio()
    print(f"  geomean: {gm:.1f}x; byte-movement ratio {100 * ratio:.1f}% (paper 2.1%)")
    assert gm > 3.0  # order-of-magnitude class win
    assert abs(ratio - 0.021) < 0.003
