"""Figure 6 bench: R_X8 vs PC_X32 vs PIC_X32 slowdowns."""

from conftest import run_once

from repro.eval import fig6


def test_fig6_composed_schemes(benchmark, bench_benchmarks, bench_misses):
    table = run_once(
        benchmark, fig6.run, benchmarks=bench_benchmarks, misses=bench_misses
    )
    print()
    print("Fig 6 — slowdown vs insecure (paper: PC 1.43x over R; PIC +7%)")
    for scheme, row in table.items():
        cells = " ".join(f"{b}={v:.2f}" for b, v in row.items() if b != "geomean")
        print(f"  {scheme:>8}: {cells}  geomean={row['geomean']:.2f}")
    pc_speedup = table["R_X8"]["geomean"] / table["PC_X32"]["geomean"]
    pic_overhead = table["PIC_X32"]["geomean"] / table["PC_X32"]["geomean"]
    print(f"  PC speedup {pc_speedup:.2f}x; PIC overhead {100 * (pic_overhead - 1):.0f}%")
    # Shape: PC strictly beats R; PMMAC costs a modest premium.
    assert pc_speedup > 1.1
    assert 1.0 <= pic_overhead < 1.35
