"""Ablation bench: PLB associativity (§7.1.3) and PLB value."""

from conftest import run_once

from repro.eval import ablation_plb


def test_plb_associativity(benchmark, bench_benchmarks, bench_misses):
    ratios = run_once(
        benchmark,
        ablation_plb.associativity_sweep,
        benchmarks=bench_benchmarks,
        misses=bench_misses,
    )
    print()
    print("PLB associativity ablation (paper: full-assoc gains <= 10%)")
    for ways, ratio in ratios.items():
        print(f"  {ways}-way vs direct-mapped: {ratio:.3f}")
    assert ratios[1] == 1.0
    # Higher associativity may help but never by more than ~10%.
    for ways in (2, 4, 8):
        assert ratios[ways] > 0.85
        assert ratios[ways] < 1.05


def test_plb_value(benchmark, bench_benchmarks, bench_misses):
    ratios = run_once(
        benchmark,
        ablation_plb.plb_value,
        benchmarks=bench_benchmarks,
        misses=bench_misses,
    )
    print()
    print("Value of the PLB (no-PLB runtime / 64KB-PLB runtime)")
    for name, ratio in ratios.items():
        print(f"  {name:>7}: {ratio:.2f}x")
    # High-locality workloads gain the most; even mcf must not lose.
    assert max(ratios.values()) > 1.2
    assert min(ratios.values()) >= 0.95
