"""Microbenchmarks: core primitive throughput (not a paper figure).

These quantify the simulator itself — Backend accesses/s, Frontend
accesses/s per scheme, PRF/MAC calls/s — so regressions in the library's
own performance are visible in CI.
"""

import pytest

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.crypto.suite import CryptoSuite
from repro.presets import build_frontend
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.system import replay_trace
from repro.sim.timing import OramTimingModel
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


def test_replay_hot_path_throughput(benchmark):
    """End-to-end replay loop: trace events through a PLB frontend."""
    frontend = build_frontend("PC_X32", num_blocks=2**12, rng=DeterministicRng(7))
    timing = OramTimingModel(tree_latency_cycles=1000.0)
    rng = DeterministicRng(8)
    trace = MissTrace(name="micro", instructions=200_000, mem_refs=60_000,
                      l1_hits=50_000, l2_hits=8_000)
    trace.events = [
        MissEvent(rng.randrange(2**12), rng.random() < 0.3) for _ in range(500)
    ]

    def replay_once():
        replay_trace(frontend, trace, timing, scheme="PC_X32")

    benchmark(replay_once)


@pytest.mark.parametrize("scheme", ["P_X16", "PIC_X32"])
@pytest.mark.parametrize("storage", ["object", "array"])
def test_replay_throughput_by_storage(benchmark, scheme, storage):
    """Replay throughput per storage backend.

    Reuses the `repro bench` trace constructor so this pytest-benchmark
    cell and the CI BENCH_replay.json artifact measure the same workload.
    """
    from repro.eval.bench import BENCH_BLOCKS, bench_trace

    frontend = build_frontend(
        scheme, num_blocks=BENCH_BLOCKS, rng=DeterministicRng(7), storage=storage
    )
    timing = OramTimingModel(tree_latency_cycles=1000.0)
    trace = bench_trace(500)

    def replay_once():
        replay_trace(frontend, trace, timing, scheme=scheme)

    benchmark(replay_once)


def test_backend_access_throughput(benchmark):
    config = OramConfig(num_blocks=2**12, block_bytes=64)
    backend = PathOramBackend(config, TreeStorage(config), DeterministicRng(1))
    rng = DeterministicRng(2)
    posmap = {}

    def one_access():
        addr = rng.randrange(2**12)
        leaf = posmap.get(addr, rng.random_leaf(config.levels))
        new_leaf = backend.random_leaf()
        posmap[addr] = new_leaf
        backend.access(Op.READ, addr, leaf, new_leaf)

    benchmark(one_access)


@pytest.mark.parametrize("scheme", ["R_X8", "P_X16", "PC_X32", "PI_X8", "PIC_X32"])
def test_frontend_access_throughput(benchmark, scheme):
    frontend = build_frontend(scheme, num_blocks=2**12, rng=DeterministicRng(3))
    rng = DeterministicRng(4)

    def one_access():
        frontend.read(rng.randrange(2**12))

    benchmark(one_access)


def test_prf_fast_throughput(benchmark):
    prf = CryptoSuite.fast().prf
    counter = iter(range(10**9))

    def one_call():
        prf.leaf_for(1234, next(counter), 24)

    benchmark(one_call)


def test_prf_reference_aes_throughput(benchmark):
    prf = CryptoSuite.reference().prf
    counter = iter(range(10**9))

    def one_call():
        prf.leaf_for(1234, next(counter), 24)

    benchmark(one_call)


def test_mac_sha3_throughput(benchmark):
    mac = CryptoSuite.reference().mac
    payload = bytes(64)
    counter = iter(range(10**9))

    def one_call():
        mac.block_tag(next(counter), 7, payload)

    benchmark(one_call)


def test_dram_path_model_throughput(benchmark):
    from repro.dram.model import DramModel

    model = DramModel(25, 320)
    rng = DeterministicRng(5)

    def one_path():
        model.path_access_cycles(rng.random_leaf(25))

    benchmark(one_path)
