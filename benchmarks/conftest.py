"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper. Default
parameters are scaled for quick runs; set ``REPRO_FULL=1`` to use the
full SPEC stand-in suite and larger miss budgets (minutes instead of
seconds). Every bench prints the rows/series the paper reports so the
output can be compared side by side with EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.table_cache import FIGURE_CACHE_ENV
from repro.sim.result_cache import RESULT_CACHE_ENV
from repro.sim.trace_cache import CACHE_ENV


@pytest.fixture(autouse=True, scope="session")
def _hermetic_caches(tmp_path_factory):
    """Keep benchmark runs off the developer's user-level caches.

    Mirrors the fixture in tests/conftest.py (separate conftest scope).
    Benchmarks measure real replay work, so the result cache in
    particular must never serve a cell from a previous run.
    """
    previous = {
        env: os.environ.get(env)
        for env in (CACHE_ENV, RESULT_CACHE_ENV, FIGURE_CACHE_ENV)
    }
    os.environ[CACHE_ENV] = str(tmp_path_factory.mktemp("trace-cache"))
    os.environ[RESULT_CACHE_ENV] = str(tmp_path_factory.mktemp("result-cache"))
    os.environ[FIGURE_CACHE_ENV] = str(tmp_path_factory.mktemp("figure-cache"))
    yield
    for env, value in previous.items():
        if value is None:
            os.environ.pop(env, None)
        else:
            os.environ[env] = value


def full_run() -> bool:
    """True when REPRO_FULL=1 requests paper-scale runs."""
    return bool(os.environ.get("REPRO_FULL"))


@pytest.fixture
def bench_benchmarks():
    """Benchmark subset: 3 representative locality classes, or all 11."""
    if full_run():
        from repro.workloads.spec import benchmark_names

        return benchmark_names()
    return ["hmmer", "libq", "mcf"]


@pytest.fixture
def bench_misses():
    """LLC miss budget per benchmark point."""
    return 20_000 if full_run() else 1_500


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
