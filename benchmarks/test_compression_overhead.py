"""§5.3 bench: compressed PosMap geometry and group-remap overhead."""

from conftest import run_once

from repro.eval import compression


def test_compression_geometry(benchmark):
    facts = run_once(benchmark, compression.run)
    print()
    print(
        f"§5.3 — X={facts.uncompressed_fanout} -> X'={facts.compressed_fanout} "
        f"(paper: 16 -> 32); worst-case remap "
        f"{100 * facts.worst_case_remap_overhead:.2f}% (paper 0.2%)"
    )
    assert facts.uncompressed_fanout == 16
    assert facts.compressed_fanout == 32
    assert abs(facts.worst_case_remap_overhead - 0.002) < 2e-4


def test_group_remap_overhead_measured(benchmark):
    beta = 4
    rate = run_once(benchmark, compression.measured_remap_overhead, beta=beta)
    expected = 31 / (1 << beta)
    print()
    print(f"§5.2.2 measured relocations/access at beta={beta}: {rate:.3f} "
          f"(worst-case bound {expected:.3f})")
    assert abs(rate - expected) / expected < 0.25
