"""Table 3 bench: ASIC area breakdown vs channel count."""

from conftest import run_once

from repro.eval import table3


def test_table3_area(benchmark):
    results = run_once(benchmark, table3.run)
    print()
    print("Tab 3 — post-synthesis mm^2, measured | paper total")
    for ch, breakdown in results.items():
        paper_total = table3.PAPER_TABLE3[ch][8]
        pct = breakdown.percentages()
        print(
            f"  {ch}ch: total {breakdown.total:.3f}|{paper_total:.3f}  "
            f"frontend {pct['frontend']:.1f}% pmmac {pct['pmmac']:.1f}% "
            f"plb {pct['plb']:.1f}% aes {pct['aes']:.1f}%"
        )
        assert abs(breakdown.total - paper_total) / paper_total < 0.05
        assert pct["pmmac"] <= 13.0
        assert pct["plb"] <= 10.5
    layout = table3.layout_total()
    print(f"  post-layout 2ch total: {layout:.2f} mm^2 (paper 0.47)")
    assert abs(layout - 0.47) < 0.03
