"""Figure 5 bench: direct-mapped PLB capacity sweep."""

from conftest import run_once

from repro.eval import fig5


def test_fig5_plb_sweep(benchmark, bench_benchmarks, bench_misses):
    table = run_once(
        benchmark, fig5.run, benchmarks=bench_benchmarks, misses=bench_misses
    )
    print()
    print("Fig 5 — runtime normalised to 8 KB PLB (paper: mcf -49% at 128K)")
    caps = fig5.CAPACITIES
    print(f"{'bench':>7} " + " ".join(f"{c // 1024:>5}K" for c in caps))
    for bench, row in table.items():
        print(f"{bench:>7} " + " ".join(f"{row[c]:6.3f}" for c in caps))
    for bench, row in table.items():
        # Larger PLBs never hurt meaningfully, and the sweep is anchored at 1.
        assert row[caps[0]] == 1.0
        assert row[caps[-1]] <= 1.05
    # Low-locality benchmarks benefit the most from PLB capacity.
    if "mcf" in table and "hmmer" in table:
        assert table["mcf"][caps[-1]] <= table["hmmer"][caps[-1]] + 0.25
