"""Figure 8 bench: comparison under the [26] parameters."""

from conftest import run_once

from repro.eval import fig8


def test_fig8_isca_params(benchmark, bench_benchmarks, bench_misses):
    table, traffic = run_once(
        benchmark, fig8.run, benchmarks=bench_benchmarks, misses=bench_misses
    )
    print()
    print("Fig 8 — [26] params (4ch, 2.6 GHz, 128B, Z=3); paper: ~1.27x, 95% cut")
    for scheme, row in table.items():
        print(f"  {scheme:>8}: geomean slowdown {row['geomean']:.2f}")
    for scheme in ("PC_X64", "PC_X32"):
        speedup = table["R_X8"]["geomean"] / table[scheme]["geomean"]
        print(f"  {scheme} speedup over R_X8: {speedup:.2f}x")
        assert speedup > 1.05
    # PosMap *accesses* drop sharply with the PLB; the byte cut depends on
    # the workload's locality because every PLB miss moves a full
    # Unified-tree path (paper reaches 95% on SPEC's friendlier mix;
    # mcf-class pointer chasing is the adversarial case).
    cuts = {
        bench: 1 - traffic["PC_X64"][bench] / max(traffic["R_X8"][bench], 1)
        for bench in traffic["R_X8"]
    }
    for bench, cut in cuts.items():
        print(f"  PC_X64 PosMap traffic cut on {bench}: {100 * cut:.0f}%")
    assert max(cuts.values()) > 0.5  # locality-bearing workloads see deep cuts
