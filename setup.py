from setuptools import setup

# Shim for environments without the `wheel` package, where PEP 660
# editable installs are unavailable; `pip install -e .` falls back to
# `setup.py develop` via this file. All metadata lives in pyproject.toml.
setup()
