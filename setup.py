"""Build script: pure-Python package + one *optional* C extension.

The compiled replay core (``repro.sim.native._replay_core``, selected at
runtime via ``REPRO_REPLAY=compiled``) is strictly optional: when no C
toolchain is available the build degrades to the pure-Python package and
the batched kernel remains the default. ``build_ext`` therefore swallows
compiler/toolchain failures instead of aborting the install.

Build the extension in place for a source checkout::

    python setup.py build_ext --inplace

which places ``_replay_core.*.so`` under ``src/repro/sim/native/``.
"""

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Best-effort extension build: failure means 'no compiled core'."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # toolchain missing entirely
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compiler present but the build failed
            self._skip(exc)

    def _skip(self, exc):
        print(
            f"WARNING: optional extension build failed ({exc!r}); "
            "continuing with the pure-Python replay kernels."
        )


setup(
    name="repro",
    version="0.9.0",
    description=(
        "Freecursive ORAM reproduction: Path ORAM simulator with "
        "columnar storage and an optional compiled replay core"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    ext_modules=[
        Extension(
            "repro.sim.native._replay_core",
            sources=["src/repro/sim/native/_replay_core.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
