"""Unit coverage for the :mod:`repro.resilience` control-plane primitives.

The serving and fabric layers exercise these end to end (see
``test_serve_slo.py`` / ``test_fabric_resilience.py``); this file pins
the primitives' own contracts — determinism of the jittered backoff,
breaker lifecycle, bucket arithmetic, and the degradation ladder — plus
the compatibility re-export of :class:`RetryPolicy` from its old home.
"""

import pytest

from repro.resilience import (
    DEGRADATION_LEVELS,
    CircuitBreaker,
    DegradationController,
    RetryPolicy,
    RpcPolicy,
    TokenBucket,
)


class TestRetryPolicyCompat:
    def test_old_import_paths_still_resolve(self):
        from repro.faults import RetryPolicy as from_faults
        from repro.faults.retry import RetryPolicy as from_faults_retry

        assert from_faults is RetryPolicy
        assert from_faults_retry is RetryPolicy

    def test_delay_schedule_unchanged(self):
        policy = RetryPolicy(attempts=4, backoff=0.05, factor=2.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(2) == pytest.approx(0.05)
        assert policy.delay(3) == pytest.approx(0.10)


class TestRpcPolicy:
    def test_delay_is_deterministic_per_seed(self):
        a = RpcPolicy(seed=7)
        b = RpcPolicy(seed=7)
        c = RpcPolicy(seed=8)
        delays_a = [a.delay(n) for n in range(1, 6)]
        assert delays_a == [b.delay(n) for n in range(1, 6)]
        assert delays_a != [c.delay(n) for n in range(1, 6)]

    def test_jitter_stays_within_band(self):
        policy = RpcPolicy(backoff=0.1, factor=2.0, max_backoff=2.0, jitter=0.5)
        assert policy.delay(1) == 0.0
        for attempt in range(2, 12):
            base = min(0.1 * 2.0 ** (attempt - 2), 2.0)
            assert base * 0.5 <= policy.delay(attempt) <= base * 1.5

    def test_from_env_reads_fabric_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONNECT_RETRIES", "5")
        monkeypatch.setenv("REPRO_RPC_TIMEOUT", "1.5")
        policy = RpcPolicy.from_env(seed=3)
        assert policy.connect_attempts == 5
        assert policy.timeout == 1.5
        assert policy.seed == 3
        # <= 0 disables the per-call deadline entirely.
        monkeypatch.setenv("REPRO_RPC_TIMEOUT", "0")
        assert RpcPolicy.from_env().timeout is None
        monkeypatch.delenv("REPRO_CONNECT_RETRIES")
        monkeypatch.delenv("REPRO_RPC_TIMEOUT")
        default = RpcPolicy.from_env()
        assert default.connect_attempts == 3
        assert default.timeout == 30.0


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third consecutive: trips
        assert breaker.open
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_probe_and_full_close(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=lambda: clock[0])
        assert breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 11.0
        assert breaker.allow()  # cooldown elapsed: half-open probe
        # A probe failure re-opens and restarts the cooldown.
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 22.0
        assert breaker.allow()
        breaker.record_success()
        clock[0] = 0.0  # success fully closes, independent of the clock
        assert breaker.allow()
        assert not breaker.open


class TestTokenBucket:
    def test_rate_and_capacity(self):
        bucket = TokenBucket(rate=2.0)
        assert bucket.ready
        bucket.take()
        bucket.take()
        assert not bucket.ready
        bucket.refill()
        assert bucket.ready

    def test_fractional_rate_accumulates(self):
        bucket = TokenBucket(rate=0.5)
        bucket.take()
        assert not bucket.ready
        bucket.refill()
        assert not bucket.ready  # 0.5 tokens: not yet a whole request
        bucket.refill()
        assert bucket.ready

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=4.0, burst=4.0)
        for _ in range(10):
            bucket.refill()
        taken = 0
        while bucket.ready:
            bucket.take()
            taken += 1
        assert taken == 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(Exception):
            TokenBucket(rate=0.0)
        with pytest.raises(Exception):
            TokenBucket(rate=1.0, burst=0.5)


class TestDegradationController:
    def test_disabled_by_default(self):
        controller = DegradationController()
        assert not controller.enabled
        for epoch in range(50):
            assert controller.observe(epoch, overloaded=True) is None
        assert controller.level == 0
        assert controller.transitions == []

    def test_escalates_and_recovers_with_recorded_transitions(self):
        controller = DegradationController(degrade_after=2, recover_after=3)
        assert controller.observe(0, True) is None
        shift = controller.observe(1, True)
        assert shift == {"epoch": 1, "from": "normal", "to": "shed-low"}
        assert controller.level_name == DEGRADATION_LEVELS[1]
        # Two more overloaded epochs: one level further, then saturate.
        controller.observe(2, True)
        shift = controller.observe(3, True)
        assert shift == {"epoch": 3, "from": "shed-low", "to": "best-effort"}
        assert controller.observe(4, True) is None  # already at the top
        # Clean epochs walk it back down one level per recover_after.
        assert controller.observe(5, False) is None
        assert controller.observe(6, False) is None
        shift = controller.observe(7, False)
        assert shift == {"epoch": 7, "from": "best-effort", "to": "shed-low"}
        assert len(controller.transitions) == 3

    def test_streaks_must_be_consecutive(self):
        controller = DegradationController(degrade_after=3)
        controller.observe(0, True)
        controller.observe(1, True)
        controller.observe(2, False)  # breaks the overload streak
        controller.observe(3, True)
        controller.observe(4, True)
        assert controller.level == 0
        assert controller.observe(5, True) is not None
        assert controller.level == 1
