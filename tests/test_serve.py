"""The serving layer's mechanics: routing, backpressure, accounting.

Lockstep-vs-replay and serial-vs-async determinism live in
``test_serve_lockstep.py``; this file covers everything else — tenant
specs, shard routing and directories, shed/defer policies, histogram
and report shapes, the serve branch of the sweep engine, and input
validation.
"""

import json

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.serve import (
    LatencyHistogram,
    OramService,
    ServeConfig,
    TenantSpec,
    tenants_for,
)
from repro.serve.workload import tenant_region_blocks, tenant_requests
from repro.sim.runner import SimulationRunner


def make_runner(seed: int = 5) -> SimulationRunner:
    return SimulationRunner(misses_per_benchmark=400, seed=seed)


class TestTenantSpec:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            TenantSpec(name="t")
        with pytest.raises(ConfigurationError, match="exactly one"):
            TenantSpec(name="t", benchmark="hmmer", events=((0, False),))

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            TenantSpec(name="t", benchmark="nonesuch")

    def test_accepts_interleaved_mixes(self):
        spec = TenantSpec(name="t", benchmark="hmmer+gob")
        assert spec.workload_label == "hmmer+gob"

    def test_tenants_for_round_robin(self):
        roster = tenants_for(["hmmer", "gob"], 5, requests=10)
        assert [t.benchmark for t in roster] == [
            "hmmer", "gob", "hmmer", "gob", "hmmer",
        ]
        assert roster[0].name == "t0:hmmer"
        assert all(t.requests == 10 for t in roster)
        with pytest.raises(ConfigurationError):
            tenants_for([], 2)
        with pytest.raises(ConfigurationError):
            tenants_for(["hmmer"], 0)

    def test_event_streams_and_region_override(self):
        spec = TenantSpec(
            name="t", events=((3, False), (1, True)), region_blocks=128
        )
        stream = tenant_requests(spec, make_runner(), lines_per_block=1)
        assert stream == [(3, False), (1, True)]
        assert tenant_region_blocks(spec, 64, stream) == 128

    def test_requests_cap_applies_to_benchmark_streams(self):
        runner = make_runner()
        capped = TenantSpec(name="t", benchmark="hmmer", requests=7)
        assert len(tenant_requests(capped, runner, lines_per_block=1)) == 7


class TestServeConfig:
    @pytest.mark.parametrize(
        "field", ["shards", "burst", "max_batch", "queue_capacity"]
    )
    def test_rejects_non_positive_counts(self, field):
        with pytest.raises(ConfigurationError, match=field):
            ServeConfig(**{field: 0})

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="policy"):
            ServeConfig(policy="panic")

    def test_rejects_unknown_mode(self):
        service = OramService(
            tenants_for(["hmmer"], 1, requests=5), runner=make_runner()
        )
        with pytest.raises(ConfigurationError, match="mode"):
            service.run(mode="threads")


class TestShardRouting:
    def test_single_shard_uses_identity_mapping(self):
        service = OramService(
            tenants_for(["hmmer"], 2, requests=20), runner=make_runner()
        )
        shard = service.shards[0]
        assert shard.map_addr(17) == 17
        # Tenant regions are laid back to back, so tenant 1's offset is
        # tenant 0's region size.
        assert service._tenants[1].offset == service._tenants[0].region_blocks

    def test_multi_shard_directories_are_dense_and_disjoint(self):
        service = OramService(
            tenants_for(["hmmer", "gob"], 3, requests=60),
            runner=make_runner(),
            config=ServeConfig(shards=2),
        )
        service.run("serial")
        for shard in service.shards:
            locals_ = sorted(shard._directory.values())
            assert locals_ == list(range(len(locals_)))  # dense, first-touch
        globals_a = set(service.shards[0]._directory)
        globals_b = set(service.shards[1]._directory)
        assert not (globals_a & globals_b)  # hash-partitioned
        assert all(s.stats.requests > 0 for s in service.shards)

    def test_directory_overflow_raises(self):
        service = OramService(
            tenants_for(["hmmer"], 2, requests=200),
            runner=make_runner(),
            config=ServeConfig(shards=2, shard_blocks=2),
        )
        with pytest.raises(ReproError, match="directory overflow"):
            service.run("serial")


class TestBackpressure:
    def test_shed_drops_and_counts(self):
        service = OramService(
            tenants_for(["hmmer"], 3, requests=50),
            runner=make_runner(),
            config=ServeConfig(burst=8, queue_capacity=4, policy="shed"),
        )
        service.run("serial")
        total_shed = sum(t.shed for t in service.tenant_stats)
        assert total_shed > 0
        assert sum(s.stats.shed for s in service.shards) == total_shed
        for tenant in service.tenant_stats:
            # Shed requests are gone for good; every issued request is
            # accounted one way or the other.
            assert tenant.completed + tenant.shed == tenant.issued == 50

    def test_defer_retries_and_completes_everything(self):
        service = OramService(
            tenants_for(["hmmer"], 3, requests=50),
            runner=make_runner(),
            config=ServeConfig(burst=8, queue_capacity=4, policy="defer"),
        )
        service.run("serial")
        assert sum(t.deferred for t in service.tenant_stats) > 0
        for tenant in service.tenant_stats:
            assert tenant.completed == tenant.issued == 50
            assert tenant.shed == 0

    def test_queue_depth_sampled_every_epoch(self):
        service = OramService(
            tenants_for(["hmmer"], 2, requests=30), runner=make_runner()
        )
        service.run("serial")
        stats = service.shards[0].stats
        assert stats.depth_samples == service.epochs
        assert 0 < stats.mean_depth <= stats.depth_max


class TestReporting:
    def test_report_is_json_safe_and_complete(self):
        service = OramService(
            tenants_for(["hmmer", "hmmer+gob"], 2, requests=40),
            runner=make_runner(),
            config=ServeConfig(shards=2),
        )
        service.run("async")
        report = json.loads(json.dumps(service.report()))
        assert report["kind"] == "serve"
        assert report["scheme"] == "PC_X32"
        assert len(report["tenants"]) == 2
        assert len(report["shards"]) == 2
        assert report["totals"]["requests"] == 80
        assert report["totals"]["cycles"] > 0
        for tenant in report["tenants"]:
            for hist in ("service_cycles", "latency_cycles", "wall_us"):
                assert tenant[hist]["count"] == tenant["completed"]
                assert tenant[hist]["p95_bound"] >= tenant[hist]["p50_bound"]

    def test_record_accesses_keeps_full_sequence(self):
        service = OramService(
            tenants_for(["hmmer"], 1, requests=25),
            runner=make_runner(),
            config=ServeConfig(record_accesses=True),
        )
        service.run("serial")
        accesses = service.shards[0].stats.accesses
        assert len(accesses) == 25
        assert all(tenant == 0 for tenant, _addr, _write in accesses)


class TestPreload:
    def test_preload_rejected_after_serving_starts(self):
        service = OramService(
            tenants_for(["hmmer"], 1, requests=10), runner=make_runner()
        )
        service.run("serial")
        with pytest.raises(ReproError, match="before serving"):
            service.preload(0, 0, b"late")

    def test_preload_is_outside_accounting(self):
        service = OramService(
            [TenantSpec(name="t", events=((0, False),) * 4, region_blocks=16)],
            runner=make_runner(),
        )
        service.preload(0, 0, b"hello")
        service.run("serial")
        assert service.tenant_stats[0].completed == 4
        assert service.shards[0].stats.requests == 4


class TestLatencyHistogram:
    def test_buckets_and_quantiles(self):
        hist = LatencyHistogram()
        for value in (1.0, 2.0, 3.0, 100.0):
            hist.record(value)
        image = hist.to_dict()
        assert image["count"] == 4
        assert image["min"] == 1.0 and image["max"] == 100.0
        assert image["mean"] == pytest.approx(26.5)
        assert hist.quantile_bound(0.5) <= hist.quantile_bound(0.99)
        assert hist.quantile_bound(0.99) == 128.0  # 100 rounds up to 2^7
        assert sum(image["buckets"].values()) == 4

    def test_empty_histogram_is_safe(self):
        hist = LatencyHistogram()
        assert hist.mean == 0.0
        assert hist.quantile_bound(0.95) == 0.0
        assert hist.to_dict()["count"] == 0


class TestServeSweepAxes:
    def test_tenants_shards_grid_runs_serve_cells(self):
        from repro.sim.sweep import SweepSpec, run_sweep, sweep_table

        sweep = SweepSpec.from_args(
            schemes=["PC_X32"],
            grid=["tenants=1,2", "shards=1,2"],
            benchmarks=["hmmer"],
        )
        report = run_sweep(sweep, make_runner())
        assert len(report["cells"]) == 4
        assert report["baselines"] == {}
        for cell in report["cells"]:
            assert cell["serve"]["kind"] == "serve"
            assert cell["result"]["cycles"] > 0
        table = sweep_table(report)
        assert "tenants=2" in table and "shards=2" in table
        json.dumps(report)  # the report artifact stays JSON-safe

    def test_serve_axes_reject_bench_axis_mix(self):
        from repro.errors import SpecError
        from repro.sim.sweep import SweepSpec

        with pytest.raises(SpecError, match="cannot be combined"):
            SweepSpec.from_args(
                schemes=["PC_X32"], grid=["tenants=2", "misses=500"]
            )
