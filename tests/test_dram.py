"""DRAM timing model and the subtree layout."""

import pytest

from repro.config import OramConfig
from repro.dram.config import DramConfig
from repro.dram.layout import SubtreeLayout
from repro.dram.model import DramModel


class TestDramConfig:
    def test_row_bytes(self):
        assert DramConfig().row_bytes == 8192

    def test_peak_bandwidth_near_paper(self):
        """667 MHz DDR x 64-bit = ~10.67 GB/s per channel (§7.1.1)."""
        per_channel = DramConfig(channels=1).peak_bandwidth_bytes_per_sec
        assert per_channel == pytest.approx(10.67e9, rel=0.01)

    def test_burst_bytes(self):
        assert DramConfig().burst_bytes == 64

    def test_cycle_conversion(self):
        cfg = DramConfig()
        assert cfg.dram_to_proc_cycles(667, 1.3) == pytest.approx(1300)

    def test_invalid_channels_rejected(self):
        with pytest.raises(ValueError):
            DramConfig(channels=0)


class TestSubtreeLayout:
    def test_subtree_levels_fit_row(self):
        layout = SubtreeLayout(levels=20, bucket_bytes=320, dram=DramConfig())
        # 8192 / 320 = 25 buckets per row: 2^k - 1 <= 25 -> k = 4.
        assert layout.subtree_levels == 4

    def test_root_subtree_is_zero(self):
        layout = SubtreeLayout(levels=10, bucket_bytes=320, dram=DramConfig())
        subtree, index = layout.subtree_of(0, 0)
        assert subtree == 0 and index == 0

    def test_same_subtree_for_shallow_path(self):
        """All levels within the first k land in subtree 0."""
        layout = SubtreeLayout(levels=20, bucket_bytes=320, dram=DramConfig())
        k = layout.subtree_levels
        for level in range(k):
            subtree, _ = layout.subtree_of(level, 12345 % (1 << 20))
            assert subtree == 0

    def test_distinct_leaves_distinct_deep_subtrees(self):
        layout = SubtreeLayout(levels=12, bucket_bytes=320, dram=DramConfig())
        s1, _ = layout.subtree_of(12, 0)
        s2, _ = layout.subtree_of(12, (1 << 12) - 1)
        assert s1 != s2

    def test_row_groups_cover_path(self):
        layout = SubtreeLayout(levels=20, bucket_bytes=320, dram=DramConfig())
        groups = layout.path_row_groups(777)
        assert sum(n for _, _, n in groups) == 21

    def test_row_group_count_matches_chunks(self):
        layout = SubtreeLayout(levels=20, bucket_bytes=320, dram=DramConfig())
        groups = layout.path_row_groups(0)
        expected_chunks = -(-21 // layout.subtree_levels)
        assert len(groups) <= expected_chunks + 1

    def test_level_bounds_checked(self):
        layout = SubtreeLayout(levels=4, bucket_bytes=320, dram=DramConfig())
        with pytest.raises(ValueError):
            layout.subtree_of(5, 0)


class TestDramModel:
    def _model(self, channels=2, levels=25, bucket=320):
        return DramModel(levels, bucket, DramConfig(channels=channels))

    def test_latency_decreases_with_channels(self):
        latencies = [
            self._model(ch).average_oram_latency_proc_cycles(1.3)
            for ch in (1, 2, 4, 8)
        ]
        assert latencies == sorted(latencies, reverse=True)

    def test_scaling_is_sublinear(self):
        """Table 2: 8 channels gain less than 8x (fixed activation cost)."""
        l1 = self._model(1).average_oram_latency_proc_cycles(1.3)
        l8 = self._model(8).average_oram_latency_proc_cycles(1.3)
        assert 2.0 < l1 / l8 < 8.0

    def test_table2_two_channel_point(self):
        """Within 10% of the paper's 1208 cycles at 2 channels."""
        latency = self._model(2).average_oram_latency_proc_cycles(1.3)
        assert latency == pytest.approx(1208, rel=0.10)

    def test_insecure_near_58_cycles(self):
        latency = self._model(2).insecure_access_cycles(1.3)
        assert latency == pytest.approx(58, rel=0.10)

    def test_repeat_path_hits_rows(self):
        model = self._model()
        first = model.path_access_cycles(5)
        second = model.path_access_cycles(5)
        assert second.row_misses <= first.row_misses
        assert second.dram_cycles <= first.dram_cycles

    def test_oram_access_is_two_paths(self):
        model = self._model()
        cycles = model.oram_access_cycles(9)
        assert cycles > 0
        assert model.total_accesses == 2

    def test_burst_accounting(self):
        model = self._model(levels=10, bucket=320)
        stats = model.path_access_cycles(0)
        assert stats.bursts == 11 * 5  # 320 B = 5 bursts per bucket

    def test_deeper_tree_costs_more(self):
        shallow = DramModel(15, 320, DramConfig()).average_path_cycles(64)
        deep = DramModel(25, 320, DramConfig()).average_path_cycles(64)
        assert deep > shallow

    def test_bigger_buckets_cost_more(self):
        small = DramModel(20, 320, DramConfig()).average_path_cycles(64)
        big = DramModel(20, 384, DramConfig()).average_path_cycles(64)
        assert big > small
