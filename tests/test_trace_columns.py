"""Columnar MissTrace view: lazy materialisation + binary round-trip."""

from repro.proc.hierarchy import MissEvent, MissTrace
from repro.utils.rng import DeterministicRng


def make_trace(events: int = 500, seed: int = 3) -> MissTrace:
    rng = DeterministicRng(seed)
    trace = MissTrace(
        name="cols", instructions=1000, mem_refs=400, l1_hits=300, l2_hits=50
    )
    trace.events = [
        MissEvent(rng.randrange(1 << 30), rng.random() < 0.4)
        for _ in range(events)
    ]
    return trace


class TestColumns:
    def test_columns_match_events(self):
        trace = make_trace()
        line_addrs, is_write = trace.columns()
        assert list(line_addrs) == [e.line_addr for e in trace.events]
        assert [bool(w) for w in is_write] == [e.is_write for e in trace.events]

    def test_columns_cached(self):
        trace = make_trace()
        first = trace.columns()
        assert trace.columns()[0] is first[0]

    def test_append_invalidates_cache(self):
        trace = make_trace(events=10)
        trace.columns()
        trace.events.append(MissEvent(7, True))
        line_addrs, is_write = trace.columns()
        assert len(line_addrs) == 11
        assert list(line_addrs)[-1] == 7 and bool(list(is_write)[-1])

    def test_rebinding_events_invalidates_cache(self):
        trace = make_trace(events=4)
        trace.columns()
        trace.events = [MissEvent(1, False), MissEvent(2, True)]
        line_addrs, _ = trace.columns()
        assert list(line_addrs) == [1, 2]

    def test_empty_trace(self):
        trace = MissTrace(name="empty")
        line_addrs, is_write = trace.columns()
        assert len(line_addrs) == 0 and len(is_write) == 0

    def test_columns_cache_excluded_from_equality(self):
        a, b = make_trace(), make_trace()
        a.columns()
        assert a == b  # one has a materialised view, one does not


class TestRoundTrip:
    def test_binary_round_trip_preserves_events_and_columns(self):
        trace = make_trace()
        loaded = MissTrace.from_bytes(trace.to_bytes())
        assert loaded == trace
        line_addrs, is_write = loaded.columns()
        assert list(line_addrs) == [e.line_addr for e in trace.events]
        assert [bool(w) for w in is_write] == [e.is_write for e in trace.events]

    def test_round_trip_uncompressed(self):
        trace = make_trace(events=64)
        assert MissTrace.from_bytes(trace.to_bytes(compress=False)) == trace

    def test_serialisation_is_stable_under_column_materialisation(self):
        """to_bytes is byte-identical whether or not columns were built."""
        cold, warm = make_trace(), make_trace()
        warm.columns()
        assert cold.to_bytes() == warm.to_bytes()
        assert cold.to_bytes(compress=False) == warm.to_bytes(compress=False)

    def test_loaded_trace_replays_identically(self):
        """Cache-loaded traces feed the batched kernel bit-identically."""
        from repro.presets import build_frontend
        from repro.sim.system import replay_trace
        from repro.sim.timing import OramTimingModel

        trace = make_trace(events=200, seed=9)
        # Rescale addresses into the frontend's space.
        trace.events = [
            MissEvent(e.line_addr % (1 << 10), e.is_write) for e in trace.events
        ]
        loaded = MissTrace.from_bytes(trace.to_bytes())
        timing = OramTimingModel(tree_latency_cycles=1000.0)
        results = []
        for source in (trace, loaded):
            frontend = build_frontend(
                "PC_X32", num_blocks=2**10, rng=DeterministicRng(7)
            )
            results.append(replay_trace(frontend, source, timing))
        assert results[0] == results[1]


class TestCacheAliasing:
    def test_rebind_to_recycled_list_object_invalidates(self):
        """CPython's list free-list can hand a new list the old list's
        address; the cache must key on the reference, not id()."""
        trace = MissTrace(name="alias")
        trace.events = [MissEvent(1, False), MissEvent(2, False)]
        trace.columns()
        trace.events = []  # old list freed -> address reusable
        trace.events = [MissEvent(7, True), MissEvent(8, True)]
        line_addrs, is_write = trace.columns()
        assert list(line_addrs) == [7, 8]
        assert [bool(w) for w in is_write] == [True, True]
