"""Unit tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    chi_square_uniform,
    geometric_mean,
    histogram,
    normalize,
)


class TestGeometricMean:
    def test_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestHistogram:
    def test_counts(self):
        assert histogram([1, 2, 2, 3, 3, 3]) == {1: 1, 2: 2, 3: 3}

    def test_empty(self):
        assert histogram([]) == {}


class TestChiSquare:
    def test_uniform_is_small(self):
        stat, dof = chi_square_uniform([100, 100, 100, 100])
        assert stat == 0.0
        assert dof == 3

    def test_skewed_is_large(self):
        stat, _ = chi_square_uniform([400, 0, 0, 0])
        assert stat > 100

    def test_rejects_single_bin(self):
        with pytest.raises(ValueError):
            chi_square_uniform([10])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            chi_square_uniform([0, 0])


class TestRunningStats:
    def test_mean_and_extremes(self):
        rs = RunningStats()
        for x in (1.0, 2.0, 3.0):
            rs.add(x)
        assert rs.mean == pytest.approx(2.0)
        assert rs.min == 1.0
        assert rs.max == 3.0
        assert rs.count == 3

    def test_variance(self):
        rs = RunningStats()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            rs.add(x)
        assert rs.variance == pytest.approx(32.0 / 7.0)
        assert rs.stddev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_variance_single_sample_is_zero(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.variance == 0.0

    def test_as_dict_keys(self):
        rs = RunningStats()
        rs.add(1.0)
        assert set(rs.as_dict()) == {"count", "mean", "stddev", "min", "max"}

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_matches_direct_computation(self, values):
        rs = RunningStats()
        for v in values:
            rs.add(v)
        assert rs.mean == pytest.approx(sum(values) / len(values), abs=1e-6)
        assert rs.max == max(values)
        assert rs.min == min(values)


class TestNormalize:
    def test_divides(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)
