"""Passive observer and active tamperer utilities."""

import pytest

from repro.adversary.observer import (
    AccessEvent,
    TraceObserver,
    distinguish_by_tree_pattern,
)
from repro.adversary.tamper import Tamperer
from repro.config import OramConfig
from repro.crypto.pad import PadGenerator
from repro.storage.encrypted import EncryptedTreeStorage


class TestObserver:
    def test_records_reads_and_writes(self):
        obs = TraceObserver()
        view = obs.for_tree(0)
        view.on_path_read(5, [0, 1, 3])
        view.on_path_write(5, [0, 1, 3])
        assert obs.events == [AccessEvent(0, "read", 5), AccessEvent(0, "write", 5)]

    def test_tree_sequence_filters_reads(self):
        obs = TraceObserver()
        obs.for_tree(1).on_path_read(0, [])
        obs.for_tree(0).on_path_write(0, [])
        obs.for_tree(0).on_path_read(2, [])
        assert obs.tree_sequence() == [1, 0]

    def test_leaf_sequence_per_tree(self):
        obs = TraceObserver()
        obs.for_tree(0).on_path_read(3, [])
        obs.for_tree(1).on_path_read(9, [])
        obs.for_tree(0).on_path_read(4, [])
        assert obs.leaf_sequence(0) == [3, 4]
        assert obs.leaf_sequence(1) == [9]

    def test_leaf_histogram(self):
        obs = TraceObserver()
        for leaf in (0, 1, 1, 3):
            obs.for_tree(0).on_path_read(leaf, [])
        assert obs.leaf_histogram(0, 4) == [1, 2, 0, 1]

    def test_clear(self):
        obs = TraceObserver()
        obs.for_tree(0).on_path_read(0, [])
        obs.clear()
        assert len(obs) == 0

    def test_distinguisher(self):
        assert distinguish_by_tree_pattern([1, 0, 0], [1, 0, 1])
        assert not distinguish_by_tree_pattern([1, 0, 0], [1, 0, 0, 1])


class TestTamperer:
    @pytest.fixture
    def storage(self):
        config = OramConfig(num_blocks=32, block_bytes=32)
        return EncryptedTreeStorage(config, PadGenerator(b"tamper-key"))

    def test_flip_bit_changes_image(self, storage):
        tamperer = Tamperer(storage)
        before = storage.raw_image(0)
        tamperer.flip_bit(0, 10, 3)
        after = storage.raw_image(0)
        assert before != after
        assert before[10] ^ after[10] == 8

    def test_snapshot_replay_roundtrip(self, storage):
        tamperer = Tamperer(storage)
        tamperer.snapshot(tag=1)
        original = storage.raw_image(0)
        tamperer.flip_bit(0, 0)
        tamperer.replay_bucket(0, tag=1)
        assert storage.raw_image(0) == original

    def test_replay_all(self, storage):
        tamperer = Tamperer(storage)
        tamperer.snapshot()
        images = [storage.raw_image(i) for i in range(4)]
        for i in range(4):
            tamperer.flip_bit(i, 5)
        tamperer.replay_all()
        assert [storage.raw_image(i) for i in range(4)] == images

    def test_seed_rollback(self, storage):
        storage.read_path(0)
        storage.write_path(0)
        tamperer = Tamperer(storage)
        seed = tamperer.read_seed(0)
        new_seed = tamperer.rollback_seed(0, delta=1)
        assert new_seed == max(seed - 1, 0)
        assert tamperer.read_seed(0) == new_seed

    def test_rollback_clamps_at_zero(self, storage):
        tamperer = Tamperer(storage)
        assert tamperer.rollback_seed(0, delta=10**6) == 0
