"""Crash-safety of every on-disk cache: old value or new value, never torn.

Kill-points are injected at each step of the atomic write protocol
(``begin`` — before anything touches disk; ``tmp`` — sidecar written,
rename pending; ``replace`` — rename done) and the cache is reopened
cold each time. The invariant: a reader after the crash sees either the
previous committed value or the new one, and a deterministic byte of
damage to any entry is a counted, warned eviction — never an unhandled
exception.
"""

import warnings

import pytest

from repro.errors import CacheCorruptionWarning, FaultKillPoint
from repro.eval.table_cache import FigureTableCache
from repro.faults import injected
from repro.proc.hierarchy import MissEvent, MissTrace
from repro.sim.metrics import SimResult
from repro.sim.result_cache import ResultCache
from repro.sim.trace_cache import TraceCache


def _trace(tag: int) -> MissTrace:
    trace = MissTrace(
        name="bench", instructions=1000 + tag, mem_refs=100, l1_hits=50
    )
    trace.events = [MissEvent((i * 13 + tag) % 512, i % 3 == 0) for i in range(40)]
    return trace


def _result(tag: int) -> SimResult:
    return SimResult(
        benchmark="gob",
        scheme="PC_X32",
        cycles=1000.5 + tag,
        instructions=10 + tag,
        llc_misses=5,
        oram_accesses=6,
        tree_accesses=12,
    )


def _table(tag: int):
    return {"gob": {8192: 1.0 + tag}, "n": tag}


#: (cache factory, old/new payload factory, kind prefix, load-equality fn)
CACHES = [
    pytest.param(TraceCache, _trace, "trace", id="trace"),
    pytest.param(ResultCache, _result, "result", id="result"),
    pytest.param(FigureTableCache, _table, "figure", id="figure"),
]

#: Kill-point -> which committed value must survive the crash.
KILL_STEPS = [
    ("begin", "old"),    # nothing touched disk yet
    ("tmp", "old"),      # sidecar written, rename never happened
    ("replace", "new"),  # rename done; only post-publish work was lost
]


class TestKillPointMatrix:
    @pytest.mark.parametrize("factory, payload, kind", CACHES)
    @pytest.mark.parametrize("step, survivor", KILL_STEPS)
    def test_crash_mid_store_leaves_old_or_new_never_torn(
        self, tmp_path, factory, payload, kind, step, survivor
    ):
        cache = factory(tmp_path / kind)
        old, new = payload(1), payload(2)
        assert cache.store("k", old)
        with injected(f"cache.write.kill@{kind}/{step}"):
            with pytest.raises(FaultKillPoint):
                cache.store("k", new)
        # Reopen cold, as a process restarted after the crash would.
        reopened = factory(tmp_path / kind)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any corruption warning fails
            loaded = reopened.load("k")
        assert loaded == (old if survivor == "old" else new)
        assert reopened.corrupt_evictions == 0

    @pytest.mark.parametrize("factory, payload, kind", CACHES)
    def test_crash_on_first_store_leaves_a_clean_miss(
        self, tmp_path, factory, payload, kind
    ):
        cache = factory(tmp_path / kind)
        with injected(f"cache.write.kill@{kind}/tmp"):
            with pytest.raises(FaultKillPoint):
                cache.store("k", payload(1))
        reopened = factory(tmp_path / kind)
        assert reopened.load("k") is None
        assert reopened.corrupt_evictions == 0


class TestCorruptEntryFallback:
    @pytest.mark.parametrize("factory, payload, kind", CACHES)
    @pytest.mark.parametrize("damage", ["corrupt", "truncate"])
    def test_damaged_entry_is_counted_warned_eviction(
        self, tmp_path, factory, payload, kind, damage
    ):
        cache = factory(tmp_path / kind)
        assert cache.store("k", payload(1))
        # Damage the entry on the next read, deterministically.
        with injected(f"cache.entry.{damage}@{kind}/*"):
            with pytest.warns(CacheCorruptionWarning, match="evicted corrupt"):
                assert cache.load("k") is None
        assert cache.corrupt_evictions == 1
        assert not cache.path_for("k").exists()  # evicted, not left rotting
        # The slot is reusable immediately.
        assert cache.store("k", payload(2))
        assert cache.load("k") == payload(2)

    @pytest.mark.parametrize("factory, payload, kind", CACHES)
    def test_torn_publish_then_crash_heals_on_reopen(
        self, tmp_path, factory, payload, kind
    ):
        """Compound plan: publish torn bytes, then die at the kill-point.

        The sidecar is damaged after it is written, the rename publishes
        the torn entry, and the process dies right after — the worst
        realistic crash. The reopened cache must treat the torn entry as
        a counted eviction and serve a miss; the recompute path heals it.
        """
        cache = factory(tmp_path / kind)
        assert cache.store("k", payload(1))
        plan = (
            f"cache.write.truncate@{kind}/tmp#1;"
            f"cache.write.kill@{kind}/replace#1"
        )
        with injected(plan):
            with pytest.raises(FaultKillPoint):
                cache.store("k", payload(2))
        reopened = factory(tmp_path / kind)
        with pytest.warns(CacheCorruptionWarning):
            assert reopened.load("k") is None
        assert reopened.corrupt_evictions == 1
        assert reopened.store("k", payload(3))
        assert reopened.load("k") == payload(3)
