"""Synthetic pattern generators and the SPEC stand-ins."""

import itertools

import pytest

from repro.utils.rng import DeterministicRng
from repro.workloads.spec import SPEC_BENCHMARKS, benchmark, benchmark_names
from repro.workloads.synthetic import (
    hot_cold,
    pointer_chase,
    sequential_stream,
    strided_stream,
    uniform_random,
    zipf_random,
)

WSS = 1 << 20  # 1 MiB


def take(gen, n):
    return list(itertools.islice(gen, n))


class TestPrimitives:
    def test_all_within_working_set(self):
        rng = DeterministicRng(1)
        for factory in (
            sequential_stream,
            strided_stream,
            uniform_random,
            zipf_random,
            pointer_chase,
            hot_cold,
        ):
            for addr in take(factory(WSS, rng.fork(id(factory) & 0xFF)), 500):
                assert 0 <= addr < WSS

    def test_sequential_is_sequential(self):
        addrs = take(sequential_stream(WSS, DeterministicRng(2), stride=64), 100)
        deltas = {(b - a) % WSS for a, b in zip(addrs, addrs[1:])}
        assert deltas == {64}

    def test_strided_stride(self):
        addrs = take(strided_stream(WSS, DeterministicRng(2), stride=1024), 50)
        deltas = {(b - a) % WSS for a, b in zip(addrs, addrs[1:])}
        assert deltas == {1024}

    def test_uniform_covers_space(self):
        addrs = take(uniform_random(WSS, DeterministicRng(3)), 2000)
        assert len(set(addrs)) > 1500

    def test_zipf_is_skewed(self):
        addrs = take(zipf_random(WSS, DeterministicRng(4), alpha=1.2), 3000)
        top = max(addrs.count(a) for a in set(addrs))
        assert top > 3  # hot lines repeat

    def test_pointer_chase_is_aperiodic_short_term(self):
        addrs = take(pointer_chase(WSS, DeterministicRng(5)), 1000)
        assert len(set(addrs)) > 900

    def test_hot_cold_concentrates(self):
        addrs = take(
            hot_cold(WSS, DeterministicRng(6), hot_fraction=0.05, hot_probability=0.9),
            2000,
        )
        hot_limit = int(WSS // 64 * 0.05) * 64
        hot = sum(1 for a in addrs if a < hot_limit)
        assert hot > 1600

    def test_line_alignment(self):
        for factory in (uniform_random, zipf_random, pointer_chase, hot_cold):
            for addr in take(factory(WSS, DeterministicRng(7)), 100):
                assert addr % 64 == 0


class TestSpecStandIns:
    def test_all_eleven_present(self):
        assert len(SPEC_BENCHMARKS) == 11
        assert set(benchmark_names()) == {
            "astar", "bzip2", "gcc", "gob", "h264", "hmmer",
            "libq", "mcf", "omnet", "perl", "sjeng",
        }

    def test_lookup(self):
        assert benchmark("mcf").name == "mcf"
        with pytest.raises(KeyError):
            benchmark("nope")

    def test_refs_format(self):
        spec = benchmark("gcc")
        for gap, is_write, addr in take(spec.refs(DeterministicRng(1)), 200):
            assert gap >= 0
            assert isinstance(is_write, bool)
            assert 0 <= addr < spec.wss_bytes

    def test_deterministic(self):
        spec = benchmark("astar")
        a = take(spec.refs(DeterministicRng(9)), 100)
        b = take(spec.refs(DeterministicRng(9)), 100)
        assert a == b

    def test_write_fraction_respected(self):
        spec = benchmark("libq")
        writes = sum(1 for _, w, _ in take(spec.refs(DeterministicRng(2)), 4000) if w)
        assert writes / 4000 == pytest.approx(spec.write_fraction, abs=0.05)

    def test_wss_ordering_matches_locality_classes(self):
        """mcf/omnet sweep the largest working sets; hmmer the smallest."""
        wss = {name: benchmark(name).wss_bytes for name in benchmark_names()}
        assert wss["mcf"] == max(wss.values())
        assert wss["hmmer"] == min(wss.values())
        assert wss["mcf"] > 8 * wss["hmmer"]

    def test_gap_instructions_mean(self):
        spec = benchmark("sjeng")
        gaps = [g for g, _, _ in take(spec.refs(DeterministicRng(3)), 4000)]
        assert sum(gaps) / len(gaps) == pytest.approx(spec.gap_instructions, rel=0.2)
