"""Path ORAM Backend: functional correctness and the §3.1 invariant."""

import pytest

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.errors import BlockNotFoundError
from repro.storage.block import Block
from repro.storage.tree import TreeStorage
from repro.utils.bitops import common_prefix_len
from repro.utils.rng import DeterministicRng


def make_backend(config, seed=1, allow_missing=True):
    return PathOramBackend(
        config, TreeStorage(config), DeterministicRng(seed), allow_missing
    )


class TestReadWrite:
    def test_fresh_block_reads_zero(self, small_config, rng):
        backend = make_backend(small_config)
        leaf = rng.random_leaf(small_config.levels)
        block = backend.access(Op.READ, 5, leaf, backend.random_leaf())
        assert block.data == bytes(small_config.block_bytes)

    def test_write_then_read(self, small_config, rng):
        backend = make_backend(small_config)
        payload = b"\x42" * small_config.block_bytes
        l0 = rng.random_leaf(small_config.levels)
        l1 = backend.random_leaf()

        def write(blk):
            blk.data = payload

        backend.access(Op.WRITE, 5, l0, l1, update=write)
        block = backend.access(Op.READ, 5, l1, backend.random_leaf())
        assert block.data == payload

    def test_missing_block_raises_when_strict(self, small_config):
        backend = make_backend(small_config, allow_missing=False)
        with pytest.raises(BlockNotFoundError):
            backend.access(Op.READ, 5, 0, 0)

    def test_returned_copy_is_defensive(self, small_config, rng):
        backend = make_backend(small_config)
        l0 = rng.random_leaf(small_config.levels)
        l1 = backend.random_leaf()
        block = backend.access(Op.READ, 5, l0, l1)
        block.data = b"mutated"
        again = backend.access(Op.READ, 5, l1, backend.random_leaf())
        assert again.data == bytes(small_config.block_bytes)

    def test_shadow_consistency_random_ops(self, small_config):
        """Random read/write stream must match a shadow dict."""
        backend = make_backend(small_config)
        rng = DeterministicRng(77)
        posmap = {}
        shadow = {}
        zero = bytes(small_config.block_bytes)
        for step in range(600):
            addr = rng.randrange(small_config.num_blocks)
            leaf = posmap.get(addr)
            if leaf is None:
                leaf = rng.random_leaf(small_config.levels)
            new_leaf = backend.random_leaf()
            posmap[addr] = new_leaf
            if rng.random() < 0.5:
                data = bytes([step % 256]) * small_config.block_bytes

                def write(blk, data=data):
                    blk.data = data

                backend.access(Op.WRITE, addr, leaf, new_leaf, update=write)
                shadow[addr] = data
            else:
                block = backend.access(Op.READ, addr, leaf, new_leaf)
                assert block.data == shadow.get(addr, zero)


class TestInvariant:
    def test_block_on_its_path_or_stash(self, tiny_config):
        """Path ORAM invariant: a block mapped to leaf l lives on path l
        or in the stash (§3.1.1)."""
        backend = make_backend(tiny_config)
        rng = DeterministicRng(5)
        posmap = {}
        for step in range(300):
            addr = rng.randrange(tiny_config.num_blocks)
            leaf = posmap.get(addr, rng.random_leaf(tiny_config.levels))
            new_leaf = backend.random_leaf()
            posmap[addr] = new_leaf
            backend.access(Op.READ, addr, leaf, new_leaf)
            # Check the invariant for every mapped block.
            for a, mapped_leaf in posmap.items():
                if backend.stash.contains(a):
                    continue
                found = False
                for idx in backend.storage.path_indices(mapped_leaf):
                    if backend.storage.bucket_at(idx).find(a):
                        found = True
                        break
                assert found, f"block {a} not on path {mapped_leaf} nor stash"

    def test_eviction_respects_leaf_prefix(self, small_config):
        """Every tree-resident block sits on the path to its leaf."""
        backend = make_backend(small_config)
        rng = DeterministicRng(9)
        posmap = {}
        for _ in range(300):
            addr = rng.randrange(small_config.num_blocks)
            leaf = posmap.get(addr, rng.random_leaf(small_config.levels))
            new_leaf = backend.random_leaf()
            posmap[addr] = new_leaf
            backend.access(Op.READ, addr, leaf, new_leaf)
        storage = backend.storage
        levels = small_config.levels
        for index in range(storage.config.num_buckets):
            bucket = storage._buckets[index]
            if bucket is None:
                continue
            depth = (index + 1).bit_length() - 1
            for block in bucket:
                # The bucket at `index` must lie on the path to block.leaf.
                path = storage.path_indices(block.leaf)
                assert index == path[depth]

    def test_no_duplicate_blocks(self, small_config):
        backend = make_backend(small_config)
        rng = DeterministicRng(3)
        posmap = {}
        for _ in range(200):
            addr = rng.randrange(32)
            leaf = posmap.get(addr, rng.random_leaf(small_config.levels))
            new_leaf = backend.random_leaf()
            posmap[addr] = new_leaf
            backend.access(Op.READ, addr, leaf, new_leaf)
        seen = set()
        for index in range(backend.storage.config.num_buckets):
            bucket = backend.storage._buckets[index]
            if bucket is None:
                continue
            for block in bucket:
                assert block.addr not in seen
                seen.add(block.addr)
        for block in backend.stash:
            assert block.addr not in seen
            seen.add(block.addr)


class TestReadRmvAppend:
    def test_readrmv_removes(self, small_config, rng):
        backend = make_backend(small_config)
        l0 = rng.random_leaf(small_config.levels)
        l1 = backend.random_leaf()
        payload = b"\x11" * small_config.block_bytes

        def write(blk):
            blk.data = payload

        backend.access(Op.WRITE, 7, l0, l1, update=write)
        removed = backend.access(Op.READRMV, 7, l1, backend.random_leaf())
        assert removed.data == payload
        # Block is gone: a fresh read materialises zeroes.
        again = backend.access(Op.READ, 7, removed.leaf, backend.random_leaf())
        assert again.data == bytes(small_config.block_bytes)

    def test_append_restores(self, small_config, rng):
        backend = make_backend(small_config)
        l0 = rng.random_leaf(small_config.levels)
        l1 = backend.random_leaf()
        payload = b"\x22" * small_config.block_bytes

        def write(blk):
            blk.data = payload

        backend.access(Op.WRITE, 7, l0, l1, update=write)
        removed = backend.access(Op.READRMV, 7, l1, backend.random_leaf())
        backend.access(Op.APPEND, 7, append_block=removed)
        block = backend.access(Op.READ, 7, removed.leaf, backend.random_leaf())
        assert block.data == payload

    def test_append_without_block_rejected(self, small_config):
        backend = make_backend(small_config)
        with pytest.raises(ValueError):
            backend.access(Op.APPEND, 7)

    def test_append_does_not_touch_tree(self, small_config):
        backend = make_backend(small_config)
        before = backend.storage.buckets_read
        backend.access(Op.APPEND, 9, append_block=Block(9, 0, bytes(64)))
        assert backend.storage.buckets_read == before
        assert backend.tree_access_count == 0

    def test_readrmv_append_preserves_net_stash(self, small_config, rng):
        """Observation 2: append preceded by readrmv keeps occupancy."""
        backend = make_backend(small_config)
        # Populate some blocks.
        posmap = {}
        for addr in range(20):
            leaf = rng.random_leaf(small_config.levels)
            posmap[addr] = backend.random_leaf()
            backend.access(Op.READ, addr, leaf, posmap[addr])
        occupancy = backend.stash_occupancy() + backend.storage.occupancy()
        blk = backend.access(Op.READRMV, 4, posmap[4], backend.random_leaf())
        backend.access(Op.APPEND, 4, append_block=blk)
        assert backend.stash_occupancy() + backend.storage.occupancy() == occupancy


class TestStashBehaviour:
    def test_stash_stays_small_z4(self, small_config):
        """Z=4 keeps the stash tiny under random traffic (§3.1.2)."""
        backend = make_backend(small_config)
        rng = DeterministicRng(123)
        posmap = {}
        for _ in range(3000):
            addr = rng.randrange(small_config.num_blocks)
            leaf = posmap.get(addr, rng.random_leaf(small_config.levels))
            new_leaf = backend.random_leaf()
            posmap[addr] = new_leaf
            backend.access(Op.READ, addr, leaf, new_leaf)
        assert backend.stash.occupancy_stats.max <= 30

    def test_access_counters(self, small_config, rng):
        backend = make_backend(small_config)
        leaf = rng.random_leaf(small_config.levels)
        backend.access(Op.READ, 1, leaf, backend.random_leaf())
        backend.access(Op.APPEND, 2, append_block=Block(2, 0, bytes(64)))
        assert backend.access_count == 2
        assert backend.tree_access_count == 1
        assert backend.append_count == 1


class TestEvictionGuards:
    def test_oversized_stash_leaf_rejected(self, small_config):
        """An out-of-range block leaf must raise, not alias into a wrong
        depth group and silently corrupt the tree (hot-path regression)."""
        backend = make_backend(small_config)
        bogus = Block(99, 1 << (small_config.levels + 2), bytes(64))
        backend.stash.add(bogus)
        with pytest.raises(ValueError, match="out of range"):
            backend.access(Op.READ, 1, 0, backend.random_leaf())


class TestAbortRestoration:
    """A failed access must neither lose nor invent blocks (fused-eviction
    error paths restore the merged-stash state)."""

    def _seed_blocks(self, config, backend, count=12):
        rng = DeterministicRng(5)
        posmap = {}
        for addr in range(count):
            leaf = rng.random_leaf(config.levels)
            new_leaf = backend.random_leaf()
            backend.access(Op.WRITE, addr, posmap.get(addr, leaf), new_leaf,
                           update=lambda blk: None)
            posmap[addr] = new_leaf
        return posmap

    def _total(self, backend):
        return backend.storage.occupancy() + len(backend.stash)

    def test_missing_block_abort_restores_drained_path(self, small_config):
        seeder = make_backend(small_config)
        posmap = self._seed_blocks(small_config, seeder)
        strict = PathOramBackend(
            small_config, seeder.storage, DeterministicRng(2), allow_missing=False
        )
        before = self._total(seeder) + len(strict.stash)
        with pytest.raises(BlockNotFoundError):
            strict.access(Op.READ, 999, posmap[3], 5)
        assert self._total(seeder) + len(strict.stash) == before

    def test_update_exception_aborts_without_losing_blocks(self, small_config):
        backend = make_backend(small_config)
        posmap = self._seed_blocks(small_config, backend)
        before = self._total(backend)

        def tamper(block):
            raise RuntimeError("integrity check failed")

        with pytest.raises(RuntimeError):
            backend.access(Op.READ, 3, posmap[3], 7, update=tamper)
        assert self._total(backend) == before

    def test_update_exception_on_fresh_block_invents_nothing(self, small_config):
        backend = make_backend(small_config)
        posmap = self._seed_blocks(small_config, backend)
        before = self._total(backend)

        def tamper(block):
            raise RuntimeError("fresh block rejected")

        with pytest.raises(RuntimeError):
            backend.access(Op.READ, 9999 % small_config.num_blocks + 50, 0, 1,
                           update=tamper)
        assert self._total(backend) == before

    def test_stash_path_duplicate_detected(self, small_config):
        backend = make_backend(small_config)
        posmap = self._seed_blocks(small_config, backend)
        # Plant a duplicate of a tree-resident block in the stash.
        victim_addr = 3
        backend.stash.add(Block(victim_addr, posmap[victim_addr], bytes(64)))
        with pytest.raises(ValueError, match="duplicate"):
            backend.access(Op.READ, 0, posmap[victim_addr], 1)
