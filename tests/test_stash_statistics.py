"""Statistical stash-occupancy study (§3.1.2): Z=4 vs smaller Z.

Path ORAM's stash stays small with overwhelming probability when Z >= 4;
with Z too small the stash drifts upward. These tests run long random
workloads and check the distributional claims the security argument
rests on.
"""

import pytest

from repro.backend.ops import Op
from repro.backend.path_oram import PathOramBackend
from repro.config import OramConfig
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


def run_random_workload(z, accesses=4000, num_blocks=512, seed=1):
    config = OramConfig(num_blocks=num_blocks, block_bytes=16, blocks_per_bucket=z,
                        stash_limit=10_000)
    backend = PathOramBackend(config, TreeStorage(config), DeterministicRng(seed))
    rng = DeterministicRng(seed + 1)
    posmap = {}
    for _ in range(accesses):
        addr = rng.randrange(num_blocks)
        leaf = posmap.get(addr, rng.random_leaf(config.levels))
        new_leaf = backend.random_leaf()
        posmap[addr] = new_leaf
        backend.access(Op.READ, addr, leaf, new_leaf)
    return backend.stash.occupancy_stats


class TestZ4:
    def test_max_occupancy_small(self):
        stats = run_random_workload(z=4)
        assert stats.max <= 25

    def test_mean_occupancy_tiny(self):
        stats = run_random_workload(z=4)
        assert stats.mean < 5

    def test_never_near_paper_limit(self):
        """The 200-block stash limit is never approached honestly."""
        for seed in (1, 2, 3):
            stats = run_random_workload(z=4, seed=seed)
            assert stats.max < 100


class TestSmallerZ:
    def test_z2_worse_than_z4(self):
        z2 = run_random_workload(z=2)
        z4 = run_random_workload(z=4)
        assert z2.mean > z4.mean

    def test_z4_vs_z6_diminishing(self):
        """Beyond Z=4 the improvement is marginal — why the paper uses 4."""
        z4 = run_random_workload(z=4)
        z6 = run_random_workload(z=6)
        assert abs(z4.mean - z6.mean) < 3.0


class TestWorstCasePatterns:
    def test_single_block_hammering(self):
        """Repeatedly accessing one block must not grow the stash."""
        config = OramConfig(num_blocks=256, block_bytes=16)
        backend = PathOramBackend(config, TreeStorage(config), DeterministicRng(5))
        rng = DeterministicRng(6)
        leaf = rng.random_leaf(config.levels)
        for _ in range(2000):
            new_leaf = backend.random_leaf()
            backend.access(Op.READ, 7, leaf, new_leaf)
            leaf = new_leaf
        assert backend.stash.occupancy_stats.max <= 10

    def test_sequential_scan(self):
        config = OramConfig(num_blocks=256, block_bytes=16)
        backend = PathOramBackend(config, TreeStorage(config), DeterministicRng(7))
        rng = DeterministicRng(8)
        posmap = {}
        for i in range(3000):
            addr = i % 256
            leaf = posmap.get(addr, rng.random_leaf(config.levels))
            new_leaf = backend.random_leaf()
            posmap[addr] = new_leaf
            backend.access(Op.READ, addr, leaf, new_leaf)
        assert backend.stash.occupancy_stats.max <= 25
