"""Multi-tenant interleaved workload entries (``"a+b"`` mixes).

The mixes are self-describing derived benchmarks: the name alone decodes
to an interleaved stand-in in any process, so sweeps, worker pools, the
serving layer's tenant rosters, and both on-disk caches treat them as
first-class benchmarks. These tests pin the name round-trip, the
region/interleaving semantics, and the cache-key behaviour.
"""

from itertools import islice
from typing import List

import pytest

from repro.sim.runner import SimulationRunner
from repro.utils.rng import DeterministicRng
from repro.workloads import (
    MULTI_TENANT_MIXES,
    benchmark,
    benchmark_names,
    interleaved_name,
)
from repro.workloads.spec import SPEC_BENCHMARKS, scaled_benchmark_name


class TestMixNames:
    def test_interleaved_name_round_trips(self):
        name = interleaved_name(["gcc", "mcf"])
        assert name == "gcc+mcf"
        spec = benchmark(name)
        assert spec.name == "gcc+mcf"
        assert (
            spec.wss_bytes
            == benchmark("gcc").wss_bytes + benchmark("mcf").wss_bytes
        )

    def test_registered_mixes_all_resolve(self):
        for name in MULTI_TENANT_MIXES:
            spec = benchmark(name)
            assert spec.name == name
            assert spec.wss_bytes > 0

    def test_interleaved_name_validates_components(self):
        with pytest.raises(ValueError, match="at least two"):
            interleaved_name(["gcc"])
        with pytest.raises(KeyError, match="nonesuch"):
            interleaved_name(["gcc", "nonesuch"])

    def test_unknown_mix_component_raises_with_hint(self):
        with pytest.raises(KeyError, match="'a\\+b' mix"):
            benchmark("gcc+nonesuch")

    def test_mixes_stay_out_of_the_default_roster(self):
        # Adding mixes to SPEC_BENCHMARKS would silently change every
        # default figure sweep; they must remain derived-name-only.
        assert benchmark_names() == list(SPEC_BENCHMARKS)
        assert not any("+" in name for name in benchmark_names())


def sample_addrs(name: str, count: int, seed: int) -> List[int]:
    """First ``count`` byte addresses of a stand-in's reference stream."""
    spec = benchmark(name)
    return [
        addr for _gap, _w, addr in islice(spec.refs(DeterministicRng(seed)), count)
    ]


class TestMixSemantics:
    def test_components_confined_to_disjoint_regions(self):
        mix = benchmark("hmmer+gob")
        hmmer_wss = benchmark("hmmer").wss_bytes
        addrs = sample_addrs("hmmer+gob", 20_000, seed=3)
        low = [a for a in addrs if a < hmmer_wss]
        high = [a for a in addrs if a >= hmmer_wss]
        # Both tenants contribute, and the second stays inside its region.
        assert low and high
        assert max(addrs) < mix.wss_bytes

    def test_components_get_equal_reference_share(self):
        hmmer_wss = benchmark("hmmer").wss_bytes
        addrs = sample_addrs("hmmer+gob", 40_000, seed=9)
        low = sum(1 for a in addrs if a < hmmer_wss)
        assert 0.3 < low / len(addrs) < 0.7

    def test_write_fraction_and_gap_are_averaged(self):
        mix = benchmark("mcf+libq")
        mcf, libq = benchmark("mcf"), benchmark("libq")
        assert mix.write_fraction == pytest.approx(
            (mcf.write_fraction + libq.write_fraction) / 2
        )
        assert mix.gap_instructions == round(
            (mcf.gap_instructions + libq.gap_instructions) / 2
        )

    def test_wss_override_scales_regions_proportionally(self):
        native = benchmark("hmmer+gob").wss_bytes
        scaled_name = scaled_benchmark_name("hmmer+gob", native * 2)
        assert scaled_name == f"hmmer+gob@wss={native * 2}"
        scaled = benchmark(scaled_name)
        assert scaled.wss_bytes == native * 2
        addrs = sample_addrs(scaled_name, 20_000, seed=3)
        assert max(addrs) < scaled.wss_bytes
        assert max(addrs) >= native  # the second region actually moved up


class TestMixCaching:
    def test_trace_keys_distinct_and_stable(self):
        runner = SimulationRunner(misses_per_benchmark=300, seed=3)
        again = SimulationRunner(misses_per_benchmark=300, seed=3)
        key = runner.trace_cache_key("hmmer+gob")
        assert key == again.trace_cache_key("hmmer+gob")
        assert key != runner.trace_cache_key("hmmer")
        assert key != runner.trace_cache_key("gob")
        assert key != runner.trace_cache_key(
            scaled_benchmark_name("hmmer+gob", 8 << 20)
        )

    def test_result_keys_distinguish_mixes(self):
        runner = SimulationRunner(misses_per_benchmark=300, seed=3)
        assert runner.result_key("PC_X32", "hmmer+gob") != runner.result_key(
            "PC_X32", "hmmer"
        )

    def test_mix_traces_round_trip_through_disk_cache(self):
        runner = SimulationRunner(misses_per_benchmark=200, seed=4)
        trace = runner.trace("hmmer+gob")
        assert trace.name == "hmmer+gob"
        assert len(trace.events) > 0
        # A fresh runner sharing the on-disk cache loads, not re-simulates.
        fresh = SimulationRunner(misses_per_benchmark=200, seed=4)
        loaded = fresh._trace_from_disk("hmmer+gob")
        assert loaded is not None
        assert loaded.to_bytes() == trace.to_bytes()

    def test_mix_replays_end_to_end(self):
        runner = SimulationRunner(misses_per_benchmark=200, seed=4)
        result = runner.run_one("PC_X32", "hmmer+gob")
        assert result.benchmark == "hmmer+gob"
        assert result.cycles > 0
        assert result == runner.run_one("PC_X32", "hmmer+gob")  # cached
