"""The §6.4 encryption attack: seed replay forces one-time-pad reuse.

Under the bucket-seed scheme of [26], an active adversary who rolls a
bucket's plaintext seed back makes the next legitimate re-encryption
reuse an already-observed pad — the classic two-time-pad break. The
paper's fix (a single on-chip GlobalSeed counter) makes every pad fresh
regardless of tampering. Both behaviours are demonstrated here.
"""

import pytest

from repro.adversary.tamper import Tamperer
from repro.config import OramConfig
from repro.crypto.pad import PadGenerator
from repro.storage.block import Block
from repro.storage.encrypted import EncryptedTreeStorage, EncryptionScheme


@pytest.fixture
def config():
    return OramConfig(num_blocks=32, block_bytes=32)


def pad_of(storage: EncryptedTreeStorage, index: int, bucket) -> bytes:
    """Recover the pad the adversary can compute once plaintext is known:
    pad = ciphertext XOR plaintext (the §6.4 D ⊕ D' computation)."""
    body = storage._serialise_bucket(bucket)
    image = storage.raw_image(index)
    return PadGenerator.xor(image[8:], body)


def write_root(storage: EncryptedTreeStorage, payload: bytes):
    """Write a known block into the root bucket and return the bucket."""
    path = storage.read_path(0)
    root = path[0][1]
    root.blocks = []
    root.add(Block(1, 0, payload))
    storage.write_path(0)
    return root


class TestBucketSeedSchemeBreaks:
    def test_seed_rollback_causes_pad_reuse(self, config):
        gen = PadGenerator(b"attack-key")
        storage = EncryptedTreeStorage(config, gen, EncryptionScheme.BUCKET_SEED)
        tamperer = Tamperer(storage)

        # Legitimate write: adversary observes ciphertext C1 under seed s.
        bucket1 = write_root(storage, b"\x01" * 32)
        pad1 = pad_of(storage, 0, bucket1)
        seed_s = tamperer.read_seed(0)

        # Adversary rolls the stored seed back to s - 1.
        tamperer.rollback_seed(0, delta=1)

        # Next legitimate access re-encrypts with seed (s-1) + 1 == s:
        # the pad of C1 is reused.
        path = storage.read_path(0)  # decrypts to garbage; system unaware
        storage.write_path(0)
        reused_bucket = path[0][1]
        pad3 = pad_of(storage, 0, reused_bucket)
        assert tamperer.read_seed(0) == seed_s
        assert pad3 == pad1  # two-time pad!

    def test_xor_leaks_plaintext_relation(self, config):
        """With a reused pad, C1 XOR C3 = D1 XOR D3: plaintext leaks."""
        gen = PadGenerator(b"attack-key-2")
        storage = EncryptedTreeStorage(config, gen, EncryptionScheme.BUCKET_SEED)
        tamperer = Tamperer(storage)
        bucket1 = write_root(storage, b"\x01" * 32)
        c1 = storage.raw_image(0)[8:]
        d1 = storage._serialise_bucket(bucket1)
        tamperer.rollback_seed(0, delta=1)
        path = storage.read_path(0)
        storage.write_path(0)
        c3 = storage.raw_image(0)[8:]
        d3 = storage._serialise_bucket(path[0][1])
        assert PadGenerator.xor(c1, c3) == PadGenerator.xor(d1, d3)


class TestGlobalSeedSchemeHolds:
    def test_rollback_cannot_force_reuse(self, config):
        """GlobalSeed lives on-chip: tampering the stored copy is inert."""
        gen = PadGenerator(b"defense-key")
        storage = EncryptedTreeStorage(config, gen, EncryptionScheme.GLOBAL_SEED)
        tamperer = Tamperer(storage)
        bucket1 = write_root(storage, b"\x02" * 32)
        pad1 = pad_of(storage, 0, bucket1)
        tamperer.rollback_seed(0, delta=1)
        path = storage.read_path(0)
        storage.write_path(0)
        pad3 = pad_of(storage, 0, path[0][1])
        assert pad3 != pad1

    def test_pads_always_fresh_across_many_writes(self, config):
        gen = PadGenerator(b"defense-key-2")
        storage = EncryptedTreeStorage(config, gen, EncryptionScheme.GLOBAL_SEED)
        pads = set()
        for i in range(20):
            bucket = write_root(storage, bytes([i]) * 32)
            pad = pad_of(storage, 0, bucket)
            assert pad not in pads
            pads.add(pad)

    def test_bucket_seed_reuses_across_identical_seed_states(self, config):
        """Control: the bucket-seed scheme's pads repeat exactly when the
        (bucket, seed) pair repeats, confirming the attack surface."""
        gen = PadGenerator(b"control-key")
        a = gen.bucket_seed_pad(5, 33, 64)
        b = gen.bucket_seed_pad(5, 33, 64)
        assert a == b
