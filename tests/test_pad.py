"""One-time-pad generation: determinism, freshness, the two seed schemes."""

import pytest

from repro.crypto.pad import PadGenerator


@pytest.mark.parametrize("mode", [PadGenerator.MODE_FAST, PadGenerator.MODE_AES])
class TestPads:
    def _gen(self, mode):
        key = b"0123456789abcdef"
        return PadGenerator(key, mode=mode)

    def test_deterministic(self, mode):
        a, b = self._gen(mode), self._gen(mode)
        assert a.bucket_seed_pad(3, 7, 100) == b.bucket_seed_pad(3, 7, 100)

    def test_requested_length(self, mode):
        gen = self._gen(mode)
        for n in (1, 15, 16, 17, 100):
            assert len(gen.global_seed_pad(5, n)) == n

    def test_seed_freshness(self, mode):
        gen = self._gen(mode)
        assert gen.bucket_seed_pad(3, 7, 64) != gen.bucket_seed_pad(3, 8, 64)

    def test_bucket_id_separation(self, mode):
        gen = self._gen(mode)
        assert gen.bucket_seed_pad(3, 7, 64) != gen.bucket_seed_pad(4, 7, 64)

    def test_global_scheme_distinct_from_bucket_scheme(self, mode):
        gen = self._gen(mode)
        assert gen.global_seed_pad(7, 64) != gen.bucket_seed_pad(0, 7, 64)

    def test_replayed_seed_reuses_pad(self, mode):
        """The §6.4 vulnerability in a nutshell: same seed -> same pad."""
        gen = self._gen(mode)
        assert gen.bucket_seed_pad(3, 7, 64) == gen.bucket_seed_pad(3, 7, 64)


class TestXor:
    def test_xor_roundtrip(self):
        gen = PadGenerator(b"key")
        pad = gen.global_seed_pad(1, 32)
        data = bytes(range(32))
        assert PadGenerator.xor(PadGenerator.xor(data, pad), pad) == data

    def test_xor_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PadGenerator.xor(b"abc", b"ab")


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PadGenerator(b"k", mode="xor")

    def test_aes_mode_needs_16_byte_key(self):
        with pytest.raises(ValueError):
            PadGenerator(b"k", mode=PadGenerator.MODE_AES)

    def test_counts_blocks(self):
        gen = PadGenerator(b"k")
        gen.global_seed_pad(0, 48)  # 3 chunks
        assert gen.blocks_generated == 3
