"""Unit tests for repro.utils.units."""

import pytest

from repro.utils.units import GiB, KiB, MiB, format_bytes, parse_size


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512") == 512

    def test_kb(self):
        assert parse_size("64KB") == 64 * KiB

    def test_kib(self):
        assert parse_size("64KiB") == 64 * KiB

    def test_mb_with_space(self):
        assert parse_size("1 MB") == MiB

    def test_gb_case_insensitive(self):
        assert parse_size("4gb") == 4 * GiB

    def test_fractional(self):
        assert parse_size("0.5KB") == 512

    def test_rejects_fractional_bytes(self):
        with pytest.raises(ValueError):
            parse_size("0.3 B")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots")

    def test_rejects_suffix_only(self):
        with pytest.raises(ValueError):
            parse_size("KB")


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(100) == "100 B"

    def test_exact_kib(self):
        assert format_bytes(8 * KiB) == "8 KiB"

    def test_exact_gib(self):
        assert format_bytes(4 * GiB) == "4 GiB"

    def test_fractional_mib(self):
        assert format_bytes(MiB + 512 * KiB) == "1.50 MiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_roundtrip(self):
        for n in (1, KiB, 3 * MiB, 7 * GiB):
            assert parse_size(format_bytes(n)) == n
