"""Serving is replay: the lockstep and determinism guarantees.

The tentpole property of the serving layer: because serving goes through
the same :class:`~repro.sim.engine.ReplayEngine` core as offline replay,
a single-tenant / single-shard serve of a benchmark trace produces a
``SimResult`` **bit-identical** to :func:`~repro.sim.system.replay_trace`
— cycles, every counter, and the SHA-256 digest of the post-run tree.
And because admission, execution and accounting are shared deterministic
steps, the serial and asyncio drivers produce identical per-tenant cycle
totals and identical per-shard access sequences, run after run.
"""

import pytest

from repro.sim.runner import SimulationRunner
from repro.sim.system import replay_trace
from repro.serve import (
    OramService,
    ServeConfig,
    serve_replay_equivalent,
    tenants_for,
)
from repro.storage.snapshot import tree_digest


def make_runner(seed: int = 11) -> SimulationRunner:
    return SimulationRunner(misses_per_benchmark=500, seed=seed)


def frontend_digests(frontend):
    backends = getattr(frontend, "backends", None)
    if backends is not None:
        return [tree_digest(b.storage) for b in backends]
    return [tree_digest(frontend.backend.storage)]


class TestLockstepWithReplay:
    @pytest.mark.parametrize("mode", ["serial", "async"])
    def test_single_tenant_single_shard_is_bit_identical(self, mode):
        runner = make_runner()
        trace = runner.trace("hmmer")
        frontend = runner.build("PC_X32", "hmmer")
        expected = replay_trace(
            frontend, trace, runner.timing_for(frontend), proc=runner.proc,
            scheme="PC_X32",
        )
        config = ServeConfig(scheme="PC_X32", shards=1, burst=5, max_batch=13)
        service = OramService(
            tenants_for(["hmmer"], 1), runner=runner, config=config
        )
        shard = service.shards[0]
        from repro.sim.system import base_cycles

        shard.engine.cycles = base_cycles(trace, runner.proc)
        service.run(mode=mode)
        result = shard.engine.result(trace, scheme="PC_X32")
        assert result == expected  # every SimResult field, cycles included
        # The complete external memory state matches too.
        assert frontend_digests(shard.frontend) == frontend_digests(frontend)

    def test_serve_replay_equivalent_helper(self):
        runner = make_runner()
        trace = runner.trace("gob")
        frontend = runner.build("PC_X32", "gob")
        expected = replay_trace(
            frontend, trace, runner.timing_for(frontend), proc=runner.proc,
            scheme="PC_X32",
        )
        got = serve_replay_equivalent(
            trace, "PC_X32", runner, burst=3, max_batch=7
        )
        assert got == expected

    def test_helper_agrees_across_admission_shapes(self):
        # Batching/admission knobs are performance-only: any burst and
        # max_batch produce the same simulated result.
        runner = make_runner()
        trace = runner.trace("hmmer")
        results = [
            serve_replay_equivalent(
                trace, "PC_X32", runner, burst=burst, max_batch=max_batch
            )
            for burst, max_batch in ((1, 1), (4, 2), (64, 512))
        ]
        assert results[0] == results[1] == results[2]


def run_scenario(mode: str, seed: int = 13) -> OramService:
    service = OramService(
        tenants_for(["hmmer", "gob", "hmmer+gob"], 4, requests=120),
        runner=make_runner(seed),
        config=ServeConfig(
            scheme="PC_X32", shards=2, burst=3, max_batch=8,
            queue_capacity=5, policy="defer",
        ),
    )
    return service.run(mode)


def simulated_image(service: OramService):
    """Everything simulated in a report (wall-clock observations excluded)."""
    return (
        [
            (t.name, t.issued, t.completed, t.shed, t.deferred, t.cycles)
            for t in service.tenant_stats
        ],
        [
            (s.index, s.requests, s.batches, s.busy_cycles, s.access_digest)
            for s in service.shard_stats
        ],
        service.epochs,
    )


class TestConcurrentDeterminism:
    def test_serial_and_async_identical(self):
        assert simulated_image(run_scenario("serial")) == simulated_image(
            run_scenario("async")
        )

    def test_same_seed_reproduces_concurrent_runs(self):
        first = simulated_image(run_scenario("async"))
        second = simulated_image(run_scenario("async"))
        assert first == second

    def test_different_seed_changes_outcomes(self):
        # The seed must actually matter, or the determinism assertions
        # above would be vacuous.
        a = run_scenario("serial", seed=13)
        b = run_scenario("serial", seed=14)
        assert [s.access_digest for s in a.shard_stats] != [
            s.access_digest for s in b.shard_stats
        ]

    def test_latency_histograms_match_across_drivers(self):
        serial, concurrent = run_scenario("serial"), run_scenario("async")
        for a, b in zip(serial.tenant_stats, concurrent.tenant_stats):
            assert a.service_cycles.to_dict() == b.service_cycles.to_dict()
            assert a.latency_cycles.to_dict() == b.latency_cycles.to_dict()
