"""Figure-table memoisation: keys, round-trips, --force semantics."""

import pytest

from repro.eval.table_cache import (
    FIGURE_CACHE_ENV,
    FigureTableCache,
    cached_figure_table,
    default_figure_cache_dir,
    figure_key,
)
from repro.sim.runner import SimulationRunner


@pytest.fixture
def runner(tmp_path):
    return SimulationRunner(
        misses_per_benchmark=120,
        cache_dir=tmp_path / "traces",
        result_cache_dir=tmp_path / "results",
    )


@pytest.fixture
def cache(tmp_path):
    return FigureTableCache(tmp_path / "figures")


class TestEncoding:
    def test_int_keyed_tables_round_trip(self, cache):
        table = {"gob": {8192: 1.0, 131072: 0.93}, "mcf": {8192: 1.0}}
        assert cache.store("k", table)
        loaded = cache.load("k")
        assert loaded == table
        # JSON would have stringified these; the encoding must not.
        assert all(isinstance(k, int) for k in loaded["gob"])

    def test_nested_lists_round_trip(self, cache):
        table = {"rows": [{"a": 1.5}, {"b": None}], "n": 3}
        cache.store("k", table)
        assert cache.load("k") == table

    def test_unencodable_values_refused_not_crashed(self, cache):
        assert not cache.store("k", {"bad": object()})
        assert cache.load("k") is None

    def test_corrupt_entry_is_a_miss_and_unlinked(self, cache):
        cache.store("k", {"x": 1})
        path = cache.path_for("k")
        path.write_text("{not json", "utf-8")
        assert cache.load("k") is None
        assert not path.exists()


class TestFigureKey:
    def test_key_depends_on_figure_and_cells(self):
        base = figure_key("fig5", ["a", "b"])
        assert figure_key("fig6", ["a", "b"]) != base
        assert figure_key("fig5", ["a", "c"]) != base

    def test_key_is_order_sensitive(self):
        """Row order is part of a table's identity."""
        assert figure_key("fig6", ["a", "b"]) != figure_key("fig6", ["b", "a"])


class TestCachedFigureTable:
    def test_second_call_served_from_cache(self, runner, cache):
        calls = []

        def build():
            calls.append(1)
            return {"gob": {8192: 1.0}}

        first = cached_figure_table("fig5", runner, ["cell"], build, cache)
        second = cached_figure_table("fig5", runner, ["cell"], build, cache)
        assert first == second
        assert len(calls) == 1
        assert cache.hits == 1 and cache.stores == 1

    def test_force_skips_load_and_refreshes(self, runner, cache):
        cached_figure_table("fig5", runner, ["cell"], lambda: {"v": 1}, cache)
        runner.force = True
        result = cached_figure_table(
            "fig5", runner, ["cell"], lambda: {"v": 2}, cache
        )
        assert result == {"v": 2}
        runner.force = False
        assert cached_figure_table(
            "fig5", runner, ["cell"], lambda: {"v": 3}, cache
        ) == {"v": 2}  # the forced rebuild refreshed the entry

    def test_changed_cell_keys_rebuild(self, runner, cache):
        cached_figure_table("fig5", runner, ["a"], lambda: {"v": 1}, cache)
        fresh = cached_figure_table("fig5", runner, ["b"], lambda: {"v": 2}, cache)
        assert fresh == {"v": 2}

    def test_disabled_cache_builds_directly(self, runner, monkeypatch):
        monkeypatch.setenv(FIGURE_CACHE_ENV, "off")
        assert default_figure_cache_dir() is None
        assert cached_figure_table(
            "fig5", runner, ["cell"], lambda: {"v": 9}
        ) == {"v": 9}


class TestFigureIntegration:
    def test_fig5_warm_run_skips_every_cell(self, runner, tmp_path, monkeypatch):
        """A warm fig5 rerun touches neither run_one nor the result cache."""
        from repro.eval import fig5

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.setattr(
            "repro.eval.fig5.SimulationRunner", lambda **kw: runner
        )
        cold = fig5.run(benchmarks=["gob"], capacities=(8192, 32768))

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("cell executed on a warm figure table")

        monkeypatch.setattr(runner, "run_one", boom)
        warm = fig5.run(benchmarks=["gob"], capacities=(8192, 32768))
        assert warm == cold
        assert all(isinstance(k, int) for k in warm["gob"])

    def test_fig6_force_refreshes(self, runner, tmp_path, monkeypatch):
        from repro.eval import fig6

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.setattr(
            "repro.eval.fig6.SimulationRunner", lambda **kw: runner
        )
        cold = fig6.run(benchmarks=["gob"], schemes=("PC_X32",))
        runner.force = True
        forced = fig6.run(benchmarks=["gob"], schemes=("PC_X32",))
        assert forced == cold  # deterministic rebuild, refreshed entry

    def test_fig7_warm_run_skips_every_cell(self, runner, tmp_path, monkeypatch):
        """The measured fig7 rates memoise; a warm rerun simulates nothing."""
        from repro.eval import fig7

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.setattr(
            "repro.eval.fig7.SimulationRunner", lambda **kw: runner
        )
        cold = fig7.run(benchmarks=["gob"])

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("cell executed on a warm figure table")

        monkeypatch.setattr(runner, "run_one", boom)
        warm = fig7.run(benchmarks=["gob"])
        assert warm == cold

    def test_fig8_warm_run_skips_cells_and_baselines(
        self, runner, tmp_path, monkeypatch
    ):
        from repro.eval import fig8

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.setattr("repro.eval.fig8._runner", lambda misses: runner)
        cold_table, cold_traffic = fig8.run(benchmarks=["gob"])

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("cell executed on a warm figure table")

        monkeypatch.setattr(runner, "run_one", boom)
        monkeypatch.setattr(runner, "baselines", boom)
        warm_table, warm_traffic = fig8.run(benchmarks=["gob"])
        assert warm_table == cold_table
        assert warm_traffic == cold_traffic

    def test_fig9_warm_run_skips_trace_and_cells(
        self, runner, tmp_path, monkeypatch
    ):
        from repro.eval import fig9

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.setattr(
            "repro.eval.fig9.SimulationRunner", lambda **kw: runner
        )
        cold = fig9.run(benchmarks=["gob"])

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("cell executed on a warm figure table")

        monkeypatch.setattr(runner, "run_one", boom)
        monkeypatch.setattr(runner, "trace", boom)
        warm = fig9.run(benchmarks=["gob"])
        assert warm == cold

    def test_table2_warm_run_skips_the_model(self, tmp_path, monkeypatch):
        """Analytic tables memoise with runner=None (force from the env)."""
        from repro.eval import table2

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.delenv("REPRO_FORCE", raising=False)
        cold = table2.run(channel_counts=(1, 2))

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("model evaluated on a warm figure table")

        monkeypatch.setattr("repro.eval.table2.DramModel", boom)
        warm = table2.run(channel_counts=(1, 2))
        assert warm == cold
        assert all(isinstance(ch, int) for ch in warm)

    def test_table2_env_force_rebuilds(self, tmp_path, monkeypatch):
        from repro.eval import table2

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        cold = table2.run(channel_counts=(1,))
        monkeypatch.setenv("REPRO_FORCE", "1")

        def boom(*a, **kw):  # pragma: no cover - must run instead of cache
            raise RuntimeError("rebuilt")

        monkeypatch.setattr("repro.eval.table2.DramModel", boom)
        with pytest.raises(RuntimeError, match="rebuilt"):
            table2.run(channel_counts=(1,))
        assert cold  # the unforced run produced a table

    def test_table3_breakdowns_round_trip_the_cache(self, tmp_path, monkeypatch):
        """AreaBreakdowns flatten to fields on store and rebuild on load."""
        from repro.area.model import AreaBreakdown
        from repro.eval import table3

        monkeypatch.setenv(FIGURE_CACHE_ENV, str(tmp_path / "figures"))
        monkeypatch.delenv("REPRO_FORCE", raising=False)
        cold = table3.run(channel_counts=(1, 2))

        class Boom:  # pragma: no cover - must not run
            def __init__(self, *a, **kw):
                raise AssertionError("model built on a warm figure table")

        monkeypatch.setattr("repro.eval.table3.AreaModel", Boom)
        warm = table3.run(channel_counts=(1, 2))
        assert warm == cold
        assert all(isinstance(b, AreaBreakdown) for b in warm.values())
        assert all(isinstance(ch, int) for ch in warm)
