"""Merkle path verifier: correctness, tamper detection, hash accounting."""

import pytest

from repro.config import OramConfig
from repro.crypto.mac import Mac
from repro.errors import IntegrityViolationError
from repro.integrity.merkle import MerklePathVerifier, serialise_bucket
from repro.storage.block import Block
from repro.storage.bucket import Bucket
from repro.storage.tree import TreeStorage
from repro.utils.rng import DeterministicRng


@pytest.fixture
def setup():
    config = OramConfig(num_blocks=64, block_bytes=32)
    storage = TreeStorage(config)
    mac = Mac(b"merkle-key", mode=Mac.MODE_FAST)
    verifier = MerklePathVerifier(
        config.levels, config.block_bytes, config.blocks_per_bucket, mac
    )
    return config, storage, mac, verifier


def path_of(storage, leaf):
    buckets = [b for _, b in storage.read_path(leaf)]
    return buckets, storage.path_indices(leaf)


class TestHonestOperation:
    def test_empty_tree_verifies(self, setup):
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 0)
        verifier.verify_path(0, buckets, indices)

    def test_write_then_verify(self, setup):
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 3)
        buckets[0].add(Block(1, 3, bytes(32)))
        verifier.update_path(3, buckets, indices)
        verifier.verify_path(3, buckets, indices)

    def test_many_paths(self, setup):
        config, storage, mac, verifier = setup
        rng = DeterministicRng(1)
        for step in range(60):
            leaf = rng.random_leaf(config.levels)
            buckets, indices = path_of(storage, leaf)
            verifier.verify_path(leaf, buckets, indices)
            if not buckets[-1].is_full():
                buckets[-1].add(Block(1000 + step, leaf, bytes(32)))
            verifier.update_path(leaf, buckets, indices)

    def test_sibling_paths_consistent(self, setup):
        """Updating one path must keep its sibling verifiable."""
        config, storage, mac, verifier = setup
        for leaf in (0, 1, 0, 1):
            buckets, indices = path_of(storage, leaf)
            verifier.verify_path(leaf, buckets, indices)
            verifier.update_path(leaf, buckets, indices)


class TestTamperDetection:
    def test_data_modification_detected(self, setup):
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 5)
        buckets[2].add(Block(7, 5, b"\x01" * 32))
        verifier.update_path(5, buckets, indices)
        # Adversary swaps the block's data.
        buckets[2].blocks[0].data = b"\x02" * 32
        with pytest.raises(IntegrityViolationError):
            verifier.verify_path(5, buckets, indices)

    def test_block_insertion_detected(self, setup):
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 2)
        verifier.update_path(2, buckets, indices)
        buckets[1].add(Block(99, 2, bytes(32)))
        with pytest.raises(IntegrityViolationError):
            verifier.verify_path(2, buckets, indices)

    def test_replay_detected(self, setup):
        """Unlike bare MACs, the Merkle root catches whole-path replay."""
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 1)
        buckets[0].add(Block(3, 1, b"\x0A" * 32))
        verifier.update_path(1, buckets, indices)
        stale = [Bucket(config.blocks_per_bucket) for _ in buckets]
        with pytest.raises(IntegrityViolationError):
            verifier.verify_path(1, stale, indices)

    def test_cross_path_swap_detected(self, setup):
        config, storage, mac, verifier = setup
        b0, i0 = path_of(storage, 0)
        b0[-1].add(Block(1, 0, b"\x01" * 32))
        verifier.update_path(0, b0, i0)
        bl, il = path_of(storage, config.num_leaves - 1)
        bl[-1].add(Block(2, config.num_leaves - 1, b"\x02" * 32))
        verifier.update_path(config.num_leaves - 1, bl, il)
        # Swap the two leaf buckets.
        b0[-1], bl[-1] = bl[-1], b0[-1]
        with pytest.raises(IntegrityViolationError):
            verifier.verify_path(0, b0, i0)


class TestHashAccounting:
    def test_hashes_per_verify_is_path_length(self, setup):
        """Each verify hashes L+1 nodes — the §6.3 cost."""
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 0)
        mac.reset_counters()
        verifier.verify_path(0, buckets, indices)
        assert mac.call_count == config.levels + 1

    def test_update_costs_the_same(self, setup):
        config, storage, mac, verifier = setup
        buckets, indices = path_of(storage, 0)
        mac.reset_counters()
        verifier.update_path(0, buckets, indices)
        assert mac.call_count == config.levels + 1

    def test_serialise_includes_dummies(self, setup):
        config, *_ = setup
        empty = serialise_bucket(Bucket(4), 32, 4)
        partial = Bucket(4)
        partial.add(Block(1, 0, bytes(32)))
        assert len(empty) == len(serialise_bucket(partial, 32, 4))
