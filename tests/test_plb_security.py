"""Privacy: the §4.1.2 PLB leak and the Unified-tree fix, leaf uniformity.

Reproduces the paper's two-program distinguisher: program A unit-strides,
program B strides by X. With per-level ORAM trees and a PLB, the
tree-access pattern separates the programs; with the Unified tree every
access touches the single tree ORamU and the patterns coincide.
"""

import pytest

from repro.adversary.observer import TraceObserver, distinguish_by_tree_pattern
from repro.frontend.recursive import RecursiveFrontend
from repro.frontend.unified import PlbFrontend
from repro.utils.rng import DeterministicRng
from repro.utils.stats import chi_square_uniform


def run_program(frontend, addresses):
    for addr in addresses:
        frontend.read(addr)


def program_a(n, length):
    """Unit stride."""
    return [i % n for i in range(length)]


def program_b(n, length, stride):
    """Stride X (one access per PosMap block)."""
    return [(i * stride) % n for i in range(length)]


class TestPlbLeakWithSeparateTrees:
    """A PLB naively bolted onto per-level trees leaks (the paper builds
    the distinguisher on the *set of trees accessed*; the Recursive
    baseline without a PLB is the control showing identical patterns)."""

    def test_recursive_without_plb_is_indistinguishable(self):
        n, length = 2**10, 128
        traces = []
        for program in (program_a(n, length), program_b(n, length, 8)):
            observer = TraceObserver()
            frontend = RecursiveFrontend(
                num_blocks=n,
                onchip_entries=2**4,
                rng=DeterministicRng(1),
                observer=observer,
            )
            run_program(frontend, program)
            traces.append(observer.tree_sequence())
        # Without a PLB both programs touch trees in the same fixed order.
        assert not distinguish_by_tree_pattern(traces[0], traces[1])

    def test_plb_hit_pattern_differs_across_programs(self):
        """The PLB's *savings* differ per program — this is the signal
        that would leak if each level had its own tree."""
        n, length = 2**10, 256
        hit_counts = []
        for program in (program_a(n, length), program_b(n, length, 16)):
            frontend = PlbFrontend(
                num_blocks=n,
                posmap_format="uncompressed",
                onchip_entries=2**4,
                plb_capacity_bytes=2 * 1024,
                rng=DeterministicRng(1),
            )
            run_program(frontend, program)
            hit_counts.append(frontend.stats.plb_hits)
        assert hit_counts[0] != hit_counts[1]


class TestUnifiedTreeFix:
    def test_all_accesses_go_to_one_tree(self):
        """§4.1.3: with ORamU the adversary sees a single tree id."""
        n, length = 2**10, 128
        observer = TraceObserver()
        frontend = PlbFrontend(
            num_blocks=n,
            posmap_format="uncompressed",
            onchip_entries=2**4,
            plb_capacity_bytes=2 * 1024,
            rng=DeterministicRng(1),
            observer=observer,
        )
        run_program(frontend, program_a(n, length))
        assert set(e.tree_id for e in observer.events) == {0}

    def test_programs_differ_only_in_length(self):
        """Same-length prefixes of the two programs' ORamU traces carry
        no tree-pattern signal (only |ORAM(a)| may leak, §4.3)."""
        n, length = 2**10, 200
        sequences = []
        for program in (program_a(n, length), program_b(n, length, 16)):
            observer = TraceObserver()
            frontend = PlbFrontend(
                num_blocks=n,
                posmap_format="uncompressed",
                onchip_entries=2**4,
                plb_capacity_bytes=2 * 1024,
                rng=DeterministicRng(1),
                observer=observer,
            )
            run_program(frontend, program)
            sequences.append(observer.tree_sequence())
        k = min(len(sequences[0]), len(sequences[1]))
        assert sequences[0][:k] == sequences[1][:k]  # all zeros
        # The trace length itself differs — the permitted leak.
        assert len(sequences[0]) != len(sequences[1])


class TestLeafUniformity:
    """Observation 1: every Backend access uses a fresh uniform leaf."""

    @pytest.mark.parametrize("posmap_format", ["uncompressed", "flat", "compressed"])
    def test_leaf_histogram_uniform(self, posmap_format):
        observer = TraceObserver()
        frontend = PlbFrontend(
            num_blocks=2**8,
            posmap_format=posmap_format,
            onchip_entries=2**3,
            plb_capacity_bytes=1024,
            rng=DeterministicRng(5),
            observer=observer,
        )
        rng = DeterministicRng(6)
        for _ in range(2000):
            frontend.read(rng.randrange(2**8))
        leaves = observer.leaf_sequence(0)
        num_leaves = frontend.config.num_leaves
        counts = [0] * num_leaves
        for leaf in leaves:
            counts[leaf] += 1
        stat, dof = chi_square_uniform(counts)
        # Mean of chi2 is dof, stddev sqrt(2*dof); allow 5 sigma.
        assert stat < dof + 5 * (2 * dof) ** 0.5

    def test_sequential_and_random_leaf_streams_look_alike(self):
        """Leaf sequences must not encode the program's address pattern."""
        histograms = []
        for addresses in (program_a(2**8, 1500), None):
            observer = TraceObserver()
            frontend = PlbFrontend(
                num_blocks=2**8,
                posmap_format="uncompressed",
                onchip_entries=2**3,
                plb_capacity_bytes=1024,
                rng=DeterministicRng(9),
                observer=observer,
            )
            if addresses is None:
                rng = DeterministicRng(10)
                addresses = [rng.randrange(2**8) for _ in range(1500)]
            run_program(frontend, addresses)
            counts = [0] * frontend.config.num_leaves
            for leaf in observer.leaf_sequence(0):
                counts[leaf] += 1
            stat, dof = chi_square_uniform(counts)
            histograms.append(stat / dof)
        # Both programs' leaf streams pass the same uniformity bar.
        assert all(ratio < 1.6 for ratio in histograms)
