"""PRF behaviour: determinism, distribution, domain separation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import Prf


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"k" * 16, mode="rot13")

    def test_aes_mode_needs_16_byte_key(self):
        with pytest.raises(ValueError):
            Prf(b"short", mode=Prf.MODE_AES)

    def test_fast_mode_accepts_any_key(self):
        assert Prf(b"k", mode=Prf.MODE_FAST).eval_bytes(b"x")


@pytest.mark.parametrize("mode", [Prf.MODE_FAST, Prf.MODE_AES])
class TestBothModes:
    def _prf(self, mode):
        return Prf(b"0123456789abcdef", mode=mode)

    def test_deterministic(self, mode):
        a, b = self._prf(mode), self._prf(mode)
        assert a.eval_bytes(b"hello") == b.eval_bytes(b"hello")

    def test_distinct_inputs_distinct_outputs(self, mode):
        prf = self._prf(mode)
        assert prf.eval_bytes(b"a") != prf.eval_bytes(b"b")

    def test_output_is_16_bytes(self, mode):
        assert len(self._prf(mode).eval_bytes(b"anything")) == 16

    def test_long_input_supported(self, mode):
        prf = self._prf(mode)
        assert prf.eval_bytes(b"x" * 100) != prf.eval_bytes(b"x" * 101)

    def test_eval_int_range(self, mode):
        prf = self._prf(mode)
        for i in range(64):
            assert 0 <= prf.eval_int(bytes([i]), 10) < 1024

    def test_eval_int_zero_bits(self, mode):
        assert self._prf(mode).eval_int(b"x", 0) == 0

    def test_leaf_for_varies_with_count(self, mode):
        prf = self._prf(mode)
        leaves = {prf.leaf_for(5, c, 16) for c in range(40)}
        assert len(leaves) > 30  # collisions possible but rare

    def test_leaf_for_varies_with_address(self, mode):
        prf = self._prf(mode)
        leaves = {prf.leaf_for(a, 0, 16) for a in range(40)}
        assert len(leaves) > 30

    def test_subblock_index_separates(self, mode):
        prf = self._prf(mode)
        assert prf.leaf_for(1, 1, 16, subblock=0) != prf.leaf_for(1, 1, 16, subblock=1)

    def test_call_count(self, mode):
        prf = self._prf(mode)
        prf.eval_bytes(b"a")
        prf.eval_bytes(b"b")
        assert prf.call_count == 2


class TestDistribution:
    def test_leaves_roughly_uniform(self):
        """PRF-derived leaves drive ORAM privacy; check uniformity."""
        prf = Prf(b"distribution-key")
        counts = [0] * 16
        for c in range(8000):
            counts[prf.leaf_for(1234, c, 4)] += 1
        assert min(counts) > 350 and max(counts) < 650

    def test_keys_separate(self):
        a = Prf(b"key-a")
        b = Prf(b"key-b")
        assert a.eval_bytes(b"same input") != b.eval_bytes(b"same input")

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**30),
    )
    def test_no_systematic_collisions(self, a1, a2, c1, c2):
        """Distinct (addr, count) pairs map independently (prefix-free input)."""
        prf = Prf(b"collision-key")
        if (a1, c1) != (a2, c2):
            # 64-bit truncation: collisions are negligible, not impossible;
            # equality here would indicate a structural flaw.
            assert prf.eval_int(
                a1.to_bytes(8, "little") + c1.to_bytes(12, "little"), 64
            ) != prf.eval_int(a2.to_bytes(8, "little") + c2.to_bytes(12, "little"), 64)
